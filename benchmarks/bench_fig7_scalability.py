"""Figure 7: scalability — speedup over *sequential versioned* execution,
large read-intensive runs, 4..32 cores.

Paper shape: speedup grows with core count for every workload; regular
workloads scale furthest (up to ~25-30x at 32 cores in the paper); the
red-black tree flattens early (single writer throttles the root).
"""

from __future__ import annotations

import pytest
from common import run_and_echo

from repro.harness.experiments import fig7_scalability


@pytest.mark.figure("fig7")
def test_fig7_scalability(run_once, scale, runner):
    result = run_and_echo(run_once, fig7_scalability, scale, runner=runner)

    series = result["series"]
    cores = result["cores"]
    for bench, speedups in series.items():
        # More cores never catastrophically hurts (allow 15% noise).
        assert speedups[-1] >= speedups[0] * 0.85, (bench, speedups)
    # Regular workloads reach higher speedups than the single-writer tree.
    assert max(series["matmul"]) > max(series["rb_tree"])
    assert max(series["levenshtein"]) > max(series["rb_tree"])
    # Meaningful parallelism is achieved somewhere (paper: up to ~19-30x).
    assert max(max(s) for s in series.values()) > 2.0
