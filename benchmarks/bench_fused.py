"""A/B micro-bench: the fused-block interpreter vs the per-op tier.

``MachineConfig(fused=...)`` selects an execution tier of the same
simulation — ``repro.sim.fuse`` retires runs of non-stalling ops in one
engine event instead of one schedule/pop round trip each.  Both halves
of the contract are measured here:

- **byte-identity** (asserted row by row): every A/B pair must produce
  character-identical ``RunResult`` rows — fusion may only change host
  time, never simulated behaviour.
- **throughput** (gated on the fusion-target basket): the Figure 6
  *unversioned sequential baselines* are end-to-end QUICK runs whose op
  streams are all ``compute``/``load``/``store`` — precisely the work
  fusion exists to accelerate — and the basket's aggregate wall-clock
  ratio must clear ``GATE_RATIO``.  Versioned rows are reported but not
  wall-clock-gated: their host time is dominated by O-structure manager
  calls fusion deliberately never touches (blocks end at every versioned
  op), and on multi-core runs by refused inline advances (another core's
  event is almost always due first), so their honest expectation is
  parity, asserted loosely through the telemetry test below instead of
  a noise-sensitive timing bound.

Timing runs as interleaved fused/unfused pairs (best of ``PAIRS``) so
host frequency drift hits both arms alike.
"""

from __future__ import annotations

import gc
import json
import time

import pytest
from common import echo

from repro.config import TABLE2
from repro.harness.report import format_table
from repro.harness.sweeps import execute, irregular_spec, regular_spec
from repro.sim.machine import add_machine_observer, remove_machine_observer
from repro.workloads.opgen import READ_INTENSIVE

IRREGULAR = ("linked_list", "binary_tree", "hash_table", "rb_tree")
REGULAR = ("matmul", "levenshtein")

#: Required aggregate fused-vs-unfused speedup on the gated basket.
GATE_RATIO = 1.3

#: Interleaved A/B repetitions per spec (best-of).
PAIRS = 3


def _spec(bench: str, config, scale, variant: str, cores: int):
    if bench in IRREGULAR:
        return irregular_spec(
            bench, config, scale, "large", READ_INTENSIVE.name, variant, cores
        )
    return regular_spec(bench, config, scale, "large", variant, cores)


def _timed(spec) -> tuple[float, str]:
    gc.disable()
    t0 = time.perf_counter()
    result = execute(spec)
    elapsed = time.perf_counter() - t0
    gc.enable()
    gc.collect()
    return elapsed, json.dumps(result.to_json(), sort_keys=True)


def _ab(bench: str, scale, variant: str, cores: int) -> tuple[float, float]:
    """Best-of-PAIRS interleaved timing; asserts the rows byte-identical."""
    fused = _spec(bench, TABLE2.with_fused(True), scale, variant, cores)
    unfused = _spec(bench, TABLE2.with_fused(False), scale, variant, cores)
    best_f = best_u = float("inf")
    for _ in range(PAIRS):
        tf, row_f = _timed(fused)
        tu, row_u = _timed(unfused)
        assert row_f == row_u, (
            f"{bench}/{variant}-{cores}c: tiers diverged — fusion changed "
            f"simulated behaviour"
        )
        best_f = min(best_f, tf)
        best_u = min(best_u, tu)
    return best_f, best_u


@pytest.mark.figure("fused")
def test_fused_vs_per_op_quick_basket(run_once, benchmark, scale):
    """Byte-identity everywhere; >= GATE_RATIO on the fusion-target basket."""

    def measure():
        rows = []
        for bench in IRREGULAR + REGULAR:
            points = [
                ("unversioned", 1, True),
                ("versioned", 1, False),
                ("versioned", min(8, scale.max_cores), False),
            ]
            for variant, cores, gated in points:
                tf, tu = _ab(bench, scale, variant, cores)
                rows.append((bench, variant, cores, gated, tf, tu))
        return rows

    rows = run_once(measure)
    table = []
    gated_f = gated_u = all_f = all_u = 0.0
    for bench, variant, cores, gated, tf, tu in rows:
        label = f"{variant}-{cores}c" + (" *" if gated else "")
        table.append((bench, label, tf * 1e3, tu * 1e3, tu / tf))
        benchmark.extra_info[f"ratio[{bench}/{variant}-{cores}c]"] = tu / tf
        all_f += tf
        all_u += tu
        if gated:
            gated_f += tf
            gated_u += tu
    gate = gated_u / gated_f
    table.append(("TOTAL (gated *)", "", gated_f * 1e3, gated_u * 1e3, gate))
    table.append(("TOTAL (all)", "", all_f * 1e3, all_u * 1e3, all_u / all_f))
    benchmark.extra_info["gated_basket_ratio"] = gate
    echo(format_table(
        ("workload", "variant", "fused ms", "per-op ms", "ratio"),
        table,
        title="Macro-op fusion A/B (byte-identical rows; * = wall-clock gated)",
        floatfmt="{:.2f}",
    ))
    assert gate >= GATE_RATIO, (
        f"fusion-target basket only {gate:.2f}x (need {GATE_RATIO}x): the "
        f"fused tier lost its throughput win"
    )


@pytest.mark.figure("fused")
def test_fusion_telemetry_accounts_for_elided_round_trips(run_once, benchmark):
    """The deterministic half of the win: round trips actually elided.

    On the sequential conventional-memory baseline nearly every retired
    op should flow through the interpreter with its engine round trip
    fused away — and on a fused run of any shape the FuseStats identity
    ``fused_ops == ops - event_breaks`` must hold.
    """

    def measure():
        caught = []
        add_machine_observer(caught.append)
        try:
            from repro.harness.presets import get_scale

            scale = get_scale("quick")
            execute(_spec("linked_list", TABLE2, scale, "unversioned", 1))
        finally:
            remove_machine_observer(caught.append)
        m = caught[-1]
        return m.fuse_stats.as_dict(), m.retired_ops

    fs, retired = run_once(measure)
    benchmark.extra_info.update(fs)
    assert fs["fused_ops"] == fs["ops"] - fs["event_breaks"]
    # All-conventional sequential ops: virtually everything fuses.
    assert fs["ops"] >= 0.9 * retired
    assert fs["fused_ops"] >= 0.9 * fs["ops"]
