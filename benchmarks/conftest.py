"""Benchmark-suite configuration.

Each ``bench_*.py`` file regenerates one table or figure of the paper.
``pytest benchmarks/ --benchmark-only`` runs everything at the ``quick``
scale and prints the paper-shaped rows; set ``REPRO_SCALE=paper`` for the
published workload sizes (slow: hours on a pure-Python simulator).

pytest-benchmark is used in pedantic mode with a single round — each
"iteration" is a full multi-run experiment, and the interesting output is
the printed table, not the wall-clock of the harness itself.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.presets import get_scale
from repro.harness.runner import SweepRunner


def pytest_configure(config):
    config.addinivalue_line("markers", "figure(name): which paper figure a bench regenerates")


@pytest.fixture(scope="session")
def scale():
    return get_scale(os.environ.get("REPRO_SCALE", "quick"))


@pytest.fixture(scope="session")
def runner():
    """Sweep runner for the bench suite.

    Parallelism follows ``REPRO_JOBS`` (default: all host cores); the
    on-disk result cache is force-disabled so the timed numbers always
    measure simulation, never a cache read.
    """
    return SweepRunner(use_cache=False)


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
