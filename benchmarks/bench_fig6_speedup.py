"""Figure 6: speedup of parallel versioned (32 cores) over sequential
unversioned, across all six benchmarks, two sizes and two mixes.

Paper shape: every workload beats the sequential unversioned baseline at
32 cores; regular workloads (matmul, Levenshtein) scale furthest; the
red-black tree gains least (single writer).
"""

from __future__ import annotations

import pytest
from common import run_and_echo

from repro.harness.experiments import fig6_speedup


@pytest.mark.figure("fig6")
def test_fig6_speedup(run_once, scale, runner):
    result = run_and_echo(run_once, fig6_speedup, scale, runner=runner)

    by_bench: dict[str, list[float]] = {}
    for bench, size, mix, speedup in result["rows"]:
        by_bench.setdefault(bench, []).append(speedup)

    # Shape: parallel versioned beats sequential unversioned on the
    # regular workloads and on the large irregular runs.
    assert max(by_bench["matmul"]) > 1.5
    assert max(by_bench["levenshtein"]) > 1.5
    for bench in ("linked_list", "binary_tree", "hash_table"):
        assert max(by_bench[bench]) > 1.0, f"{bench} never beat the baseline"
    # The red-black tree is the weakest scaler (single writer).
    assert max(by_bench["rb_tree"]) <= max(by_bench["binary_tree"]) * 1.5
