"""Figure 8: snapshot isolation — versioned binary tree vs unversioned
tree under a read-write lock; 3:1 scan:insert, scan ranges 1/8/64.

Paper shape: below 1 at low core counts (versioning overhead), above 1 at
32 cores (readers overlap writers; the rwlock cannot); versioned
self-speedup ~12 vs rwlock ~8.
"""

from __future__ import annotations

import pytest
from common import run_and_echo

from repro.harness.experiments import fig8_snapshot_isolation


@pytest.mark.figure("fig8")
def test_fig8_snapshot_isolation(run_once, scale, runner):
    result = run_and_echo(run_once, fig8_snapshot_isolation, scale, runner=runner)

    # Shape: the versioned tree's advantage grows with cores for every
    # scan range, and at the top core count it wins for at least one range.
    for name, ratio_series in result["series"].items():
        assert ratio_series[-1] >= ratio_series[0] * 0.9, (name, ratio_series)
    assert max(s[-1] for s in result["series"].values()) > 1.0, (
        "versioned tree never outperformed the rwlock tree at max cores"
    )
    # Versioned execution self-scales at least as well as the rwlock.
    assert result["self_speedup_versioned"] > result["self_speedup_rwlock"] * 0.9
