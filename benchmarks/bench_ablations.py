"""Ablations of the microarchitectural design choices (DESIGN.md section 6).

Not figures from the paper, but measurements of the mechanisms the paper
argues for:

- compressed version-block caching (direct access) on/off,
- cache-pollution avoidance during full lookups on/off,
- version-list sorting on/off with out-of-order version creation.
"""

from __future__ import annotations

import dataclasses

import pytest
from common import echo

from repro.config import TABLE2
from repro.harness.report import format_table
from repro.harness.sweeps import irregular_spec
from repro.workloads.opgen import READ_INTENSIVE


@pytest.mark.figure("ablation")
def test_compression_ablation(run_once, scale, runner):
    """Direct access via compressed lines vs always walking the list."""

    def measure():
        points = [
            (comp, tag, cores)
            for comp in (True, False)
            for cores, tag in ((1, "1T"), (scale.max_cores, f"{scale.max_cores}T"))
        ]
        specs = [
            irregular_spec(
                "linked_list",
                dataclasses.replace(TABLE2, compression_enabled=comp),
                scale, "large", READ_INTENSIVE.name, "versioned", cores,
                n_ops=scale.sens_ops,
            )
            for comp, _tag, cores in points
        ]
        rows = []
        for (comp, tag, _cores), r in zip(points, runner.run(specs)):
            rows.append((
                "on" if comp else "off", tag, r.cycles,
                r.stats.direct_hit_rate, r.stats.full_lookups,
            ))
        return rows

    rows = run_once(measure)
    echo(format_table(("compression", "variant", "cycles", "direct rate",
                       "full lookups"), rows,
                      title="Ablation: compressed version-block lines"))
    by = {(r[0], r[1]): r for r in rows}
    on_seq = by[("on", "1T")]
    off_seq = by[("off", "1T")]
    assert on_seq[3] > 0.3, "direct accesses should serve a meaningful fraction"
    assert off_seq[3] == 0.0
    # On the sequential run (no convoy-timing luck) direct access wins.
    assert on_seq[2] < off_seq[2], "compression should speed up 1T runs"


@pytest.mark.figure("ablation")
def test_pollution_avoidance_ablation(run_once, scale, runner):
    """Selective caching during full lookups vs installing every block."""

    def measure():
        specs = [
            irregular_spec(
                "linked_list",
                dataclasses.replace(TABLE2, pollution_avoidance=avoid),
                scale, "large", READ_INTENSIVE.name, "versioned",
                scale.max_cores, n_ops=scale.sens_ops,
            )
            for avoid in (True, False)
        ]
        rows = []
        for avoid, r in zip((True, False), runner.run(specs)):
            rows.append((
                "on" if avoid else "off", r.cycles,
                r.stats.l1_hit_rate, r.stats.l1_misses,
            ))
        return rows

    rows = run_once(measure)
    echo(format_table(("pollution avoidance", "cycles", "L1 hit rate", "L1 misses"),
                      rows, title="Ablation: cache-pollution avoidance"))


@pytest.mark.figure("ablation")
def test_sorted_list_out_of_order_ablation(run_once):
    """Sorted lists pay on out-of-order insert but win on early lookup cutoff.

    Directly measures version-list walk counts with an adversarial
    out-of-order creation order.
    """
    from repro.ostruct.version_block import VersionBlock, VersionList

    def measure():
        results = {}
        for mode in (True, False):
            lst = VersionList(0, sorted_insert=mode)
            insert_visits = 0
            # Interleaved creation order: 0, 64, 1, 65, 2, 66, ...
            order = [i // 2 if i % 2 == 0 else 64 + i // 2 for i in range(128)]
            for i, v in enumerate(order):
                _, visited = lst.insert(VersionBlock(v, v, 16 * i))
                insert_visits += visited
            # The sorted list's selling points (Section III): LOAD-LATEST
            # answers at the head, and a lookup of a not-yet-created
            # version terminates early instead of scanning everything.
            latest_visits = sum(lst.find_latest(1 << 20)[1] for _ in range(64))
            missing_visits = sum(lst.find_exact(200 + v)[1] for v in range(64))
            results[mode] = (insert_visits, latest_visits, missing_visits)
        return results

    results = run_once(measure)
    rows = [
        ("sorted", *results[True]),
        ("unsorted", *results[False]),
    ]
    echo(format_table(("mode", "insert walk", "latest walk", "missing walk"), rows,
                      title="Ablation: version-list sorting (out-of-order creation)"))
    # Sorting costs on out-of-order insert but makes LOAD-LATEST O(1) and
    # bounds the cost of probing uncreated versions.
    assert results[True][0] >= results[False][0]
    assert results[True][1] < results[False][1]
    assert results[True][2] < results[False][2]
