"""Figure 10: slowdown from injecting 2-10 cycles into every versioned
operation, sequential (1T) and parallel (32T).

Paper shape: "adding 10 cycles to each versioned access reduces
performance by up to 16%. The impact is much milder when using smaller
(and more realistic) latencies."
"""

from __future__ import annotations

import pytest
from common import run_and_echo

from repro.harness.experiments import fig10_latency


@pytest.mark.figure("fig10")
def test_fig10_latency(run_once, scale, runner):
    result = run_and_echo(run_once, fig10_latency, scale, runner=runner)

    # Injected latency only ever slows sequential runs down; parallel
    # runs get slack for convoy-timing luck (delaying one task can
    # accidentally smooth a lock convoy).
    worst: dict[tuple[str, str], float] = {}
    for bench, variant, extra, rel in result["rows"]:
        limit = 0.005 if variant == "1T" else 0.10
        assert rel <= limit, (bench, variant, extra, rel)
        worst[(bench, variant)] = min(worst.get((bench, variant), 0.0), rel)
    # The damage is bounded.  The paper's bound is ~16% because its
    # 10000-element structures miss L1 frequently, hiding the injected
    # cycles behind LLC latency; the quick-scale structures are largely
    # L1-resident, so sequential runs feel the extra cycles almost fully
    # (see EXPERIMENTS.md).  Parallel (32T) runs stay mild either way.
    assert all(w > -0.55 for w in worst.values()), worst
    for (bench, variant), w in worst.items():
        if variant.endswith("T") and variant != "1T":
            assert w > -0.35, (bench, variant, w)
    # Somebody actually noticed the extra cycles.
    assert min(w for w in worst.values()) < 0.0
