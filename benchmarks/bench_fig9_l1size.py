"""Figure 9: L1 size sensitivity, 8-128 KiB against the 32 KiB baseline.

Paper shape: "increasing the L1 cache size beyond 32kB has limited impact
— up to 1.23x and usually much less"; parallel (32T) runs are less
sensitive than sequential ones.
"""

from __future__ import annotations

import pytest
from common import run_and_echo

from repro.harness.experiments import fig9_l1_size


@pytest.mark.figure("fig9")
def test_fig9_l1_size(run_once, scale, runner):
    result = run_and_echo(run_once, fig9_l1_size, scale, runner=runner)

    deltas = [rel for *_, rel in result["rows"]]
    # Limited impact overall (the paper's bound is ~±0.3 around baseline).
    assert max(abs(d) for d in deltas) < 0.6, max(deltas)
    # Bigger caches never dramatically hurt.
    biggest = max(r[2] for r in result["rows"])
    for bench, variant, kib, rel in result["rows"]:
        if kib == biggest:
            assert rel > -0.15, (bench, variant, rel)
