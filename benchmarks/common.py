"""Shared helpers for the ``bench_*.py`` suite.

Every figure bench follows the same skeleton: run the experiment once
through the pedantic-mode benchmark fixture, then echo the paper-shaped
table (pytest swallows plain returns; printing is the deliverable).  The
two helpers here hold that skeleton so the per-figure files contain only
what is actually specific to their figure — the experiment callable and
its shape assertions.
"""

from __future__ import annotations


def run_and_echo(run_once, experiment, *args, **kwargs) -> dict:
    """Run ``experiment`` via the benchmark fixture and print its table.

    ``experiment`` must return a result dict with a ``"text"`` entry (all
    ``repro.harness.experiments`` callables do).  Returns the result for
    the caller's shape assertions.
    """
    result = run_once(experiment, *args, **kwargs)
    echo(result["text"])
    return result


def echo(text: str) -> None:
    """Print a table under pytest's captured-output header.

    The leading blank line keeps the table aligned instead of having its
    first row glued to pytest's ``bench_x.py::test_y`` progress line.
    """
    print()
    print(text)
