"""Section IV-F: garbage-collection overhead.

Paper: a tight configuration that triggered 135 GC phases was only 0.1%
slower than one with enough free blocks to never collect; the latter was
0.1% slower than a no-version-sorting configuration.

Reproduced shape: GC phases fire under the tight configuration and the
cost of collection stays within a few percent of the no-GC configuration
(here collection is in fact slightly *faster* end-to-end, because
reclaimed blocks are reused while the no-GC run keeps touching cold,
freshly carved blocks — see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest
from common import run_and_echo

from repro.harness.experiments import gc_overhead


@pytest.mark.figure("gc")
def test_gc_overhead(run_once, scale, runner):
    result = run_and_echo(run_once, gc_overhead, scale, runner=runner)

    # GC actually ran in the tight configuration (paper: 135 phases).
    assert result["tight_phases"] > 10
    # And its end-to-end cost is small (paper: 0.1%).
    assert abs(result["overhead"]) < 0.10, result["overhead"]
    # The ample configuration never collected.
    ample_row = next(r for r in result["rows"] if r[0].startswith("ample"))
    assert ample_row[2] == 0
