"""A/B micro-benchmarks for the simulator hot-loop optimisations.

Two of the three tunings are isolated here with their pre-optimisation
counterparts reconstructed inline, so the win stays measurable over time:

- **event drain**: ``Simulator.run()`` with no bounds takes a fast path
  with no per-event limit checks; ``run(max_events=N)`` still walks the
  original peek-check-pop loop.  Same events, same result — the delta is
  pure loop overhead.
- **batched waiter wake-ups**: ``OStructureManager._notify`` schedules
  one ``_BatchWake`` event per notification instead of one event per
  waiter.  The A arm reproduces the old per-waiter scheme; the B arm is
  the batch object.  Callback order is asserted identical; the heap sees
  K times fewer pushes.

(The third tuning — the ``(core, vaddr)`` direct-entry memo and the
closure-free core retire path — only shows up under a full machine and is
covered by the workload benches.)

Timing assertions are deliberately absent: CI boxes are noisy.  The
deterministic half of each A/B (identical behaviour, fewer heap events)
is asserted; wall-clock goes to ``extra_info`` for BENCH_*.json trending.
"""

from __future__ import annotations

import time

import pytest

from repro.harness.report import format_table
from repro.ostruct.manager import _BatchWake
from repro.sim.engine import Simulator

DRAIN_EVENTS = 200_000
WAKE_ROUNDS = 2_000
WAITERS = 16


@pytest.mark.figure("hotloop")
def test_event_drain_fast_path(run_once, benchmark):
    """Unbounded drain (fast path) vs bounded drain (original loop)."""

    def build(n):
        sim = Simulator()
        nop = lambda: None
        for i in range(n):
            sim.schedule_at(i, nop)
        return sim

    def measure():
        sim = build(DRAIN_EVENTS)
        t0 = time.perf_counter()
        fast_n = sim.run()
        fast_s = time.perf_counter() - t0

        sim = build(DRAIN_EVENTS)
        t0 = time.perf_counter()
        slow_n = sim.run(max_events=DRAIN_EVENTS)
        slow_s = time.perf_counter() - t0
        return fast_n, slow_n, fast_s, slow_s

    fast_n, slow_n, fast_s, slow_s = run_once(measure)
    assert fast_n == slow_n == DRAIN_EVENTS
    benchmark.extra_info["fast_s"] = fast_s
    benchmark.extra_info["bounded_s"] = slow_s
    print()
    print(format_table(
        ("loop", "events", "wall s", "Mevents/s"),
        [
            ("fast (unbounded)", fast_n, fast_s, fast_n / fast_s / 1e6),
            ("bounded (original)", slow_n, slow_s, slow_n / slow_s / 1e6),
        ],
        title="Event-drain loop A/B",
        floatfmt="{:.3f}",
    ))


@pytest.mark.figure("hotloop")
def test_batched_wakeups(run_once, benchmark):
    """One _BatchWake event per notification vs one event per waiter."""

    def run_arm(batched: bool):
        sim = Simulator()
        order: list[int] = []
        cbs = [lambda i=i: order.append(i) for i in range(WAITERS)]

        def notify():
            # What OStructureManager._notify does on each arm.
            if batched:
                sim.schedule(1, _BatchWake(cbs))
            else:
                for cb in cbs:
                    sim.schedule(1, cb)

        for r in range(WAKE_ROUNDS):
            sim.schedule_at(10 * r, notify)
        t0 = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - t0
        return order, sim._seq, elapsed

    def measure():
        return run_arm(batched=False), run_arm(batched=True)

    (old_order, old_seq, old_s), (new_order, new_seq, new_s) = run_once(measure)
    # Same callbacks, same order — only the heap traffic differs.
    assert new_order == old_order
    assert len(new_order) == WAKE_ROUNDS * WAITERS
    assert old_seq - new_seq == WAKE_ROUNDS * (WAITERS - 1)

    benchmark.extra_info["per_waiter_s"] = old_s
    benchmark.extra_info["batched_s"] = new_s
    print()
    print(format_table(
        ("scheme", "heap pushes", "wall s"),
        [
            ("per-waiter (original)", old_seq, old_s),
            ("batched", new_seq, new_s),
        ],
        title=f"Waiter wake-up A/B ({WAKE_ROUNDS} rounds x {WAITERS} waiters)",
        floatfmt="{:.3f}",
    ))
