"""A/B micro-benchmarks for the simulator hot-loop optimisations.

The headline A/B pits the timing-wheel event kernel against the original
heapq-of-tuples kernel, reconstructed inline, so the win stays measurable
over time:

- **timing wheel vs heapq**: near-future events (cache latencies, waiter
  wake-ups — virtually everything a workload schedules) index into a
  256-slot bucket ring with an occupancy bitmask; far-future events heap
  into an overflow tier; a machine down to one pending event bypasses
  both.  The heapq arm pays O(log n) sift per event.  Both kernels honour
  the same ``(time, sequence)`` total order, asserted per pattern by
  comparing complete execution traces.
- **event drain**: ``Simulator.run()`` with no bounds takes a fast path
  with no per-event limit checks; ``run(max_events=N)`` walks the bounded
  peek-check-pop loop.  Same events, same result — the delta is pure loop
  overhead.
- **pooled waiter wake-ups**: ``OStructureManager._notify`` schedules one
  pooled ``_WakeBatch`` event per notification instead of one event per
  waiter.  The A arm reproduces the old per-waiter scheme; the B arm is
  the pooled batch.  Callback order is asserted identical; the kernel
  sees K times fewer schedules.

Timing assertions are deliberately absent: CI boxes are noisy.  The
deterministic half of each A/B (identical behaviour, fewer kernel events)
is asserted; wall-clock goes to ``extra_info`` for BENCH_*.json trending.
"""

from __future__ import annotations

import heapq
import time

import pytest
from common import echo

from repro.harness.report import format_table
from repro.ostruct.manager import _WakeBatch
from repro.sim.engine import Simulator

AB_EVENTS = 200_000
DRAIN_EVENTS = 200_000
WAKE_ROUNDS = 2_000
WAITERS = 16


class _HeapqSim:
    """The pre-wheel reference kernel: one heapq of (time, seq, fn)."""

    __slots__ = ("now", "_heap", "_seq", "executed_total")

    def __init__(self):
        self.now = 0
        self._heap = []
        self._seq = 0
        self.executed_total = 0

    def schedule(self, delay, fn):
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def run(self):
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            t, _, fn = pop(heap)
            self.now = t
            fn()
            executed += 1
        self.executed_total += executed
        return executed


#: (pattern name, chains, latency cycle) — shaped like real machine runs:
#: L1/L2/DRAM latencies across many cores, with the occasional far-future
#: event that exercises the overflow heap tier, plus a solo chain for the
#: single-pending-event fast path.
PATTERNS = [
    ("64-chain mixed lat", 64, (4, 1, 2, 35, 120)),
    ("32-chain + overflow", 32, (4, 1, 2, 35, 120, 300)),
    ("8-chain L1-ish", 8, (4, 1, 2)),
    ("solo chain", 1, (4, 1, 2)),
]


def _drive(sim, chains: int, lats: tuple[int, ...], budget: int, trace: list):
    """Self-rescheduling callback chains; appends (now, chain) per event."""
    remaining = [budget]

    def make(chain_id: int):
        k = 0

        def cb():
            nonlocal k
            trace.append((sim.now, chain_id))
            if remaining[0] <= 0:
                return
            remaining[0] -= 1
            k += 1
            sim.schedule(lats[k % len(lats)], cb)

        return cb

    for c in range(chains):
        sim.schedule(c % 3, make(c))
    t0 = time.perf_counter()
    n = sim.run()
    return n, time.perf_counter() - t0


@pytest.mark.figure("hotloop")
def test_wheel_vs_heapq_kernel(run_once, benchmark):
    """Timing-wheel kernel vs the original heapq kernel, same event order."""

    def measure():
        rows = []
        for name, chains, lats in PATTERNS:
            heap_trace: list = []
            wheel_trace: list = []
            hn, hs = _drive(_HeapqSim(), chains, lats, AB_EVENTS, heap_trace)
            wn, ws = _drive(Simulator(), chains, lats, AB_EVENTS, wheel_trace)
            rows.append((name, hn, wn, heap_trace, wheel_trace, hs, ws))
        return rows

    rows = run_once(measure)
    table = []
    for name, hn, wn, heap_trace, wheel_trace, hs, ws in rows:
        # Order equivalence is the contract: both kernels must execute
        # the exact same (time, chain) sequence, not just the same set.
        assert hn == wn
        assert heap_trace == wheel_trace, f"{name}: kernels diverged in order"
        speedup = hs / ws
        benchmark.extra_info[f"heapq_s[{name}]"] = hs
        benchmark.extra_info[f"wheel_s[{name}]"] = ws
        benchmark.extra_info[f"speedup[{name}]"] = speedup
        table.append((name, wn, hn / hs / 1e6, wn / ws / 1e6, speedup))
    echo(format_table(
        ("pattern", "events", "heapq Mev/s", "wheel Mev/s", "speedup"),
        table,
        title="Event kernel A/B: timing wheel vs heapq",
        floatfmt="{:.2f}",
    ))


@pytest.mark.figure("hotloop")
def test_event_drain_fast_path(run_once, benchmark):
    """Unbounded drain (fast path) vs bounded drain (original loop)."""

    def build(n):
        sim = Simulator()
        nop = lambda: None
        for i in range(n):
            sim.schedule_at(i, nop)
        return sim

    def measure():
        sim = build(DRAIN_EVENTS)
        t0 = time.perf_counter()
        fast_n = sim.run()
        fast_s = time.perf_counter() - t0

        sim = build(DRAIN_EVENTS)
        t0 = time.perf_counter()
        slow_n = sim.run(max_events=DRAIN_EVENTS)
        slow_s = time.perf_counter() - t0
        return fast_n, slow_n, fast_s, slow_s

    fast_n, slow_n, fast_s, slow_s = run_once(measure)
    assert fast_n == slow_n == DRAIN_EVENTS
    benchmark.extra_info["fast_s"] = fast_s
    benchmark.extra_info["bounded_s"] = slow_s
    echo(format_table(
        ("loop", "events", "wall s", "Mevents/s"),
        [
            ("fast (unbounded)", fast_n, fast_s, fast_n / fast_s / 1e6),
            ("bounded (original)", slow_n, slow_s, slow_n / slow_s / 1e6),
        ],
        title="Event-drain loop A/B",
        floatfmt="{:.3f}",
    ))


class _PoolHost:
    """The two pool attributes ``_WakeBatch`` recycles itself into."""

    def __init__(self):
        self._list_pool = []
        self._batch_pool = []


@pytest.mark.figure("hotloop")
def test_batched_wakeups(run_once, benchmark):
    """One pooled _WakeBatch per notification vs one event per waiter."""

    def run_arm(batched: bool):
        sim = Simulator()
        host = _PoolHost()
        order: list[int] = []
        cbs = [lambda i=i: order.append(i) for i in range(WAITERS)]

        def notify():
            # What OStructureManager._notify does on each arm.
            if batched:
                pool = host._batch_pool
                batch = pool.pop() if pool else _WakeBatch(host)
                lst = host._list_pool
                wake = lst.pop() if lst else []
                wake.extend(cbs)
                batch.cbs = wake
                sim.schedule(1, batch)
            else:
                for cb in cbs:
                    sim.schedule(1, cb)

        for r in range(WAKE_ROUNDS):
            sim.schedule_at(10 * r, notify)
        t0 = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - t0
        return order, sim._seq, len(host._batch_pool), elapsed

    def measure():
        return run_arm(batched=False), run_arm(batched=True)

    (old_order, old_seq, _, old_s), (new_order, new_seq, pooled, new_s) = run_once(
        measure
    )
    # Same callbacks, same order — only the kernel traffic differs.
    assert new_order == old_order
    assert len(new_order) == WAKE_ROUNDS * WAITERS
    assert old_seq - new_seq == WAKE_ROUNDS * (WAITERS - 1)
    # The pool actually recycled: one record served all rounds.
    assert pooled == 1

    benchmark.extra_info["per_waiter_s"] = old_s
    benchmark.extra_info["batched_s"] = new_s
    echo(format_table(
        ("scheme", "kernel schedules", "wall s"),
        [
            ("per-waiter (original)", old_seq, old_s),
            ("pooled batch", new_seq, new_s),
        ],
        title=f"Waiter wake-up A/B ({WAKE_ROUNDS} rounds x {WAITERS} waiters)",
        floatfmt="{:.3f}",
    ))
