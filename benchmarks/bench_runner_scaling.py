"""Serial vs. parallel sweep execution for a fixed Figure 6 slice.

Tracks the wall-clock speedup the process-pool sweep runner delivers over
the serial path, and proves the two produce byte-identical rows.  The
slice is the irregular half of Figure 6 at the active scale (16 runs of
very different durations — small/large x read/write x un/versioned — so
it also exercises the runner's fine-grained work distribution).

The speedup lands in the pytest-benchmark JSON via ``extra_info`` so
``BENCH_*.json`` can track it over time; the >= 2x assertion only applies
on hosts with at least 4 physical cores (a 1-core CI box cannot speed
anything up by fanning out).
"""

from __future__ import annotations

import json
import os
import time

import pytest
from common import echo

from repro.config import TABLE2
from repro.harness.experiments import IRREGULAR
from repro.harness.report import format_table
from repro.harness.runner import SweepRunner
from repro.harness.sweeps import irregular_spec
from repro.workloads.opgen import READ_INTENSIVE, WRITE_INTENSIVE

PARALLEL_JOBS = 4


def _fig6_slice(scale):
    specs = []
    for bench in IRREGULAR:
        for size in ("small", "large"):
            for mix in (READ_INTENSIVE, WRITE_INTENSIVE):
                specs.append(irregular_spec(
                    bench, TABLE2, scale, size, mix.name, "unversioned"))
                specs.append(irregular_spec(
                    bench, TABLE2, scale, size, mix.name, "versioned",
                    scale.max_cores))
    return specs


@pytest.mark.figure("runner")
def test_runner_scaling(run_once, scale, benchmark):
    specs = _fig6_slice(scale)

    def measure():
        serial = SweepRunner(jobs=1, use_cache=False)
        t0 = time.perf_counter()
        serial_rows = serial.run(specs)
        serial_s = time.perf_counter() - t0

        parallel = SweepRunner(jobs=PARALLEL_JOBS, use_cache=False)
        t0 = time.perf_counter()
        parallel_rows = parallel.run(specs)
        parallel_s = time.perf_counter() - t0
        return serial_rows, parallel_rows, serial_s, parallel_s

    serial_rows, parallel_rows, serial_s, parallel_s = run_once(measure)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    benchmark.extra_info["serial_s"] = serial_s
    benchmark.extra_info["parallel_s"] = parallel_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["jobs"] = PARALLEL_JOBS
    benchmark.extra_info["host_cores"] = os.cpu_count()

    echo(format_table(
        ("path", "jobs", "runs", "wall s"),
        [
            ("serial", 1, len(specs), serial_s),
            ("parallel", PARALLEL_JOBS, len(specs), parallel_s),
            ("speedup", "-", "-", speedup),
        ],
        title=f"Sweep runner scaling [{scale.name}, {os.cpu_count()} host cores]",
        floatfmt="{:.2f}",
    ))

    # Determinism first: parallel output must be byte-identical to serial.
    assert json.dumps([r.to_json() for r in serial_rows]) == \
        json.dumps([r.to_json() for r in parallel_rows])

    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x with {PARALLEL_JOBS} workers on a "
            f"{os.cpu_count()}-core host, got {speedup:.2f}x"
        )
