"""Table II: the experimental platform.

Microbenchmarks validating that the simulated memory system delivers the
configured latencies (L1 hit, L2 hit, DRAM) and that versioned operations
ride the same hierarchy.
"""

from __future__ import annotations

import pytest
from common import run_and_echo

from repro.config import TABLE2
from repro.harness.experiments import table2_platform


@pytest.mark.figure("table2")
def test_table2_platform(run_once):
    result = run_and_echo(run_once, table2_platform, TABLE2)
    assert all(result["checks"].values()), result["checks"]


@pytest.mark.figure("table2")
def test_versioned_op_latency_floor(run_once):
    """A hot versioned load costs one L1 access (direct lookup)."""
    from tests.test_manager import Rig

    def measure():
        rig = Rig()
        rig.manager.store_version(0, rig.addr, 1, 7)
        rig.manager.load_version(0, rig.addr, 1)  # warm the compressed line
        lat, _ = rig.manager.load_version(0, rig.addr, 1)
        return lat

    lat = run_once(measure)
    print(f"\nhot LOAD-VERSION latency: {lat} cycles (L1 hit = {TABLE2.l1.hit_latency})")
    assert lat == TABLE2.l1.hit_latency
