"""Serving-layer benchmark: throughput and tail latency per load mix.

Boots one in-process :class:`repro.serve.ServeServer` per mix and drives
it closed-loop with the seeded load generator, echoing one row per mix
(throughput, p50/p95/p99).  The numbers are **reported, not gated** —
loopback TCP latency on a shared CI host is noise-dominated, so this
bench exists to give future PRs a trajectory, while correctness *is*
gated: zero protocol errors, zero read-validity violations, and a
non-zero shed count in the overload sub-run.
"""

from __future__ import annotations

import asyncio

import pytest
from common import echo

from repro.harness.report import format_table
from repro.serve.cli import SELF_BENCH_WATERMARKS, _HEADERS, _report_row
from repro.serve.loadgen import LoadGen, flood
from repro.serve.server import ServeServer
from repro.serve.store import ShardedStore

MIX_NAMES = ("read_heavy", "write_heavy", "lock_contention", "snapshot_scan")


async def _drive(mix: str, ops: int) -> dict:
    store = ShardedStore(
        num_shards=8, reclaim_watermark=SELF_BENCH_WATERMARKS.get(mix, 0)
    )
    server = ServeServer(store, threads=8, max_inflight=64)
    await server.start()
    try:
        gen = LoadGen(server.host, server.port, mix, seed=0, ops=ops, clients=8)
        report = await gen.run()
    finally:
        clean = await server.drain()
    return {
        "report": report,
        "clean": clean,
        "server_errors": server.stats.protocol_errors,
    }


async def _overload() -> dict:
    server = ServeServer(ShardedStore(num_shards=2), threads=2, max_inflight=6)
    await server.start()
    try:
        report = await flood(
            server.host, server.port, requests=48, deadline_ms=200, pool_size=4
        )
    finally:
        clean = await server.drain()
    return {"report": report, "clean": clean, "shed": server.stats.shed}


@pytest.mark.figure("serve")
def test_serve_throughput_per_mix(run_once):
    async def all_mixes():
        return [await _drive(mix, ops=400) for mix in MIX_NAMES]

    results = run_once(asyncio.run, all_mixes())
    rows = [_report_row(r["report"]) for r in results]
    echo(format_table(_HEADERS, rows, title="repro.serve closed-loop mixes"))

    for mix, r in zip(MIX_NAMES, results):
        report = r["report"]
        assert report.protocol_errors == 0, (mix, report)
        assert r["server_errors"] == 0, mix
        assert report.violations == [], (mix, report.violations[:3])
        assert report.ok > 0 and report.throughput > 0, mix
        assert r["clean"], f"{mix}: server did not drain cleanly"
    # The watermarked write mix must actually exercise reclamation.
    write = results[MIX_NAMES.index("write_heavy")]["report"]
    assert write.reclaimed > 0


@pytest.mark.figure("serve")
def test_serve_overload_sheds(run_once):
    result = run_once(asyncio.run, _overload())
    report = result["report"]
    echo(format_table(_HEADERS, [_report_row(report)], title="overload flood"))
    assert report.sheds > 0
    assert result["shed"] == report.sheds
    assert report.protocol_errors == 0
    assert result["clean"]
