"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig


@pytest.fixture
def small_config() -> MachineConfig:
    """A 4-core machine with a small free list (exercises GC paths)."""
    return MachineConfig(num_cores=4, free_list_blocks=256, gc_watermark=32)


@pytest.fixture
def machine(small_config: MachineConfig) -> Machine:
    return Machine(small_config)


@pytest.fixture
def uni_machine() -> Machine:
    """A single-core machine for sequential-semantics tests."""
    return Machine(MachineConfig(num_cores=1))


def run_ops(machine: Machine, *op_lists):
    """Helper: run one task per op list (task ids in order); returns tasks."""
    from repro import Task

    def body(tid, ops):
        results = []
        for op in ops:
            results.append((yield op))
        return results

    tasks = [Task(i, body, list(ops)) for i, ops in enumerate(op_lists)]
    machine.submit(tasks)
    machine.run()
    return tasks
