"""Tests for the repro.obs metrics registry."""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig, Task, Versioned
from repro.errors import ReproError
from repro.obs import MetricsRegistry, attach_metrics
from repro.obs.metrics import Histogram
from repro.ostruct import isa


class TestInstruments:
    def test_counter(self):
        r = MetricsRegistry()
        c = r.counter("events")
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5
        assert r.counter("events") is c  # get-or-create

    def test_gauge_tracks_last_min_max(self):
        r = MetricsRegistry()
        g = r.gauge("depth")
        for v in (5, 2, 9):
            g.set(v)
        snap = g.snapshot()
        assert snap == {"last": 9, "min": 2, "max": 9, "samples": 3}

    def test_histogram_bucket_edges_are_upper_inclusive(self):
        h = Histogram("h", (0, 2, 4))
        for v in (0, 1, 2, 3, 4, 5, 100):
            h.observe(v)
        # <=0: {0}; <=2: {1,2}; <=4: {3,4}; >4: {5,100}
        assert h.counts == [1, 2, 2, 2]
        assert h.count == 7
        assert h.min == 0 and h.max == 100

    def test_histogram_mean_and_quantile(self):
        h = Histogram("h", (10, 100, 1000))
        for v in (5, 5, 50, 500):
            h.observe(v)
        assert h.mean == pytest.approx(140.0)
        # Quantile is a bucketed estimate: the median lands in <=100.
        assert h.quantile(0.5) <= 100
        assert h.quantile(1.0) >= h.quantile(0.0)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (3, 1, 2))

    def test_histogram_get_or_create_checks_bounds(self):
        r = MetricsRegistry()
        h = r.histogram("custom", (1, 2))
        assert r.histogram("custom", (1, 2)) is h
        with pytest.raises(ValueError):
            r.histogram("custom", (1, 2, 3))

    def test_snapshot_shape(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g").set(7)
        r.walk_length.observe(3)
        snap = r.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["c"] == 1
        assert snap["gauges"]["g"]["last"] == 7
        hist = snap["histograms"]["walk_length"]
        assert hist["count"] == 1
        assert sum(hist["counts"]) == 1
        assert len(hist["counts"]) == len(hist["bounds"]) + 1


class TestAttachment:
    def _machine(self, **kw):
        m = Machine(MachineConfig(num_cores=2, metrics=True, **kw))
        cell = Versioned(m.heap.alloc_versioned(1))
        return m, cell

    def test_config_metrics_attaches_registry(self):
        m, _ = self._machine()
        assert isinstance(m.metrics, MetricsRegistry)
        assert m.manager.metrics is m.metrics

    def test_attach_is_idempotent(self):
        m, _ = self._machine()
        assert attach_metrics(m) is m.metrics

    def test_disabled_by_default(self):
        m = Machine(MachineConfig(num_cores=2))
        assert m.metrics is None
        assert m.manager.metrics is None

    def test_run_populates_core_instruments(self):
        m, cell = self._machine()

        def prog(tid):
            for i in range(6):
                yield cell.store_ver(tid * 10 + i, i)
            for i in range(6):
                yield cell.load_ver(tid * 10 + i)

        m.submit([Task(1, prog), Task(2, prog)])
        m.run()
        snap = m.metrics.snapshot()
        hists = snap["histograms"]
        assert hists["line_occupancy"]["count"] > 0
        assert hists["free_depth"]["count"] > 0
        assert snap["gauges"]["free_depth"]["samples"] > 0

    def test_lock_wait_observed_on_stall_resolution(self):
        m, cell = self._machine()

        def producer(tid):
            yield isa.compute(500)
            yield cell.store_ver(1, 42)

        def consumer(tid):
            yield cell.load_ver(1)

        m.submit([Task(1, producer), Task(2, consumer)])
        m.run()
        wait = m.metrics.snapshot()["histograms"]["lock_wait"]
        assert wait["count"] >= 1
        # compute(500) at issue width 2 keeps the producer busy ~250
        # cycles; the consumer stalls for most of it.
        assert wait["max"] >= 100

    def test_gc_lag_pairs_shadow_to_reclaim(self):
        # Tight free list: versions are shadowed as tasks complete and
        # the GC must actually reclaim them mid-run.
        m = Machine(MachineConfig(
            num_cores=1, metrics=True,
            free_list_blocks=8, gc_watermark=4, refill_blocks=8,
            free_list_refills=2,
        ))
        cell = Versioned(m.heap.alloc_versioned(1))

        def writer(tid):
            yield cell.store_ver(tid, tid)

        m.submit([Task(i, writer) for i in range(1, 40)])
        m.run()
        snap = m.metrics.snapshot()
        lag = snap["histograms"]["gc_lag"]
        assert lag["count"] > 0
        assert lag["min"] >= 0
        assert snap["counters"]["gc_reclaims"] == lag["count"]


def test_metrics_do_not_change_simulated_timing():
    def run(metrics: bool) -> int:
        m = Machine(MachineConfig(
            num_cores=2, metrics=metrics,
            free_list_blocks=8, gc_watermark=4, refill_blocks=8,
        ))
        cell = Versioned(m.heap.alloc_versioned(1))

        def prog(tid):
            yield cell.store_ver(tid, tid)
            if tid > 1:
                yield cell.load_ver(tid - 1)

        m.submit([Task(i, prog) for i in range(1, 20)])
        return m.run().cycles

    assert run(False) == run(True)


def test_ostruct_error_types_unaffected_by_metrics():
    # Instrumented paths still raise the same errors.
    m = Machine(MachineConfig(num_cores=1, metrics=True))
    cell = Versioned(m.heap.alloc_versioned(1))

    def prog(tid):
        yield cell.store_ver(1, 1)
        yield cell.store_ver(1, 2)  # double store

    m.submit([Task(1, prog)])
    with pytest.raises(ReproError):
        m.run()
