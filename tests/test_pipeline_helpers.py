"""Tests for the Figure 1 spawning helpers and out-of-order task spawn."""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig, Task, Versioned
from repro.errors import ConfigError, SimulationError
from repro.ostruct import isa
from repro.runtime.pipeline import parallel_for, spawn_tasks


class TestParallelFor:
    def test_ids_and_index_passing(self):
        m = Machine(MachineConfig(num_cores=2))
        seen = []

        def body(tid, i):
            seen.append((tid, i))
            yield isa.compute(1)

        tasks = parallel_for(5, body, machine=m)
        assert [t.task_id for t in tasks] == [1, 2, 3, 4, 5]
        m.run()
        assert sorted(seen) == [(1, 0), (2, 1), (3, 2), (4, 3), (5, 4)]

    def test_extra_args_forwarded(self):
        m = Machine(MachineConfig(num_cores=1))
        cell = Versioned(m.heap.alloc_versioned(1))

        def body(tid, i, target):
            yield target.store_ver(tid, i * i)

        parallel_for(3, body, cell, machine=m)
        m.run()
        assert m.manager.versions_of(cell.addr) == [3, 2, 1]

    def test_figure1_outer_loop_shape(self):
        # N tasks all appending through one O-structure baton, as in the
        # paper's `for i: create_task(i, insert_end, new node{i})`.
        m = Machine(MachineConfig(num_cores=4))
        chain = Versioned(m.heap.alloc_versioned(1))
        m.manager.store_version(0, chain.addr, 1, 0)

        def appender(tid, i):
            count = yield chain.lock_load_ver(tid)
            yield chain.unlock_ver(tid)
            yield chain.store_ver(tid + 1, count + 1)

        parallel_for(8, appender, machine=m)
        m.run()
        lst = m.manager.lists[chain.addr]
        assert lst.find_latest(1 << 30)[0].value == 8

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigError):
            parallel_for(0, lambda tid, i: iter(()))

    def test_without_machine_returns_unsubmitted(self):
        tasks = parallel_for(2, lambda tid, i: iter(()))
        assert len(tasks) == 2
        assert all(not t.finished for t in tasks)


class TestSpawnTasks:
    def test_out_of_order_ids_permitted(self):
        # Rule 3 allows spawning above the lowest live id in any order.
        m = Machine(MachineConfig(num_cores=2))
        order = []

        def body(tid):
            order.append(tid)
            yield isa.compute(1)

        spawn_tasks([(5, body, ()), (3, body, ()), (9, body, ())], machine=m)
        m.run()
        assert sorted(order) == [3, 5, 9]

    def test_duplicate_ids_rejected(self):
        def body(tid):
            yield isa.compute(1)

        with pytest.raises(ConfigError):
            spawn_tasks([(1, body, ()), (1, body, ())])

    def test_rule3_still_enforced_at_submit(self):
        # Submitting below a live floor trips the tracker.
        m = Machine(MachineConfig(num_cores=1))
        m.tracker.register(10)

        def body(tid):
            yield isa.compute(1)

        with pytest.raises(SimulationError):
            spawn_tasks([(2, body, ())], machine=m)
