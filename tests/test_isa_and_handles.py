"""Tests for the micro-op constructors and the Versioned handle API."""

from __future__ import annotations

import pytest

from repro import Versioned
from repro.ostruct import isa


class TestConstructors:
    def test_compute(self):
        assert isa.compute(7) == ("compute", 7)

    def test_conventional(self):
        assert isa.load(0x10) == ("load", 0x10)
        assert isa.store(0x10, 5) == ("store", 0x10, 5)

    def test_versioned_ops_carry_address_first(self):
        # "in practice all operations take an address parameter"
        assert isa.load_version(0x40, 3) == ("load_version", 0x40, 3)
        assert isa.load_latest(0x40, 3) == ("load_latest", 0x40, 3)
        assert isa.store_version(0x40, 3, 9) == ("store_version", 0x40, 3, 9)
        assert isa.lock_load_version(0x40, 3) == ("lock_load_version", 0x40, 3)
        assert isa.lock_load_latest(0x40, 3) == ("lock_load_latest", 0x40, 3)
        assert isa.unlock_version(0x40, 3) == ("unlock_version", 0x40, 3, None)
        assert isa.unlock_version(0x40, 3, 4) == ("unlock_version", 0x40, 3, 4)

    def test_task_markers(self):
        assert isa.task_begin(5) == ("task_begin", 5)
        assert isa.task_end(5) == ("task_end", 5)

    def test_versioned_ops_set_is_exactly_the_seven_minus_markers(self):
        assert isa.VERSIONED_OPS == {
            "load_version",
            "load_latest",
            "store_version",
            "lock_load_version",
            "lock_load_latest",
            "unlock_version",
        }

    def test_rw_ops(self):
        lock = object()
        assert isa.rw_acquire(lock, "r") == ("rw_acquire", lock, "r")
        assert isa.rw_release(lock, "w") == ("rw_release", lock, "w")


class TestVersionedHandle:
    def test_methods_build_matching_op_tuples(self):
        h = Versioned(0x4000_0000)
        assert h.load_ver(1) == isa.load_version(0x4000_0000, 1)
        assert h.load_last(9) == isa.load_latest(0x4000_0000, 9)
        assert h.store_ver(1, "v") == isa.store_version(0x4000_0000, 1, "v")
        assert h.lock_load_ver(1) == isa.lock_load_version(0x4000_0000, 1)
        assert h.lock_load_last(9) == isa.lock_load_latest(0x4000_0000, 9)
        assert h.unlock_ver(1) == isa.unlock_version(0x4000_0000, 1)
        assert h.unlock_ver(1, 2) == isa.unlock_version(0x4000_0000, 1, 2)

    def test_handle_is_address_thin(self):
        h = Versioned(0x1234)
        assert h.addr == 0x1234
        with pytest.raises(AttributeError):
            h.other = 1  # __slots__: no stray attributes


class TestExplicitTaskMarkers:
    def test_program_can_nest_explicit_begin_end(self, uni_machine):
        # TASK-BEGIN/END are also available to programs directly
        # (Section III-B: "two dedicated new instructions").
        events = []
        uni_machine.tracker.on_end.append(events.append)

        def prog(tid):
            yield isa.task_begin(100)
            yield isa.compute(1)
            yield isa.task_end(100)

        uni_machine.submit_main(prog, task_id=0)
        uni_machine.run()
        assert 100 in events
        assert uni_machine.tracker.begun == 2  # outer task + explicit one
