"""Tests for the version-block free list and the page-table protection bit."""

from __future__ import annotations

import pytest

from repro.config import VERSION_BLOCK_SIZE
from repro.errors import FreeListExhausted, ProtectionFault
from repro.ostruct.free_list import REFILL_TRAP_CYCLES, FreeList
from repro.ostruct.page_table import PAGE_SIZE, PageTable
from repro.sim.stats import SimStats


def make_fl(initial=4, refill=4, max_refills=1, hook=None):
    return FreeList(
        base_paddr=0x8000_0000,
        initial_blocks=initial,
        refill_blocks=refill,
        max_refills=max_refills,
        stats=SimStats(),
        on_refill_page=hook,
    )


class TestFreeList:
    def test_allocations_are_unique_and_aligned(self):
        fl = make_fl(initial=8)
        addrs = [fl.allocate()[0] for _ in range(8)]
        assert len(set(addrs)) == 8
        assert all(a % VERSION_BLOCK_SIZE == 0 for a in addrs)

    def test_free_count_tracks_allocation_and_release(self):
        fl = make_fl(initial=4)
        assert fl.free_count == 4
        paddr, _ = fl.allocate()
        assert fl.free_count == 3
        fl.release(paddr)
        assert fl.free_count == 4

    def test_no_trap_latency_while_blocks_remain(self):
        fl = make_fl(initial=2)
        assert fl.allocate()[1] == 0
        assert fl.allocate()[1] == 0

    def test_os_refill_trap_charges_latency(self):
        fl = make_fl(initial=1, refill=4, max_refills=1)
        fl.allocate()
        paddr, lat = fl.allocate()  # triggers refill
        assert lat == REFILL_TRAP_CYCLES
        assert fl.free_count == 3

    def test_exhaustion_after_refill_budget(self):
        fl = make_fl(initial=1, refill=1, max_refills=1)
        fl.allocate()
        fl.allocate()  # uses the one refill
        with pytest.raises(FreeListExhausted):
            fl.allocate()

    def test_unlimited_refills(self):
        fl = make_fl(initial=1, refill=1, max_refills=None)
        for _ in range(10):
            fl.allocate()

    def test_refill_hook_marks_pages(self):
        regions = []
        fl = make_fl(initial=2, refill=4, max_refills=1, hook=lambda a, n: regions.append((a, n)))
        assert regions == [(0x8000_0000, 2 * VERSION_BLOCK_SIZE)]
        fl.allocate(); fl.allocate(); fl.allocate()
        assert len(regions) == 2
        assert regions[1][1] == 4 * VERSION_BLOCK_SIZE

    def test_released_blocks_are_reused(self):
        fl = make_fl(initial=1, max_refills=0)
        paddr, _ = fl.allocate()
        fl.release(paddr)
        again, _ = fl.allocate()
        assert again == paddr


class TestPageTable:
    def test_bit_set_and_queried(self):
        pt = PageTable()
        pt.mark_versioned(0x4000_0000, 100)
        assert pt.is_versioned(0x4000_0000)
        assert pt.is_versioned(0x4000_0063)
        assert not pt.is_versioned(0x4000_0000 + PAGE_SIZE)

    def test_range_spanning_pages(self):
        pt = PageTable()
        pt.mark_versioned(PAGE_SIZE - 8, 16)  # straddles two pages
        assert pt.is_versioned(PAGE_SIZE - 8)
        assert pt.is_versioned(PAGE_SIZE)

    def test_conventional_access_to_versioned_page_faults(self):
        pt = PageTable()
        pt.mark_versioned(0x5000)
        with pytest.raises(ProtectionFault):
            pt.check_conventional(0x5000)
        pt.check_conventional(0x9000)  # unversioned: fine

    def test_versioned_access_to_conventional_page_faults(self):
        pt = PageTable()
        with pytest.raises(ProtectionFault):
            pt.check_versioned(0x5000)
        pt.mark_versioned(0x5000)
        pt.check_versioned(0x5000)

    def test_clear_versioned_converts_back(self):
        pt = PageTable()
        pt.mark_versioned(0x5000)
        pt.clear_versioned(0x5000)
        assert not pt.is_versioned(0x5000)
        pt.check_conventional(0x5000)

    def test_page_of(self):
        assert PageTable.page_of(0) == 0
        assert PageTable.page_of(PAGE_SIZE) == 1
        assert PageTable.page_of(PAGE_SIZE * 3 + 5) == 3
