"""Fused vs unfused byte-identity: the macro-op fusion contract.

``MachineConfig(fused=...)`` selects an execution tier, never a
behaviour: the fused-block interpreter (:mod:`repro.sim.fuse`) may only
elide engine round trips the kernel would have performed with nothing in
between.  These tests enforce the contract end to end — ``SimStats``
rows, retired-op traces, and :mod:`repro.obs` metric snapshots must
match character for character across both tiers, for all six workloads,
under the sanitizer, under a random fault plan, and through a
checkpoint/replay round-trip.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import FaultSpec, Machine, MachineConfig, Task
from repro.config import TABLE2
from repro.errors import SimulationError
from repro.harness.presets import Scale
from repro.harness.sweeps import execute, irregular_spec, regular_spec
from repro.faults.spec import random_plan
from repro.ostruct import isa
from repro.recovery import RecoveryPolicy
from repro.runtime.task import OpTrace
from repro.sim import fuse
from repro.sim.machine import add_machine_observer, remove_machine_observer
from repro.sim.trace import Tracer
from repro.workloads import linked_list
from repro.workloads.opgen import READ_INTENSIVE, generate_ops, initial_keys

#: Tiny scale so the six-workload identity matrix stays fast.
TINY = Scale(
    name="tiny",
    small_elements=20,
    large_elements=40,
    n_ops=24,
    sens_ops=16,
    matmul_small=4,
    matmul_large=6,
    lev_small=6,
    lev_large=10,
    fig8_elements=40,
    fig8_ops=24,
    core_counts=(2, 4),
    max_cores=4,
    l1_sizes_kib=(8, 32),
    latencies=(2, 10),
    gc_ops=40,
)

IRREGULAR = ("linked_list", "binary_tree", "hash_table", "rb_tree")
REGULAR = ("matmul", "levenshtein")


def _spec(bench: str, config: MachineConfig, variant: str, cores: int):
    if bench in IRREGULAR:
        return irregular_spec(bench, config, TINY, "small", "4R-1W", variant, cores)
    return regular_spec(bench, config, TINY, "small", variant, cores)


def _row(spec) -> str:
    return json.dumps(execute(spec).to_json(), sort_keys=True)


def _pair(bench: str, config: MachineConfig, variant: str, cores: int):
    """Serialized result rows for both tiers of the same run."""
    fused = _row(_spec(bench, config.with_fused(True), variant, cores))
    unfused = _row(_spec(bench, config.with_fused(False), variant, cores))
    return fused, unfused


class TestByteIdentity:
    @pytest.mark.parametrize("bench", IRREGULAR + REGULAR)
    @pytest.mark.parametrize(
        "variant,cores", [("unversioned", 1), ("versioned", 1), ("versioned", 4)]
    )
    def test_all_workloads_both_tiers(self, bench, variant, cores):
        fused, unfused = _pair(bench, TABLE2, variant, cores)
        assert fused == unfused

    @pytest.mark.parametrize("bench", ("linked_list", "matmul"))
    def test_checked_sanitizer_runs(self, bench):
        config = dataclasses.replace(TABLE2, checked=True)
        fused, unfused = _pair(bench, config, "versioned", 2)
        assert fused == unfused

    @pytest.mark.parametrize("bench", ("hash_table", "levenshtein"))
    def test_metric_snapshots(self, bench):
        fused, unfused = _pair(bench, TABLE2.with_metrics(True), "versioned", 2)
        assert fused == unfused
        # The rows actually carry a metrics snapshot (not two Nones).
        assert '"metrics"' in fused

    @pytest.mark.parametrize("seed", (7, 19, 20180523))
    def test_random_fault_plan(self, seed):
        # A starvation plan may legitimately degrade into
        # FreeListExhausted (the stress harness tallies those); the
        # fusion contract then requires the *degradation* to be
        # identical too, post-mortem wait graph and all.
        plan = random_plan(seed, n_ops=40)
        config = TABLE2.with_faults(*plan)

        def outcome(cfg):
            try:
                row = execute(_spec("linked_list", cfg, "versioned", 2))
            except SimulationError as exc:
                return ("degraded", type(exc).__name__, str(exc))
            return ("ok", json.dumps(row.to_json(), sort_keys=True))

        out_fused = outcome(config.with_fused(True))
        assert out_fused == outcome(config.with_fused(False))


class TestTraceIdentity:
    def _traced_run(self, config: MachineConfig) -> tuple[str, list[str]]:
        state: dict = {}

        def observe(machine) -> None:
            state["tracer"] = Tracer(machine, capacity=1 << 14)

        init = initial_keys(TINY.small_elements, TINY.small_elements * 4, TINY.seed)
        ops = generate_ops(TINY.n_ops, READ_INTENSIVE, TINY.small_elements * 4, TINY.seed)
        add_machine_observer(observe)
        try:
            run = linked_list.run_versioned(config, init, ops, 2)
        finally:
            remove_machine_observer(observe)
        tracer = state["tracer"]
        events = [str(e) for e in tracer.events()]
        assert tracer.recorded == len(events)  # nothing evicted
        return json.dumps(run.stats.snapshot(), sort_keys=True), events

    def test_retired_op_trace_identical(self):
        rows_f, events_f = self._traced_run(TABLE2.with_fused(True))
        rows_u, events_u = self._traced_run(TABLE2.with_fused(False))
        assert rows_f == rows_u
        assert events_f == events_u
        assert events_f  # the trace is non-trivial


class TestCheckpointReplay:
    def test_round_trip_matches_both_tiers(self, tmp_path):
        init = initial_keys(TINY.small_elements, TINY.small_elements * 4, TINY.seed)
        ops = generate_ops(48, READ_INTENSIVE, TINY.small_elements * 4, TINY.seed)

        def run_fn(cfg):
            return linked_list.run_versioned(cfg, init, ops, 2)

        def rows(directory, config) -> str:
            run, report = RecoveryPolicy(directory, 32).execute(run_fn, config)
            return json.dumps(run.stats.snapshot(), sort_keys=True)

        ref_fused = rows(tmp_path / "f", TABLE2.with_fused(True))
        ref_unfused = rows(tmp_path / "u", TABLE2.with_fused(False))
        assert ref_fused == ref_unfused

        crashed = TABLE2.with_faults(FaultSpec(kind="crash-machine", at=90))
        run, report = RecoveryPolicy(tmp_path / "c", 32).execute(run_fn, crashed)
        assert report.completed
        assert report.restores >= 1
        assert json.dumps(run.stats.snapshot(), sort_keys=True) == ref_fused


class TestFusionMachinery:
    def _caught_machine(self, config: MachineConfig):
        caught: list = []
        add_machine_observer(caught.append)
        try:
            init = initial_keys(TINY.small_elements, TINY.small_elements * 4, TINY.seed)
            ops = generate_ops(TINY.n_ops, READ_INTENSIVE, TINY.small_elements * 4, TINY.seed)
            linked_list.run_versioned(config, init, ops, 1)
        finally:
            remove_machine_observer(caught.append)
        return caught[-1]

    def test_fuse_stats_telemetry(self):
        m = self._caught_machine(TABLE2.with_fused(True))
        fs = m.fuse_stats.as_dict()
        assert fs["blocks"] > 0
        assert fs["ops"] >= fs["blocks"]
        assert fs["fused_ops"] == fs["ops"] - fs["event_breaks"]
        assert fs["blocks"] >= fs["event_breaks"] + fs["op_breaks"] - 1

    def test_unfused_machine_runs_no_blocks(self):
        m = self._caught_machine(TABLE2.with_fused(False))
        assert m.fused_enabled is False
        assert all(v == 0 for v in m.fuse_stats.as_dict().values())
        assert all(core._run_block is None for core in m.cores)

    def test_env_hatch_disables_fusion(self, monkeypatch):
        for raw in ("0", "false", "OFF", " no "):
            monkeypatch.setenv("REPRO_FUSED", raw)
            assert fuse.env_enabled() is False
        for raw in ("", "1", "yes"):
            monkeypatch.setenv("REPRO_FUSED", raw)
            assert fuse.env_enabled() is True
        monkeypatch.setenv("REPRO_FUSED", "0")
        m = Machine(MachineConfig(num_cores=1))
        assert m.fused_enabled is False
        assert m.cores[0]._run_block is None

    def test_optrace_body_replays_and_fuses(self):
        ops = [
            isa.compute(6),
            isa.store(0x40, 7),
            isa.load(0x40),
            isa.compute(3),
            isa.store(0x80, 9),
        ]

        def run(config: MachineConfig):
            m = Machine(config)
            task = Task(1, ops, label="static")
            assert isinstance(task.body, OpTrace)
            m.submit([task])
            m.run()
            return m

        fused = run(MachineConfig(num_cores=1, fused=True))
        unfused = run(MachineConfig(num_cores=1, fused=False))
        assert fused.sim.now == unfused.sim.now
        assert fused.mem == unfused.mem == {0x40: 7, 0x80: 9}
        assert json.dumps(fused.stats.snapshot(), sort_keys=True) == json.dumps(
            unfused.stats.snapshot(), sort_keys=True
        )
        # The static trace went through the interpreter as one block.
        assert fused.fuse_stats.blocks >= 1
        assert fused.fuse_stats.ops == 5
