"""The examples are part of the public surface: they must run clean."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "linked_list_pipeline.py",
        "matmul_versioned.py",
        "snapshot_isolation.py",
        "sw_runtime_threads.py",
    ],
)
def test_example_runs_clean(script):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples should narrate what they show"
