"""Tests for the Table II configuration model."""

from __future__ import annotations

import pytest

from repro.config import BLOCK_SIZE, CacheConfig, MachineConfig, TABLE2
from repro.errors import ConfigError


class TestCacheConfig:
    def test_table2_l1_geometry(self):
        l1 = TABLE2.l1
        assert l1.size_bytes == 32 * 1024
        assert l1.ways == 8
        assert l1.block_bytes == 64
        assert l1.hit_latency == 4
        assert l1.num_sets == 64  # 32K / (8 * 64)

    def test_table2_l2_scales_with_cores(self):
        assert TABLE2.l2.size_bytes == 1536 * 1024 * 32
        assert TABLE2.with_cores(4).l2.size_bytes == 1536 * 1024 * 4
        assert TABLE2.l2.ways == 16
        assert TABLE2.l2.hit_latency == 35

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, ways=3)  # not divisible
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0, ways=1)
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, ways=2, block_bytes=48)  # not pow2


class TestMachineConfig:
    def test_dram_latency_conversion(self):
        # 60 ns at 2 GHz = 120 cycles.
        assert TABLE2.dram_latency_cycles == 120

    def test_defaults_match_table2(self):
        assert TABLE2.num_cores == 32
        assert TABLE2.issue_width == 2
        assert TABLE2.clock_ghz == 2.0
        assert TABLE2.dram_latency_ns == 60.0

    def test_with_cores_preserves_other_fields(self):
        c = TABLE2.with_cores(8)
        assert c.num_cores == 8
        assert c.l1 == TABLE2.l1
        assert c.versioned_op_extra_latency == 0

    def test_with_l1_kib_resizes_only_l1(self):
        c = TABLE2.with_l1_kib(8)
        assert c.l1.size_bytes == 8 * 1024
        assert c.l1.ways == TABLE2.l1.ways
        assert c.l2.size_bytes == TABLE2.l2.size_bytes

    @pytest.mark.parametrize("cycles", [2, 4, 6, 8, 10])
    def test_with_versioned_latency(self, cycles):
        c = TABLE2.with_versioned_latency(cycles)
        assert c.versioned_op_extra_latency == cycles

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_cores=0)
        with pytest.raises(ConfigError):
            MachineConfig(issue_width=0)
        with pytest.raises(ConfigError):
            MachineConfig(versioned_op_extra_latency=-1)
        with pytest.raises(ConfigError):
            MachineConfig(free_list_blocks=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TABLE2.num_cores = 64  # type: ignore[misc]

    def test_block_size_constant(self):
        assert BLOCK_SIZE == 64
