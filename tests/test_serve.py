"""Tests for the repro.serve subsystem (protocol, store, server, loadgen)."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.serve import protocol as P
from repro.serve.client import (
    AsyncServeClient,
    ServeNotLocked,
    ServeShuttingDown,
    ServeTimeout,
    ServeVersionExists,
    ServeVersionNotFound,
    SyncServeClient,
)
from repro.serve.loadgen import LoadGen, ReadChecker, flood
from repro.serve.server import ServeServer
from repro.serve.store import Shard, ShardedStore, TaskTracker, shard_of


def run(coro):
    return asyncio.run(coro)


async def _boot(**kwargs) -> ServeServer:
    server = ServeServer(**kwargs)
    await server.start()
    return server


# -- protocol ---------------------------------------------------------------


class TestProtocol:
    def test_request_round_trip_every_op(self):
        for op in P.OP_NAMES:
            body = {"key": "k", "version": 3, "value": [1, "x", None]}
            frame = P.encode_request(op, 17, body)
            (msg,) = P.decode_stream(frame)
            assert msg.kind == P.KIND_REQUEST
            assert msg.code == op
            assert msg.request_id == 17
            assert msg.body == body

    def test_response_round_trip_every_status(self):
        for status in P.STATUS_NAMES:
            frame = P.encode_response(status, 0xFFFFFFFF, {"error": "e"})
            (msg,) = P.decode_stream(frame)
            assert msg.kind == P.KIND_RESPONSE
            assert msg.code == status
            assert msg.request_id == 0xFFFFFFFF

    def test_empty_body_round_trips_as_empty_dict(self):
        (msg,) = P.decode_stream(P.encode_request(P.OP_PING, 1))
        assert msg.body == {}

    def test_incremental_feed_reassembles_split_frames(self):
        frames = P.encode_request(P.OP_PING, 1) + P.encode_response(P.OK, 1, {"a": 2})
        dec = P.FrameDecoder()
        got = []
        for i in range(len(frames)):
            got.extend(dec.feed(frames[i:i + 1]))
        assert [m.request_id for m in got] == [1, 1]
        assert got[1].body == {"a": 2}
        assert dec.pending_bytes == 0

    def test_pipelined_frames_in_one_chunk(self):
        blob = b"".join(P.encode_request(P.OP_PING, i) for i in range(5))
        assert [m.request_id for m in P.decode_stream(blob)] == list(range(5))

    def test_truncated_frame_is_not_a_message(self):
        frame = P.encode_request(P.OP_PING, 1)
        dec = P.FrameDecoder()
        assert dec.feed(frame[:-1]) == []
        assert dec.pending_bytes == len(frame) - 1
        with pytest.raises(P.ProtocolError):
            list(P.decode_stream(frame[:-1]))

    def test_bad_magic_rejected(self):
        frame = bytearray(P.encode_request(P.OP_PING, 1))
        frame[4] ^= 0xFF  # first magic byte, after the length prefix
        with pytest.raises(P.ProtocolError, match="magic"):
            list(P.decode_stream(bytes(frame)))

    def test_oversized_length_rejected_before_buffering(self):
        huge = struct.pack(">I", P.MAX_FRAME + 1)
        with pytest.raises(P.ProtocolError, match="MAX_FRAME"):
            P.FrameDecoder().feed(huge)

    def test_undersized_length_rejected(self):
        tiny = struct.pack(">I", 3) + b"abc"
        with pytest.raises(P.ProtocolError, match="below"):
            P.FrameDecoder().feed(tiny)

    def test_garbage_json_body_rejected(self):
        good = P.encode_request(P.OP_PING, 1, {"k": 1})
        bad = bytearray(good)
        bad[-2] = 0xC0  # corrupt the JSON tail, length still consistent
        with pytest.raises(P.ProtocolError, match="JSON"):
            list(P.decode_stream(bytes(bad)))

    def test_non_object_body_rejected(self):
        payload = struct.pack(">HBBI", P.MAGIC, 0, P.OP_PING, 1) + b"[1,2]"
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(P.ProtocolError, match="object"):
            list(P.decode_stream(frame))

    def test_unknown_kind_rejected(self):
        payload = struct.pack(">HBBI", P.MAGIC, 7, P.OP_PING, 1)
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(P.ProtocolError, match="kind"):
            list(P.decode_stream(frame))

    def test_poisoned_decoder_stays_poisoned(self):
        dec = P.FrameDecoder()
        with pytest.raises(P.ProtocolError):
            dec.feed(struct.pack(">I", P.MAX_FRAME + 1))
        with pytest.raises(P.ProtocolError, match="poisoned"):
            dec.feed(P.encode_request(P.OP_PING, 1))

    def test_unencodable_body_raises_protocol_error(self):
        with pytest.raises(P.ProtocolError, match="JSON"):
            P.encode_request(P.OP_PING, 1, {"v": object()})


# -- sharded store ----------------------------------------------------------


class TestShardedStore:
    def test_shard_routing_is_stable_across_runs(self):
        # Golden CRC32-derived values: if these move, cached clients and
        # cross-process shard maps silently break.
        golden = {"alpha": 2, "beta": 3, "gamma": 1, "delta": 1, "k0": 7}
        assert {k: shard_of(k, 8) for k in golden} == golden

    def test_routing_respects_shard_count(self):
        for n in (1, 2, 3, 8, 16):
            for key in ("a", "b", "c", "hello/world"):
                assert 0 <= shard_of(key, n) < n

    def test_same_key_same_ostructure(self):
        store = ShardedStore(num_shards=4)
        assert store.ostructure("k") is store.ostructure("k")

    def test_store_and_load_round_trip(self):
        store = ShardedStore(num_shards=4)
        store.store_version("k", 1, "v1")
        store.store_version("k", 5, "v5")
        assert store.load_version("k", 1, timeout=1) == "v1"
        assert store.load_latest("k", 9, timeout=1) == (5, "v5")
        assert store.probe_version("k", 2) is None
        assert store.probe_latest("k", 4) == (1, "v1")

    def test_watermark_reclaim_drops_shadowed_keeps_boundary_and_locked(self):
        store = ShardedStore(num_shards=1, reclaim_watermark=1000)
        shard = store.shards[0]
        for v in range(1, 8):
            store.store_version("k", v, v)
        store.lock_load_version("k", 2, task_id=9, timeout=1)
        removed = shard.reclaim(floor=6)
        # Keeps: boundary 6 (LOAD-LATEST(6) target), 7 (>= floor), and
        # the locked version 2.
        assert set(store.ostructure("k").versions()) == {2, 6, 7}
        assert removed == 4
        assert shard.reclaim_passes == 1
        assert shard.reclaimed_versions == 4

    def test_store_triggers_reclaim_at_watermark_with_live_floor(self):
        store = ShardedStore(num_shards=1, reclaim_watermark=4)
        store.task_begin(100)  # floor = 100: everything below is shadowed
        reclaimed = 0
        for v in range(1, 9):
            reclaimed += store.store_version("k", v, v)
        assert reclaimed > 0
        versions = set(store.ostructure("k").versions())
        assert 8 in versions  # newest always survives
        assert len(versions) < 8

    def test_no_reclaim_without_live_sessions(self):
        store = ShardedStore(num_shards=1, reclaim_watermark=2)
        for v in range(1, 7):
            assert store.store_version("k", v, v) == 0
        assert store.ostructure("k").versions() == [1, 2, 3, 4, 5, 6]

    def test_task_tracker_floor_and_refcount(self):
        t = TaskTracker()
        assert t.floor() is None
        t.begin(5)
        t.begin(3)
        t.begin(3)
        assert t.floor() == 3
        assert t.end(3) is True
        assert t.floor() == 3  # refcounted: one begin still open
        assert t.end(3) is True
        assert t.floor() == 5
        assert t.end(99) is False

    def test_stats_shape(self):
        store = ShardedStore(num_shards=2)
        store.store_version("a", 1, "x")
        store.task_begin(7)
        s = store.stats()
        assert s["shards"] == 2
        assert s["keys"] == 1
        assert s["versions"] == 1
        assert s["live_tasks"] == 1


# -- server + client --------------------------------------------------------


class TestServer:
    def test_full_op_surface_round_trip(self):
        async def scenario():
            server = await _boot(threads=2)
            try:
                async with AsyncServeClient(*server.address, pool_size=2) as c:
                    await c.ping()
                    await c.task_begin(10)
                    await c.store_version("k", 10, {"n": 1})
                    assert await c.load_version("k", 10) == {"n": 1}
                    assert await c.load_latest("k", 99) == (10, {"n": 1})
                    v = await c.lock_load_version("k", 10, task_id=10)
                    assert v == {"n": 1}
                    await c.unlock_version("k", 10, task_id=10, new_version=12)
                    assert await c.load_version("k", 12) == {"n": 1}
                    got = await c.lock_load_latest("k", 99, task_id=10)
                    assert got == (12, {"n": 1})
                    await c.unlock_version("k", 12, task_id=10)
                    stats = await c.stats()
                    assert stats["store"]["live_tasks"] == 1
                    await c.task_end(10)
                assert server.stats.protocol_errors == 0
            finally:
                assert await server.drain() is True

        run(scenario())

    def test_deadline_maps_to_timeout_with_structured_context(self):
        async def scenario():
            server = await _boot(threads=1)
            try:
                async with AsyncServeClient(*server.address, pool_size=1) as c:
                    await c.store_version("k", 1, "x")
                    with pytest.raises(ServeTimeout) as exc_info:
                        await c.load_version("k", 5, deadline_ms=100)
                    ctx = exc_info.value.body["context"]
                    assert ctx["op"] == "load-version"
                    assert ctx["wanted"] == 5
                    assert ctx["latest"] == 1
                    assert "k" in ctx["address"]
                assert server.stats.timeouts == 1
            finally:
                await server.drain()

        run(scenario())

    def test_zero_deadline_probes_instead_of_waiting(self):
        async def scenario():
            server = await _boot(threads=1)
            try:
                async with AsyncServeClient(*server.address, pool_size=1) as c:
                    await c.store_version("k", 1, "x")
                    with pytest.raises(ServeVersionNotFound):
                        await c.load_version("k", 5, deadline_ms=0)
                    with pytest.raises(ServeVersionNotFound):
                        await c.load_latest("nokey", 9, deadline_ms=0)
                    assert await c.load_version("k", 1, deadline_ms=0) == "x"
            finally:
                await server.drain()

        run(scenario())

    def test_semantic_errors_map_to_statuses(self):
        async def scenario():
            server = await _boot(threads=1)
            try:
                async with AsyncServeClient(*server.address, pool_size=1) as c:
                    await c.store_version("k", 1, "x")
                    with pytest.raises(ServeVersionExists):
                        await c.store_version("k", 1, "y")
                    with pytest.raises(ServeNotLocked):
                        await c.unlock_version("k", 1, task_id=3)
            finally:
                await server.drain()

        run(scenario())

    def test_malformed_request_fields_get_bad_request(self):
        async def scenario():
            server = await _boot(threads=1)
            try:
                async with AsyncServeClient(*server.address, pool_size=1) as c:
                    msg = await c.request_raw(P.OP_LOAD_VERSION, {"key": "k"})
                    assert msg.code == P.ERR_BAD_REQUEST
                    msg = await c.request_raw(
                        P.OP_LOAD_VERSION, {"key": "", "version": 1}
                    )
                    assert msg.code == P.ERR_BAD_REQUEST
                    msg = await c.request_raw(
                        P.OP_STORE_VERSION, {"key": "k", "version": 1}
                    )
                    assert msg.code == P.ERR_BAD_REQUEST  # no value field
                    msg = await c.request_raw(
                        P.OP_LOAD_VERSION,
                        {"key": "k", "version": 1, "deadline_ms": -5},
                    )
                    assert msg.code == P.ERR_BAD_REQUEST
                    msg = await c.request_raw(P.OP_PING, {})
                    assert msg.code == P.OK  # connection survives bad requests
            finally:
                await server.drain()

        run(scenario())

    def test_garbage_frame_answered_then_connection_closed(self):
        async def scenario():
            server = await _boot(threads=1)
            try:
                reader, writer = await asyncio.open_connection(*server.address)
                writer.write(b"\x00\x00\x00\x0cgarbagegarba")
                await writer.drain()
                dec = P.FrameDecoder()
                msgs = []
                while not msgs:
                    data = await asyncio.wait_for(reader.read(65536), timeout=5)
                    assert data, "server closed without answering"
                    msgs.extend(dec.feed(data))
                assert msgs[0].code == P.ERR_BAD_REQUEST
                # The stream is untrustworthy: the server hangs up.
                assert await asyncio.wait_for(reader.read(65536), timeout=5) == b""
                writer.close()
                assert server.stats.protocol_errors == 1
            finally:
                await server.drain()

        run(scenario())

    def test_overload_sheds_and_server_stays_live(self):
        async def scenario():
            server = await _boot(threads=1, max_inflight=2)
            try:
                report = await flood(
                    *server.address, requests=20, deadline_ms=300, pool_size=2
                )
                assert report.sheds > 0
                assert report.protocol_errors == 0
                assert server.stats.shed == report.sheds
                # Shed replies are cheap rejections; the server still works.
                async with AsyncServeClient(*server.address, pool_size=1) as c:
                    await c.store_version("k", 1, "alive")
                    assert await c.load_version("k", 1) == "alive"
            finally:
                assert await server.drain() is True

        run(scenario())

    def test_graceful_drain_finishes_inflight_then_rejects(self):
        async def scenario():
            server = await _boot(threads=1, drain_timeout=5)
            async with AsyncServeClient(*server.address, pool_size=2) as c:
                # Park one op server-side (nobody ever stores version 7).
                parked = asyncio.ensure_future(
                    c.request_raw(
                        P.OP_LOAD_VERSION,
                        {"key": "k", "version": 7, "deadline_ms": 400},
                    )
                )
                while server.inflight == 0:
                    await asyncio.sleep(0.005)
                drain = asyncio.ensure_future(server.drain())
                await asyncio.sleep(0.05)
                # Not yet drained: the parked op is still in flight.
                assert not drain.done()
                msg = await parked  # completes (with its deadline timeout)
                assert msg.code == P.ERR_TIMEOUT
                assert await drain is True
                assert server.inflight == 0

        run(scenario())

    def test_drain_rejects_new_requests_with_shutting_down(self):
        async def scenario():
            server = await _boot(threads=1, drain_timeout=5)
            async with AsyncServeClient(*server.address, pool_size=1) as c:
                parked = asyncio.ensure_future(
                    c.request_raw(
                        P.OP_LOAD_VERSION,
                        {"key": "k", "version": 7, "deadline_ms": 500},
                    )
                )
                while server.inflight == 0:
                    await asyncio.sleep(0.005)
                drain = asyncio.ensure_future(server.drain())
                await asyncio.sleep(0.02)
                with pytest.raises(ServeShuttingDown):
                    await c.ping()
                assert (await parked).code == P.ERR_TIMEOUT
                assert await drain is True

        run(scenario())

    def test_disconnect_auto_ends_sessions(self):
        async def scenario():
            server = await _boot(threads=1)
            try:
                c = await AsyncServeClient(*server.address, pool_size=1).connect()
                await c.task_begin(42)
                assert server.store.tracker.floor() == 42
                await c.close()
                for _ in range(200):
                    if server.store.tracker.floor() is None:
                        break
                    await asyncio.sleep(0.01)
                assert server.store.tracker.floor() is None
                assert server.stats.auto_ended_sessions == 1
            finally:
                await server.drain()

        run(scenario())

    def test_sync_client_wrapper(self):
        async def boot():
            return await _boot(threads=2)

        loop = asyncio.new_event_loop()
        server = loop.run_until_complete(boot())
        pump = __import__("threading").Thread(target=loop.run_forever, daemon=True)
        pump.start()
        try:
            with SyncServeClient(*server.address, pool_size=2) as c:
                c.ping()
                c.task_begin(5)
                c.store_version("k", 5, [1, 2])
                assert c.load_version("k", 5) == [1, 2]
                assert c.load_latest("k", 9) == (5, [1, 2])
                assert c.lock_load_latest("k", 9, task_id=5) == (5, [1, 2])
                c.unlock_version("k", 5, task_id=5, new_version=6)
                assert c.load_version("k", 6) == [1, 2]
                c.task_end(5)
                assert c.stats()["server"]["responses_ok"] > 0
        finally:
            asyncio.run_coroutine_threadsafe(server.drain(), loop).result(10)
            loop.call_soon_threadsafe(loop.stop)
            pump.join(timeout=5)
            loop.close()


# -- read-validity checker --------------------------------------------------


class TestReadChecker:
    def test_clean_history_passes(self):
        c = ReadChecker()
        c.record_store("k", 1, "a")
        c.record_store("k", 3, "b")
        c.record_read("k", 3, "b", cap=5)
        c.record_read("k", 1, "a")
        assert c.violations() == []

    def test_corrupted_value_caught(self):
        c = ReadChecker()
        c.record_store("k", 1, "a")
        c.record_read("k", 1, "CORRUPT")
        (v,) = c.violations()
        assert "CORRUPT" in v and "v1" in v

    def test_read_of_unknown_version_caught(self):
        c = ReadChecker()
        c.record_store("k", 1, "a")
        c.record_read("k", 2, "a")
        (v,) = c.violations()
        assert "never stored" in v

    def test_cap_discipline_caught(self):
        c = ReadChecker()
        c.record_store("k", 9, "a")
        c.record_read("k", 9, "a", cap=5, detail="scan")
        (v,) = c.violations()
        assert "above cap" in v and "scan" in v

    def test_duplicate_planned_store_is_a_loadgen_bug(self):
        from repro.errors import ReproError

        c = ReadChecker()
        c.record_store("k", 1, "a")
        with pytest.raises(ReproError, match="duplicate"):
            c.record_store("k", 1, "b")


# -- end-to-end loadgen -----------------------------------------------------


class TestLoadGenEndToEnd:
    @pytest.mark.parametrize(
        "mix", ["read_heavy", "write_heavy", "lock_contention", "snapshot_scan"]
    )
    def test_mix_runs_clean(self, mix):
        async def scenario():
            from repro.serve.store import ShardedStore

            watermark = 16 if mix == "write_heavy" else 0
            server = await _boot(
                store=ShardedStore(num_shards=4, reclaim_watermark=watermark),
                threads=4,
            )
            try:
                gen = LoadGen(
                    *server.address, mix, seed=7, ops=80, clients=4,
                    session_every=8,
                )
                report = await gen.run()
            finally:
                assert await server.drain() is True
            assert report.protocol_errors == 0
            assert report.violations == []
            assert report.ok > 0
            assert report.sheds == 0
            assert server.stats.protocol_errors == 0
            return report

        run(scenario())

    def test_open_loop_mode_paces_arrivals(self):
        async def scenario():
            server = await _boot(threads=4)
            try:
                gen = LoadGen(
                    *server.address, "read_heavy", seed=1, ops=40,
                    clients=4, open_rate=400.0,
                )
                report = await gen.run()
            finally:
                await server.drain()
            assert report.mode == "open"
            assert report.protocol_errors == 0
            assert report.violations == []
            # 40 ops at 400/s is at least ~0.1s of schedule.
            assert report.wall_seconds > 0.05

        run(scenario())

    def test_deterministic_op_streams_share_no_version_ids(self):
        # Two generators with the same seed plan identical version ids;
        # within one run, workers can never collide (worker-partitioned).
        g1 = LoadGen("h", 0, "write_heavy", seed=3, clients=4)
        g2 = LoadGen("h", 0, "write_heavy", seed=3, clients=4)
        ids1 = [g1._alloc(w) for w in range(4) for _ in range(10)]
        ids2 = [g2._alloc(w) for w in range(4) for _ in range(10)]
        assert ids1 == ids2
        assert len(set(ids1)) == len(ids1)
