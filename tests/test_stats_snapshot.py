"""Tests for SimStats.snapshot: completeness and JSON round-trip fidelity.

Regression for the result-cache bug where snapshots omitted
``per_core_cycles`` and ``l1_miss_rate``: cached rows then differed from
fresh ones.  Snapshot dicts must survive ``json.dumps``/``loads``
byte-identically, which is why ``per_core_cycles`` uses string keys.
"""

from __future__ import annotations

import json

from repro import Machine, MachineConfig, Task, Versioned
from repro.sim.stats import SimStats


def test_snapshot_includes_per_core_cycles_and_miss_rate():
    s = SimStats()
    s.l1_hits = 3
    s.l1_misses = 1
    s.per_core_cycles.update({1: 20, 0: 10})
    snap = s.snapshot()
    assert snap["per_core_cycles"] == {"0": 10, "1": 20}
    assert snap["l1_miss_rate"] == 0.25


def test_snapshot_copies_rather_than_aliases():
    s = SimStats()
    s.per_core_cycles[0] = 10
    snap = s.snapshot()
    snap["per_core_cycles"]["0"] = 999
    assert s.per_core_cycles[0] == 10


def test_snapshot_json_round_trip_is_identity():
    s = SimStats()
    s.l1_hits = 7
    s.per_core_cycles.update({0: 5, 3: 9})
    snap = s.snapshot()
    assert json.loads(json.dumps(snap)) == snap


def test_machine_run_snapshot_covers_every_core():
    m = Machine(MachineConfig(num_cores=3))
    cell = Versioned(m.heap.alloc_versioned(1))

    def prog(tid):
        yield cell.store_ver(tid, tid)

    m.submit([Task(0, prog), Task(1, prog), Task(2, prog)])
    stats = m.run()
    snap = stats.snapshot()
    assert set(snap["per_core_cycles"]) == {"0", "1", "2"}
    assert all(v > 0 for v in snap["per_core_cycles"].values())
    assert snap["l1_miss_rate"] == stats.l1_miss_rate


def test_snapshot_includes_recovery_counters():
    """The fault-injection/recovery counters must ride through snapshot()
    and a JSON round trip identically (they feed cached sweep rows)."""
    recovery = (
        "emergency_gc_phases",
        "backpressure_stalls",
        "backpressure_stall_cycles",
        "watchdog_trips",
        "watchdog_kicks",
        "tasks_retried",
        "faults_injected",
        "checkpoints_reached",
        "gc_pin_kept",
    )
    s = SimStats()
    for i, name in enumerate(recovery, start=1):
        setattr(s, name, i)
    snap = s.snapshot()
    for i, name in enumerate(recovery, start=1):
        assert snap[name] == i
    assert json.loads(json.dumps(snap)) == snap


def test_recovery_counters_populated_by_watchdog_run():
    from repro.ostruct import isa

    m = Machine(MachineConfig(num_cores=2, watchdog_cycles=2_000))
    a = Versioned(m.heap.alloc_versioned(1))
    b = Versioned(m.heap.alloc_versioned(1))
    m.manager.store_version(0, a.addr, 0, 1)
    m.manager.store_version(0, b.addr, 0, 2)

    def body(tid, mine, want):
        yield mine.lock_load_ver(0)
        yield isa.compute(50)
        yield want.lock_load_ver(0)
        yield mine.unlock_ver(0)
        yield want.unlock_ver(0)

    m.submit([Task(1, body, a, b), Task(2, body, b, a)])
    stats = m.run()
    snap = stats.snapshot()
    assert snap["watchdog_trips"] >= 1
    assert snap["tasks_retried"] == 1
    assert json.loads(json.dumps(snap)) == snap
