"""Property-based tests of the simulator substrate against pure models."""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, MachineConfig
from repro.sim.cache import Cache
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.stats import SimStats


class _LRUModel:
    """Oracle: per-set OrderedDict LRU."""

    def __init__(self, sets: int, ways: int):
        self.sets = [OrderedDict() for _ in range(sets)]
        self.ways = ways

    def _set(self, block: int) -> OrderedDict:
        return self.sets[block % len(self.sets)]

    def lookup(self, block: int) -> bool:
        s = self._set(block)
        if block in s:
            s.move_to_end(block)
            return True
        return False

    def insert(self, block: int) -> int | None:
        s = self._set(block)
        victim = None
        if block not in s and len(s) >= self.ways:
            victim, _ = s.popitem(last=False)
        s[block] = True
        s.move_to_end(block)
        return victim

    def invalidate(self, block: int) -> bool:
        return self._set(block).pop(block, None) is not None

    def contents(self) -> set[int]:
        return {b for s in self.sets for b in s}


_cache_op = st.one_of(
    st.tuples(st.just("lookup"), st.integers(0, 63)),
    st.tuples(st.just("insert"), st.integers(0, 63)),
    st.tuples(st.just("invalidate"), st.integers(0, 63)),
)


@given(ops=st.lists(_cache_op, max_size=200))
@settings(max_examples=150, deadline=None)
def test_property_cache_matches_lru_oracle(ops):
    """The cache's hit/miss/eviction behaviour equals a textbook LRU."""
    cfg = CacheConfig(size_bytes=4 * 4 * 64, ways=4, hit_latency=1)  # 4 sets
    cache = Cache(cfg)
    model = _LRUModel(sets=4, ways=4)
    for op, block in ops:
        if op == "lookup":
            assert cache.lookup(block) == model.lookup(block)
        elif op == "insert":
            assert cache.insert(block) == model.insert(block)
        else:
            assert cache.invalidate(block) == model.invalidate(block)
    resident = {
        b for b in cache._tags if b != -1  # noqa: SLF001 - test introspection
    }
    assert resident == model.contents()


@given(
    accesses=st.lists(
        st.tuples(
            st.integers(0, 3),               # core
            st.integers(0, 40),              # line index
            st.booleans(),                   # write?
        ),
        max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_directory_consistent_with_l1_contents(accesses):
    """After any access sequence: directory sharers == actual L1 residency,
    and a written line never stays in two L1s."""
    cfg = MachineConfig(num_cores=4)
    h = MemoryHierarchy(cfg, SimStats())
    for core, line, write in accesses:
        h.access(core, line * 64, write=write)
        if write:
            block = line
            holders = [i for i, l1 in enumerate(h.l1s) if l1.contains(block)]
            assert holders == [core]
    for block in range(41):
        holders = {i for i, l1 in enumerate(h.l1s) if l1.contains(block)}
        assert h.directory.sharers_of(block) == holders


@given(
    stores=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 60)),  # (addr idx, version)
        min_size=1,
        max_size=120,
    ),
    phase_points=st.sets(st.integers(0, 119), max_size=6),
)
@settings(max_examples=100, deadline=None)
def test_property_gc_never_reclaims_latest_or_future_reads(stores, phase_points):
    """Random store sequences with GC phases at random points: after every
    phase, every address still answers LOAD-LATEST(inf) with its true
    latest version, and lists stay structurally sound."""
    from tests.test_manager import Rig

    rig = Rig(free_list_blocks=4096, gc_watermark=0)
    latest: dict[int, int] = {}
    seen: dict[int, set[int]] = {}
    for i, (idx, version) in enumerate(stores):
        addr = rig.addr + 4 * idx
        if version in seen.setdefault(idx, set()):
            continue
        seen[idx].add(version)
        rig.manager.store_version(0, addr, version, version * 7)
        latest[idx] = max(latest.get(idx, -1), version)
        if i in phase_points:
            rig.gc.start_phase()
    rig.gc.start_phase()
    for idx, v in latest.items():
        addr = rig.addr + 4 * idx
        _, (got_v, got_val) = rig.manager.load_latest(0, addr, 1 << 30)
        assert got_v == v
        assert got_val == v * 7
        rig.manager.lists[addr].check_invariants()
