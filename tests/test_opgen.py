"""Tests for operation-stream generation and the sequential oracle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads.opgen import (
    DELETE,
    INSERT,
    LOOKUP,
    READ_INTENSIVE,
    SCAN,
    WRITE_INTENSIVE,
    OpMix,
    generate_ops,
    initial_keys,
    reference_results,
)


class TestGeneration:
    def test_deterministic(self):
        a = generate_ops(100, READ_INTENSIVE, 1000, seed=5)
        b = generate_ops(100, READ_INTENSIVE, 1000, seed=5)
        assert a == b

    def test_seed_changes_stream(self):
        a = generate_ops(100, READ_INTENSIVE, 1000, seed=5)
        b = generate_ops(100, READ_INTENSIVE, 1000, seed=6)
        assert a != b

    def test_mix_ratios_roughly_hold(self):
        ops = generate_ops(2000, READ_INTENSIVE, 10_000, seed=1)
        reads = sum(1 for o in ops if o[0] == LOOKUP)
        assert 0.7 < reads / len(ops) < 0.9  # target 0.8

    def test_write_intensive_is_half_reads(self):
        ops = generate_ops(2000, WRITE_INTENSIVE, 10_000, seed=1)
        reads = sum(1 for o in ops if o[0] == LOOKUP)
        assert 0.4 < reads / len(ops) < 0.6

    def test_inserts_and_deletes_balanced(self):
        # Paper: equal insert/delete counts keep the footprint stable.
        ops = generate_ops(999, WRITE_INTENSIVE, 10_000, seed=2)
        ins = sum(1 for o in ops if o[0] == INSERT)
        dels = sum(1 for o in ops if o[0] == DELETE)
        assert abs(ins - dels) <= 1

    def test_scan_ops_carry_range(self):
        ops = generate_ops(50, READ_INTENSIVE, 100, seed=3, read_op=SCAN, scan_range=8)
        scans = [o for o in ops if o[0] == SCAN]
        assert scans and all(extra == 8 for _, _, extra in scans)

    def test_initial_keys_distinct_and_in_range(self):
        keys = initial_keys(500, 2000, seed=4)
        assert len(set(keys)) == 500
        assert all(0 <= k < 2000 for k in keys)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigError):
            generate_ops(0, READ_INTENSIVE, 100, seed=1)
        with pytest.raises(ConfigError):
            generate_ops(10, READ_INTENSIVE, 100, seed=1, read_op="bogus")
        with pytest.raises(ConfigError):
            initial_keys(200, 100, seed=1)

    def test_opmix_read_fraction(self):
        assert OpMix(4, 1, "x").read_fraction() == 0.8
        assert READ_INTENSIVE.name == "4R-1W"
        assert WRITE_INTENSIVE.name == "1R-1W"


class TestReferenceOracle:
    def test_lookup_semantics(self):
        results, final = reference_results([5, 10], [(LOOKUP, 5, 0), (LOOKUP, 7, 0)])
        assert results == [True, False]
        assert final == [5, 10]

    def test_insert_and_duplicate(self):
        results, final = reference_results([5], [(INSERT, 7, 0), (INSERT, 7, 0)])
        assert results == [True, False]
        assert final == [5, 7]

    def test_delete_and_missing(self):
        results, final = reference_results([5, 7], [(DELETE, 7, 0), (DELETE, 7, 0)])
        assert results == [True, False]
        assert final == [5]

    def test_scan_returns_sorted_window(self):
        results, _ = reference_results([1, 3, 5, 7, 9], [(SCAN, 4, 3)])
        assert results == [[5, 7, 9]]

    def test_scan_at_end(self):
        results, _ = reference_results([1, 3], [(SCAN, 9, 4)])
        assert results == [[]]


@given(
    init=st.lists(st.integers(0, 200), max_size=30),
    n_ops=st.integers(1, 120),
    seed=st.integers(0, 1000),
)
@settings(max_examples=100, deadline=None)
def test_property_oracle_matches_set_semantics(init, n_ops, seed):
    """The oracle's final contents equal a straightforward set replay."""
    ops = generate_ops(n_ops, WRITE_INTENSIVE, 200, seed)
    results, final = reference_results(init, ops)
    model = set(init)
    for (op, key, _), result in zip(ops, results):
        if op == LOOKUP:
            assert result == (key in model)
        elif op == INSERT:
            assert result == (key not in model)
            model.add(key)
        elif op == DELETE:
            assert result == (key in model)
            model.discard(key)
    assert final == sorted(model)
