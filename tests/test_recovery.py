"""Tests for the recovery tier (repro.recovery).

Covers the four layers of the checkpoint/restore story: the state walk
and its digest, the CRC-guarded on-disk images (including SIGKILL-ing a
writer mid-write), the in-machine Checkpointer with the GC epoch pin,
and crash auto-recovery through RecoveryPolicy — culminating in the
byte-identical-replay property across all six workloads, and in sweep
resume after the parent process itself is killed.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FaultSpec, Machine, MachineConfig, Task, Versioned
from repro.config import TABLE2
from repro.errors import CheckpointError, ConfigError, MachineCrash
from repro.harness.presets import get_scale
from repro.harness.runner import SweepRunner, code_version, make_spec
from repro.harness.sweeps import (
    _IRREGULAR_MODULES,
    _run_irregular,
    _run_regular,
    irregular_spec,
)
from repro.obs import SpanRecorder, critical_path, dependency_edges
from repro.recovery import (
    Checkpoint,
    Checkpointer,
    RecoveryPolicy,
    capture_state,
    find_latest_valid_image,
    load_images,
)
from repro.recovery.checkpoint import atomic_write_bytes, image_path, state_digest
from repro.sim.machine import add_machine_observer, remove_machine_observer
from repro.sim.trace import Tracer
from repro.workloads.opgen import READ_INTENSIVE

SRC = str(Path(__file__).resolve().parents[1] / "src")

ALL_WORKLOADS = (
    "linked_list",
    "binary_tree",
    "hash_table",
    "rb_tree",
    "levenshtein",
    "matmul",
)


# ---------------------------------------------------------------------------
# Helpers.
# ---------------------------------------------------------------------------


def _seeded_machine(extra_versions: int = 0) -> tuple[Machine, int]:
    """A small machine with a deterministic version store; ``(m, vaddr)``."""
    m = Machine(MachineConfig(num_cores=2))
    vaddr = m.heap.alloc_versioned(1)
    for v in range(3 + extra_versions):
        m.manager.store_version(0, vaddr, v, 100 + v)
    return m, vaddr


def _store_prog(cell: Versioned, n: int):
    """A task body storing versions 1..n (version 0 is host-stored)."""

    def prog(tid):
        for v in range(1, n + 1):
            yield cell.store_ver(v, v * 10)
        return n

    return prog


def _policy_run(
    workload: str,
    config,
    directory: Path,
    *,
    every: int = 32,
    cores: int = 2,
    n_ops: int | None = 300,
    tail: int = 30,
    max_restores: int = 4,
):
    """One RecoveryPolicy-managed workload run; ``(run, report, tail)``.

    Mirrors the ``python -m repro recover`` driver so tests can compare a
    reference run against a crashed-and-recovered run byte for byte.
    """
    scale = get_scale("quick")

    def run_fn(cfg):
        if workload in _IRREGULAR_MODULES:
            return _run_irregular(
                workload, cfg, scale, "small", READ_INTENSIVE,
                "versioned", cores, n_ops,
            )
        return _run_regular(workload, cfg, scale, "small", "versioned", cores)

    state: dict = {}

    def observe(machine) -> None:
        state["tracer"] = Tracer(machine, capacity=1 << 12)

    policy = RecoveryPolicy(directory, every, max_restores=max_restores)
    add_machine_observer(observe)
    try:
        run, report = policy.execute(run_fn, config)
    finally:
        remove_machine_observer(observe)
    return run, report, [str(e) for e in state["tracer"].last(tail)]


def _rows(run) -> str:
    return json.dumps(run.stats.snapshot(), sort_keys=True)


# ---------------------------------------------------------------------------
# State walk and digest.
# ---------------------------------------------------------------------------


class TestStateDigest:
    def test_identical_machines_have_identical_digests(self):
        a, _ = _seeded_machine()
        b, _ = _seeded_machine()
        assert capture_state(a) == capture_state(b)
        assert state_digest(capture_state(a)) == state_digest(capture_state(b))

    def test_digest_changes_when_state_changes(self):
        a, _ = _seeded_machine()
        b, vaddr = _seeded_machine()
        b.manager.store_version(0, vaddr, 3, 999)
        assert state_digest(capture_state(a)) != state_digest(capture_state(b))

    def test_walk_covers_gc_pin(self):
        m, vaddr = _seeded_machine()
        before = state_digest(capture_state(m))
        m.gc.epoch_pin = frozenset({(vaddr, 0)})
        assert state_digest(capture_state(m)) != before


# ---------------------------------------------------------------------------
# On-disk images: round trip, CRC guard, staleness rules.
# ---------------------------------------------------------------------------


class TestImages:
    def test_round_trip(self, tmp_path):
        m, _ = _seeded_machine()
        ck = Checkpoint.capture(m, marker=3, every=16)
        path = ck.write(image_path(tmp_path, 3))
        assert path.name == "ckpt-000003.img"
        back = Checkpoint.read(path)
        assert back.marker == 3
        assert back.every == 16
        assert back.digest == ck.digest
        assert back.state == ck.state
        assert back.verify(m)

    def test_corrupt_image_raises_and_is_counted(self, tmp_path):
        m, _ = _seeded_machine()
        Checkpoint.capture(m, marker=1, every=8).write(image_path(tmp_path, 1))
        Checkpoint.capture(m, marker=2, every=8).write(image_path(tmp_path, 2))
        target = image_path(tmp_path, 2)
        raw = bytearray(target.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        target.write_bytes(bytes(raw))

        with pytest.raises(CheckpointError):
            Checkpoint.read(target)
        images, corrupt = load_images(tmp_path, every=8)
        assert corrupt == 1
        assert sorted(images) == [1]
        latest = find_latest_valid_image(tmp_path, every=8)
        assert latest is not None and latest.marker == 1

    def test_truncated_and_bad_magic_images(self, tmp_path):
        bad = tmp_path / "ckpt-000001.img"
        bad.write_bytes(b"nope")
        with pytest.raises(CheckpointError):
            Checkpoint.read(bad)
        with pytest.raises(CheckpointError):
            Checkpoint.read(tmp_path / "ckpt-000009.img")  # missing

    def test_mismatched_cadence_images_are_stale_not_corrupt(self, tmp_path):
        m, _ = _seeded_machine()
        Checkpoint.capture(m, marker=1, every=8).write(image_path(tmp_path, 1))
        images, corrupt = load_images(tmp_path, every=64)
        assert images == {} and corrupt == 0
        images, corrupt = load_images(tmp_path, every=8)
        assert sorted(images) == [1] and corrupt == 0


# ---------------------------------------------------------------------------
# Atomic writes survive kill -9 of the writer.
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_sigkilled_writer_leaves_whole_old_or_whole_new_file(self, tmp_path):
        target = tmp_path / "row.json"
        payload_a = b"A" * 8192
        payload_b = b"B" * 8192
        script = (
            "import sys, pathlib\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.recovery.checkpoint import atomic_write_bytes\n"
            "target = pathlib.Path(sys.argv[2])\n"
            "i = 0\n"
            "while True:\n"
            "    atomic_write_bytes(target, (b'A' if i % 2 == 0 else b'B') * 8192)\n"
            "    i += 1\n"
        )
        proc = subprocess.Popen([sys.executable, "-c", script, SRC, str(target)])
        try:
            deadline = time.monotonic() + 30.0
            while not target.exists():
                assert proc.poll() is None, "writer died before first write"
                assert time.monotonic() < deadline, "writer never produced the file"
                time.sleep(0.01)
            time.sleep(0.25)  # let it race through many rewrites
        finally:
            proc.kill()
            proc.wait()
        # Whatever instruction the SIGKILL landed on, the visible file is
        # one complete payload -- never a truncation or interleaving.
        assert target.read_bytes() in (payload_a, payload_b)

    def test_interrupted_write_leaves_no_tmp_straggler(self, tmp_path, monkeypatch):
        target = tmp_path / "x.bin"
        atomic_write_bytes(target, b"old")

        def boom(src, dst):
            raise OSError("injected replace failure")

        # Fail at the publish step: the temp file exists and is full of
        # the new bytes, but the rename never happens.
        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="injected"):
            atomic_write_bytes(target, b"new")
        monkeypatch.undo()
        assert target.read_bytes() == b"old"
        assert not list(tmp_path.glob("*.tmp"))


# ---------------------------------------------------------------------------
# The in-machine Checkpointer.
# ---------------------------------------------------------------------------


class TestCheckpointer:
    def _run_with_checkpointer(self, tmp_path, *, every=4, verify=None):
        m = Machine(MachineConfig(num_cores=1))
        ck = Checkpointer(m, tmp_path, every, verify=verify)
        cell = Versioned(m.heap.alloc_versioned(1))
        m.manager.store_version(0, cell.addr, 0, 5)
        m.submit([Task(1, _store_prog(cell, 12))])
        stats = m.run()
        ck.detach()
        return m, ck, stats

    def test_capture_mode_writes_images_and_counts_markers(self, tmp_path):
        m, ck, stats = self._run_with_checkpointer(tmp_path)
        assert ck.captured, "expected at least one marker at every=4"
        assert stats.checkpoints_reached == len(ck.captured)
        images, corrupt = load_images(tmp_path, every=4)
        assert corrupt == 0
        assert sorted(images) == ck.captured
        # detach() restored the wrapped chokepoint and the back-pointer.
        assert m.checkpointer is None
        assert "_extra" not in vars(m.manager)

    def test_verify_mode_replays_byte_identical(self, tmp_path):
        _, first, _ = self._run_with_checkpointer(tmp_path)
        images, _ = load_images(tmp_path, every=4)
        _, second, _ = self._run_with_checkpointer(tmp_path, verify=images)
        assert second.verified == first.captured
        assert second.captured == []

    def test_verify_mode_is_loud_on_divergence(self, tmp_path):
        self._run_with_checkpointer(tmp_path)
        images, _ = load_images(tmp_path, every=4)
        # A *different* program replayed against those images must fail
        # the digest comparison at the first common marker.
        m = Machine(MachineConfig(num_cores=1))
        Checkpointer(m, tmp_path, 4, verify=images)
        cell = Versioned(m.heap.alloc_versioned(1))
        m.manager.store_version(0, cell.addr, 0, 7)  # different seed value
        m.submit([Task(1, _store_prog(cell, 12))])
        with pytest.raises(CheckpointError, match="diverged"):
            m.run()

    def test_invalid_interval_rejected(self, tmp_path):
        m = Machine(MachineConfig(num_cores=1))
        with pytest.raises(ConfigError):
            Checkpointer(m, tmp_path, 0)

    def test_zero_cost_when_disabled(self):
        # No checkpointer attached: no wrapper on the versioned-op
        # chokepoint, no back-pointer, nothing on the hot path.
        m = Machine(MachineConfig(num_cores=1))
        assert m.checkpointer is None
        assert "_extra" not in vars(m.manager)


# ---------------------------------------------------------------------------
# The GC epoch pin.
# ---------------------------------------------------------------------------


class TestEpochPin:
    def _shadowed_machine(self, versions=2):
        m = Machine(MachineConfig(num_cores=1))
        vaddr = m.heap.alloc_versioned(1)
        for v in range(versions + 1):
            m.manager.store_version(0, vaddr, v, v)
        assert m.gc.shadowed_count == versions
        return m, vaddr

    def test_phase_keeps_pinned_block(self):
        m, vaddr = self._shadowed_machine(versions=1)
        m.gc.epoch_pin = frozenset({(vaddr, 0)})
        m.gc.start_phase()
        assert m.stats.gc_pin_kept == 1
        assert m.stats.gc_reclaimed == 0
        assert sorted(b.version for b in m.manager.lists[vaddr]) == [0, 1]
        # Advancing the pin past the block releases it at the next phase.
        m.gc.epoch_pin = None
        m.gc.start_phase()
        assert m.stats.gc_reclaimed == 1
        assert sorted(b.version for b in m.manager.lists[vaddr]) == [1]

    def test_emergency_reclaims_around_the_pin(self):
        m, vaddr = self._shadowed_machine(versions=2)
        m.gc.epoch_pin = frozenset({(vaddr, 0)})
        freed = m.gc.emergency_collect()
        # Version 1 was reclaimable, so the pin held and version 0 stayed.
        assert freed == 1
        assert m.gc.pin_drops == 0
        assert m.gc.epoch_pin is not None
        assert m.stats.gc_pin_kept == 1
        assert sorted(b.version for b in m.manager.lists[vaddr]) == [0, 2]

    def test_emergency_drops_a_starving_pin(self):
        m, vaddr = self._shadowed_machine(versions=1)
        m.gc.epoch_pin = frozenset({(vaddr, 0)})
        freed = m.gc.emergency_collect()
        # The only reclaimable block was pinned: allocation pressure wins,
        # the pin is dropped (counted), and a second pass frees it.
        assert freed == 1
        assert m.gc.pin_drops == 1
        assert m.gc.epoch_pin is None
        assert sorted(b.version for b in m.manager.lists[vaddr]) == [1]


# ---------------------------------------------------------------------------
# Environment faults: crash-machine / corrupt-block.
# ---------------------------------------------------------------------------


class TestEnvironmentFaults:
    def test_crash_fault_raises_machine_crash_without_stats_bump(self):
        cfg = MachineConfig(
            num_cores=1, faults=(FaultSpec(kind="crash-machine", at=3),)
        )
        m = Machine(cfg)
        cell = Versioned(m.heap.alloc_versioned(1))
        m.manager.store_version(0, cell.addr, 0, 5)
        m.submit([Task(1, _store_prog(cell, 8))])
        with pytest.raises(MachineCrash) as exc:
            m.run()
        assert exc.value.op_index == 3
        assert m.injector.fired, "crash fault should be recorded as fired"
        # Environment faults never perturb the run's own stats: the
        # recovered re-run must end byte-identical to an uninterrupted one.
        assert m.stats.faults_injected == 0

    def test_corrupt_fault_is_skipped_without_a_checkpointer(self):
        cfg = MachineConfig(
            num_cores=1, faults=(FaultSpec(kind="corrupt-block", at=2),)
        )
        m = Machine(cfg)
        cell = Versioned(m.heap.alloc_versioned(1))
        m.manager.store_version(0, cell.addr, 0, 5)
        m.submit([Task(1, _store_prog(cell, 4))])
        m.run()
        assert m.injector.skipped and not m.injector.fired
        assert m.stats.faults_injected == 0


# ---------------------------------------------------------------------------
# Crash auto-recovery: restore, replay, byte-identity.
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_recovered_run_is_byte_identical(self, tmp_path):
        base = dataclasses.replace(TABLE2)
        ref, ref_report, ref_tail = _policy_run(
            "rb_tree", base, tmp_path / "reference"
        )
        assert ref_report.completed and ref_report.crashes == 0
        assert ref_report.captured_images >= 2

        crashed = dataclasses.replace(
            base, faults=(FaultSpec(kind="crash-machine", at=150),)
        )
        out, report, tail = _policy_run("rb_tree", crashed, tmp_path / "crashed")
        assert report.crashes == 1 and report.restores == 1
        assert report.completed
        assert report.restore_markers and report.restore_markers[0] >= 1
        assert report.verified_markers >= 1
        assert _rows(out) == _rows(ref)
        assert tail == ref_tail

    def test_corrupt_image_falls_back_to_previous_marker(self, tmp_path):
        base = dataclasses.replace(TABLE2)
        ref, _, ref_tail = _policy_run("rb_tree", base, tmp_path / "reference")
        crashed = dataclasses.replace(
            base,
            faults=(
                FaultSpec(kind="corrupt-block", at=1500),
                FaultSpec(kind="crash-machine", at=2200),
            ),
        )
        out, report, tail = _policy_run("rb_tree", crashed, tmp_path / "crashed")
        assert report.corrupt_images >= 1
        assert report.completed
        assert _rows(out) == _rows(ref)
        assert tail == ref_tail

    def test_restore_budget_exhaustion_reraises(self, tmp_path):
        crashed = dataclasses.replace(
            TABLE2, faults=(FaultSpec(kind="crash-machine", at=100),)
        )
        with pytest.raises(MachineCrash):
            _policy_run(
                "rb_tree", crashed, tmp_path / "crashed", max_restores=0
            )

    def test_restore_is_announced_through_the_recovery_hook(self, tmp_path):
        events: list[tuple[str, dict]] = []

        def observe(machine) -> None:
            machine.recovery_hook = lambda ev, info: events.append((ev, dict(info)))

        crashed = dataclasses.replace(
            TABLE2, faults=(FaultSpec(kind="crash-machine", at=150),)
        )
        scale = get_scale("quick")

        def run_fn(cfg):
            return _run_irregular(
                "rb_tree", cfg, scale, "small", READ_INTENSIVE,
                "versioned", 2, 300,
            )

        policy = RecoveryPolicy(tmp_path, 32)
        add_machine_observer(observe)
        try:
            _, report = policy.execute(run_fn, crashed)
        finally:
            remove_machine_observer(observe)
        restores = [info for ev, info in events if ev == "restore"]
        assert restores and restores[0]["restore"] == 1
        assert restores[0]["marker"] == report.restore_markers[0]

    def test_cli_end_to_end(self, tmp_path):
        from repro.recovery.cli import main

        rc = main(
            [
                "rb_tree", "--crash-at", "120", "--ops", "300",
                "--checkpoint-every", "32", "--cores", "2",
                "--dir", str(tmp_path),
            ]
        )
        assert rc == 0


# ---------------------------------------------------------------------------
# The replay property, across all six workloads, checked=True.
# ---------------------------------------------------------------------------


class TestReplayProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        workload=st.sampled_from(ALL_WORKLOADS),
        crash_at=st.integers(min_value=1, max_value=400),
    )
    def test_checkpoint_restore_replay_is_byte_identical(
        self, tmp_path_factory, workload, crash_at
    ):
        root = tmp_path_factory.mktemp("replay")
        base = dataclasses.replace(TABLE2, checked=True)
        ref, _, ref_tail = _policy_run(
            workload, base, root / "reference", n_ops=240
        )
        crashed = dataclasses.replace(
            base, faults=(FaultSpec(kind="crash-machine", at=crash_at),)
        )
        out, report, tail = _policy_run(
            workload, crashed, root / "crashed", n_ops=240
        )
        assert report.completed
        assert _rows(out) == _rows(ref)
        assert tail == ref_tail


# ---------------------------------------------------------------------------
# Sweep-tier recovery: resuming after the parent process dies.
# ---------------------------------------------------------------------------


def _subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestSweepResume:
    def test_parent_death_mid_sweep_resumes_to_identical_report(self, tmp_path):
        # A chaos "crash" spec run serially os._exit()s the *parent* —
        # the sweep process itself dies mid-run, like a kill -9.
        cache = tmp_path / "cache"
        marker = tmp_path / "markers"
        script = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.harness.runner import SweepRunner, make_spec\n"
            "cache, marker = sys.argv[2], sys.argv[3]\n"
            "specs = [\n"
            "    make_spec('chaos', key='r0', mode='ok', marker_dir=''),\n"
            "    make_spec('chaos', key='kill', mode='crash', marker_dir=marker),\n"
            "    make_spec('chaos', key='r1', mode='ok', marker_dir=''),\n"
            "]\n"
            "runner = SweepRunner(cache_dir=cache, jobs=1, checkpoint_every=16)\n"
            "runner.run(specs)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, SRC, str(cache), str(marker)],
            env=_subprocess_env(),
            timeout=120,
        )
        from repro.faults.harness import CRASH_EXIT_STATUS

        assert proc.returncode == CRASH_EXIT_STATUS

        specs = [
            make_spec("chaos", key="r0", mode="ok", marker_dir=""),
            make_spec("chaos", key="kill", mode="crash", marker_dir=str(marker)),
            make_spec("chaos", key="r1", mode="ok", marker_dir=""),
        ]
        clean = SweepRunner(
            cache_dir=tmp_path / "clean", jobs=1, checkpoint_every=16
        )
        reference = [r.to_json() for r in clean.run(specs)]

        resumed = SweepRunner(
            cache_dir=cache, jobs=1, resume=True, checkpoint_every=16
        )
        results = resumed.run(specs)
        assert resumed.stats.cache_hits >= 1, "pre-crash rows must survive"
        assert [r.to_json() for r in results] == reference

    def test_sigkilled_simulation_resumes_from_its_images(self, tmp_path):
        # Kill -9 a serial sweep *while a simulation is running*, after
        # it has written at least one checkpoint image; the resumed sweep
        # replays under digest verification and lands on the same row.
        cache = tmp_path / "cache"
        ckpt = tmp_path / "ckpt"
        script = (
            "import sys\n"
            "sys.path.insert(0, sys.argv[1])\n"
            "from repro.config import TABLE2\n"
            "from repro.harness.presets import get_scale\n"
            "from repro.harness.runner import SweepRunner\n"
            "from repro.harness.sweeps import irregular_spec\n"
            "spec = irregular_spec('rb_tree', TABLE2, get_scale('quick'),\n"
            "                      'small', '4R-1W', 'versioned', 2, 6000)\n"
            "runner = SweepRunner(cache_dir=sys.argv[2], jobs=1,\n"
            "                     checkpoint_every=32, checkpoint_dir=sys.argv[3])\n"
            "runner.run([spec])\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, SRC, str(cache), str(ckpt)],
            env=_subprocess_env(),
        )
        try:
            deadline = time.monotonic() + 60.0
            while not list(ckpt.glob("*/ckpt-*.img")):
                if proc.poll() is not None:
                    pytest.fail("sweep finished before any image appeared")
                assert time.monotonic() < deadline, "no checkpoint image in time"
                time.sleep(0.02)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        assert proc.returncode == -signal.SIGKILL
        assert list(ckpt.glob("*/ckpt-*.img")), "images must survive the kill"

        spec = irregular_spec(
            "rb_tree", TABLE2, get_scale("quick"), "small", "4R-1W",
            "versioned", 2, 6000,
        )
        clean = SweepRunner(
            cache_dir=tmp_path / "clean-cache", jobs=1,
            checkpoint_every=32, checkpoint_dir=tmp_path / "clean-ckpt",
        )
        reference = [r.to_json() for r in clean.run([spec])]

        resumed = SweepRunner(
            cache_dir=cache, jobs=1, resume=True,
            checkpoint_every=32, checkpoint_dir=ckpt,
        )
        results = resumed.run([spec])
        assert [r.to_json() for r in results] == reference
        # A verified completion cleans up its per-spec image directory.
        assert not list(ckpt.glob("*/ckpt-*.img"))

    def test_cache_namespace_depends_on_checkpoint_cadence(self, tmp_path):
        plain = SweepRunner(cache_dir=tmp_path / "a", jobs=1)
        ckpt = SweepRunner(cache_dir=tmp_path / "b", jobs=1, checkpoint_every=16)
        assert plain.cache.version == code_version()
        assert ckpt.cache.version == f"{code_version()}-ckpt16"
        assert plain.cache.version != ckpt.cache.version

    def test_env_interval_is_validated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CKPT_EVERY", "banana")
        with pytest.raises(ConfigError):
            SweepRunner(cache_dir=tmp_path / "cache", jobs=1)
        monkeypatch.setenv("REPRO_CKPT_EVERY", "0")
        with pytest.raises(ConfigError):
            SweepRunner(cache_dir=tmp_path / "cache", jobs=1)


# ---------------------------------------------------------------------------
# Satellite regression: aborted tasks leave no dangling critpath edges.
# ---------------------------------------------------------------------------


class TestAbortedProduceEdges:
    def test_aborted_store_leaves_no_dangling_produce_edge(self):
        # The first attempt stores v1 into cell_a and is aborted; the
        # retry stores v1 into cell_b instead.  Without the drop hook the
        # recorder would keep the rolled-back (cell_a, 1) produce edge
        # and the critical-path DP would route paths through a store
        # that never happened.
        cfg = MachineConfig(
            num_cores=2,
            checked=True,
            faults=(FaultSpec(kind="abort-task", at=4, value=10, arg=1),),
        )
        m = Machine(cfg)
        rec = SpanRecorder(m)
        cell_a = Versioned(m.heap.alloc_versioned(1))
        cell_b = Versioned(m.heap.alloc_versioned(1))
        m.manager.store_version(0, cell_a.addr, 0, 5)
        m.manager.store_version(0, cell_b.addr, 0, 6)
        attempts = {"n": 0}

        def writer(tid):
            attempts["n"] += 1
            target = cell_a if attempts["n"] == 1 else cell_b
            v = yield cell_a.load_ver(0)
            yield target.store_ver(1, v * 2)
            yield ("compute", 2000)
            return v

        tasks = [Task(1, writer)]
        m.submit(tasks)
        stats = m.run()
        rec.detach()

        assert stats.tasks_retried == 1, "the abort fault must have fired"
        assert attempts["n"] == 2
        assert (cell_a.addr, 1) not in rec.produces, (
            "rolled-back produce edge must be forgotten"
        )
        assert (cell_b.addr, 1) in rec.produces
        # Every surviving produce edge names a version still in the store,
        # and the critical-path DP runs cleanly over the pruned graph.
        for vaddr, version in rec.produces:
            assert any(
                b.version == version for b in m.manager.lists[vaddr]
            ), f"dangling edge ({vaddr}, {version})"
        dependency_edges(rec)
        path = critical_path(rec)
        assert path["length_cycles"] >= 0
