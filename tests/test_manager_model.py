"""Model-based (stateful hypothesis) testing of the O-structure manager.

Drives the real manager and a trivially correct pure-Python model with
the same random operation sequence, and checks after every step that
observable behaviour — values, blocking, lock state, version sets —
matches.  This covers interleavings the example-based tests do not:
out-of-order creation mixed with locks, renames landing between existing
versions, frees followed by address reuse, etc.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.errors import NotLockedError, ProtectionFault, VersionExistsError
from repro.ostruct.manager import StallSignal
from tests.test_manager import Rig

ADDRS = 4
VERSIONS = st.integers(min_value=0, max_value=40)
TASKS = st.integers(min_value=0, max_value=9)
ADDR_IDX = st.integers(min_value=0, max_value=ADDRS - 1)


class _Model:
    """Ground-truth semantics of one O-structure address."""

    def __init__(self) -> None:
        self.versions: dict[int, object] = {}
        self.locks: dict[int, int] = {}

    def latest(self, cap: int) -> int | None:
        eligible = [v for v in self.versions if v <= cap]
        return max(eligible) if eligible else None


class ManagerModelMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.rig = Rig(num_cores=2)
        self.base = self.rig.addr
        self.models = [_Model() for _ in range(ADDRS)]

    def _addr(self, idx: int) -> int:
        return self.base + 4 * idx

    # -- rules -----------------------------------------------------------------

    @rule(idx=ADDR_IDX, version=VERSIONS, value=st.integers(0, 1000))
    def store(self, idx, version, value):
        model = self.models[idx]
        if version in model.versions:
            with pytest.raises(VersionExistsError):
                self.rig.manager.store_version(0, self._addr(idx), version, value)
        else:
            self.rig.manager.store_version(0, self._addr(idx), version, value)
            model.versions[version] = value

    @rule(idx=ADDR_IDX, version=VERSIONS, core=st.integers(0, 1))
    def load_exact(self, idx, version, core):
        model = self.models[idx]
        if version in model.versions and version not in model.locks:
            _, value = self.rig.manager.load_version(core, self._addr(idx), version)
            assert value == model.versions[version]
        else:
            with pytest.raises(StallSignal):
                self.rig.manager.load_version(core, self._addr(idx), version)

    @rule(idx=ADDR_IDX, cap=VERSIONS, core=st.integers(0, 1))
    def load_latest(self, idx, cap, core):
        model = self.models[idx]
        expected = model.latest(cap)
        if expected is not None and expected not in model.locks:
            _, (version, value) = self.rig.manager.load_latest(
                core, self._addr(idx), cap
            )
            assert version == expected
            assert value == model.versions[expected]
        else:
            with pytest.raises(StallSignal):
                self.rig.manager.load_latest(core, self._addr(idx), cap)

    @rule(idx=ADDR_IDX, version=VERSIONS, task=TASKS)
    def lock_exact(self, idx, version, task):
        model = self.models[idx]
        if version in model.versions and version not in model.locks:
            value = self.rig.manager.lock_load_version(
                0, self._addr(idx), version, task_id=task
            )[1]
            assert value == model.versions[version]
            model.locks[version] = task
        else:
            with pytest.raises(StallSignal):
                self.rig.manager.lock_load_version(
                    0, self._addr(idx), version, task_id=task
                )

    @rule(idx=ADDR_IDX, version=VERSIONS, task=TASKS, rename=st.one_of(st.none(), VERSIONS))
    def unlock(self, idx, version, task, rename):
        model = self.models[idx]
        holder = model.locks.get(version)
        if holder != task or version not in model.versions:
            with pytest.raises(NotLockedError):
                self.rig.manager.unlock_version(
                    0, self._addr(idx), version, task_id=task, new_version=rename
                )
            return
        if rename is not None and rename in model.versions:
            # Rename collision: the manager faults after unlocking.
            with pytest.raises(VersionExistsError):
                self.rig.manager.unlock_version(
                    0, self._addr(idx), version, task_id=task, new_version=rename
                )
            del model.locks[version]  # the unlock part happened
            return
        self.rig.manager.unlock_version(
            0, self._addr(idx), version, task_id=task, new_version=rename
        )
        del model.locks[version]
        if rename is not None:
            model.versions[rename] = model.versions[version]

    @precondition(lambda self: any(
        m.versions and not m.locks for m in self.models
    ))
    @rule(data=st.data())
    def free_and_reuse(self, data):
        candidates = [
            i for i, m in enumerate(self.models) if m.versions and not m.locks
        ]
        idx = data.draw(st.sampled_from(candidates))
        freed = self.rig.manager.free_ostructure(self._addr(idx))
        assert freed == len(self.models[idx].versions)
        self.models[idx] = _Model()

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def version_sets_match(self):
        if not hasattr(self, "rig"):
            return
        for i, model in enumerate(self.models):
            live = sorted(self.rig.manager.versions_of(self._addr(i)), reverse=True)
            assert live == sorted(model.versions, reverse=True)

    @invariant()
    def lists_structurally_sound(self):
        if not hasattr(self, "rig"):
            return
        for i in range(ADDRS):
            lst = self.rig.manager.lists.get(self._addr(i))
            if lst is not None:
                lst.check_invariants()

    @invariant()
    def lock_state_matches(self):
        if not hasattr(self, "rig"):
            return
        for i, model in enumerate(self.models):
            lst = self.rig.manager.lists.get(self._addr(i))
            if lst is None:
                continue
            for block in lst:
                expected = model.locks.get(block.version)
                assert block.locked_by == expected


ManagerModelMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestManagerModel = ManagerModelMachine.TestCase
