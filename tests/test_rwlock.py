"""Focused tests for the simulated read-write lock (Figure 8 baseline)."""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig, SimulationError, Task
from repro.ostruct import isa


def make(n_cores=4):
    m = Machine(MachineConfig(num_cores=n_cores))
    return m, m.new_rwlock("L")


class TestGrantPolicy:
    def test_reader_batch_granted_together(self):
        # writer holds; three readers queue; on release all enter together.
        m, lock = make(4)
        enters = {}

        def writer(tid):
            yield isa.rw_acquire(lock, "w")
            yield isa.compute(4000)
            yield isa.rw_release(lock, "w")

        def reader(tid):
            yield isa.compute(100)  # queue behind the writer
            yield isa.rw_acquire(lock, "r")
            enters[tid] = m.sim.now
            yield isa.compute(1000)
            yield isa.rw_release(lock, "r")

        m.submit([Task(0, writer), Task(1, reader), Task(2, reader), Task(3, reader)])
        m.run()
        times = sorted(enters.values())
        # All three readers entered within a handful of cycles of each other.
        assert times[-1] - times[0] < 100

    def test_queued_writer_bars_new_readers(self):
        # Fairness: a reader arriving after a queued writer waits for it.
        m, lock = make(3)
        order = []

        def holder(tid):  # reader holding the lock
            yield isa.rw_acquire(lock, "r")
            yield isa.compute(4000)
            yield isa.rw_release(lock, "r")

        def writer(tid):
            yield isa.compute(200)
            yield isa.rw_acquire(lock, "w")
            order.append("writer")
            yield isa.rw_release(lock, "w")

        def late_reader(tid):
            yield isa.compute(1000)  # arrives after the writer queued
            yield isa.rw_acquire(lock, "r")
            order.append("late_reader")
            yield isa.rw_release(lock, "r")

        m.submit([Task(0, holder), Task(1, writer), Task(2, late_reader)])
        m.run()
        assert order == ["writer", "late_reader"]

    def test_fifo_order_among_writers(self):
        m, lock = make(4)
        order = []

        def holder(tid):
            yield isa.rw_acquire(lock, "w")
            yield isa.compute(4000)
            yield isa.rw_release(lock, "w")

        def writer(tid):
            yield isa.compute(100 * tid)  # stagger queueing: 1, 2, 3
            yield isa.rw_acquire(lock, "w")
            order.append(tid)
            yield isa.rw_release(lock, "w")

        m.submit([Task(0, holder)] + [Task(t, writer) for t in (1, 2, 3)])
        m.run()
        assert order == [1, 2, 3]


class TestStateAndErrors:
    def test_state_inspection(self):
        m, lock = make(2)
        seen = {}

        def reader(tid):
            yield isa.rw_acquire(lock, "r")
            seen["readers"] = lock.reader_count
            seen["writer"] = lock.writer_core
            yield isa.rw_release(lock, "r")

        m.submit([Task(0, reader)])
        m.run()
        assert seen == {"readers": 1, "writer": None}
        assert lock.reader_count == 0

    def test_bad_mode_rejected(self):
        m, lock = make(1)

        def prog(tid):
            yield isa.rw_acquire(lock, "x")

        m.submit([Task(0, prog)])
        with pytest.raises(SimulationError):
            m.run()

    def test_double_release_rejected(self):
        m, lock = make(1)

        def prog(tid):
            yield isa.rw_acquire(lock, "w")
            yield isa.rw_release(lock, "w")
            yield isa.rw_release(lock, "w")

        m.submit([Task(0, prog)])
        with pytest.raises(SimulationError):
            m.run()

    def test_lock_word_generates_coherence_traffic(self):
        m, lock = make(2)

        def bump(tid):
            yield isa.rw_acquire(lock, "w")
            yield isa.rw_release(lock, "w")

        m.submit([Task(0, bump), Task(1, bump)])
        stats = m.run()
        # Two cores touching the same lock line with exclusive intent.
        assert stats.invalidations >= 1

    def test_wait_cycles_accumulate(self):
        m, lock = make(2)

        def holder(tid):
            yield isa.rw_acquire(lock, "w")
            yield isa.compute(10_000)
            yield isa.rw_release(lock, "w")

        def waiter(tid):
            yield isa.compute(100)
            yield isa.rw_acquire(lock, "w")
            yield isa.rw_release(lock, "w")

        m.submit([Task(0, holder), Task(1, waiter)])
        stats = m.run()
        assert stats.rwlock_wait_cycles > 4000

    def test_two_locks_independent(self):
        m = Machine(MachineConfig(num_cores=2))
        la, lb = m.new_rwlock("a"), m.new_rwlock("b")
        overlap = {}

        def use_a(tid):
            yield isa.rw_acquire(la, "w")
            overlap["a_in"] = m.sim.now
            yield isa.compute(2000)
            overlap["a_out"] = m.sim.now
            yield isa.rw_release(la, "w")

        def use_b(tid):
            yield isa.rw_acquire(lb, "w")
            overlap["b_in"] = m.sim.now
            yield isa.compute(2000)
            overlap["b_out"] = m.sim.now
            yield isa.rw_release(lb, "w")

        m.submit([Task(0, use_a), Task(1, use_b)])
        m.run()
        # Critical sections on distinct locks overlap in time.
        assert overlap["a_in"] < overlap["b_out"]
        assert overlap["b_in"] < overlap["a_out"]
