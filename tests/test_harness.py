"""Tests for the experiment harness, report rendering, presets and CLI."""

from __future__ import annotations

import pytest

from repro.harness import PAPER, QUICK, Scale, format_table, table2_platform
from repro.harness.experiments import (
    ALL_BENCHMARKS,
    IRREGULAR,
    REGULAR,
    _irregular_inputs,
    _run_irregular,
    _run_regular,
    fig6_speedup,
    gc_overhead,
)
from repro.harness.presets import get_scale
from repro.harness.report import format_series
from repro.workloads.opgen import READ_INTENSIVE

#: A deliberately tiny scale so harness tests stay fast.
TINY = Scale(
    name="tiny",
    small_elements=20,
    large_elements=40,
    n_ops=24,
    sens_ops=16,
    matmul_small=4,
    matmul_large=6,
    lev_small=6,
    lev_large=10,
    fig8_elements=40,
    fig8_ops=24,
    core_counts=(2, 4),
    max_cores=4,
    l1_sizes_kib=(8, 32),
    latencies=(2, 10),
    gc_ops=40,
)


class TestPresets:
    def test_lookup(self):
        assert get_scale("quick") is QUICK
        assert get_scale("paper") is PAPER
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_paper_matches_published_parameters(self):
        assert PAPER.small_elements == 1000
        assert PAPER.large_elements == 10000
        assert PAPER.matmul_large == 100
        assert PAPER.lev_large == 1000
        assert PAPER.fig8_elements == 10000
        assert PAPER.gc_list_elements == 10
        assert PAPER.gc_ops == 1000
        assert PAPER.core_counts == (4, 8, 16, 32)
        assert PAPER.l1_sizes_kib == (8, 16, 32, 64, 128)
        assert PAPER.latencies == (2, 4, 6, 8, 10)

    def test_quick_preserves_ratios(self):
        # Small:large stays meaningful at quick scale.
        assert QUICK.large_elements >= 3 * QUICK.small_elements


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(("name", "x"), [("a", 1.5), ("bb", 10.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.50" in lines[2]
        assert "10.25" in lines[3]

    def test_format_table_title(self):
        text = format_table(("c",), [(1,)], title="T")
        assert text.startswith("T\n=")

    def test_format_series(self):
        text = format_series("S", "cores", [4, 8], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert "cores" in text and "a" in text and "b" in text
        assert "2.00" in text and "4.00" in text

    def test_custom_floatfmt(self):
        text = format_table(("x",), [(0.123456,)], floatfmt="{:+.3f}")
        assert "+0.123" in text


class TestExperimentPlumbing:
    def test_benchmark_registry_complete(self):
        assert set(ALL_BENCHMARKS) == set(IRREGULAR) | set(REGULAR)
        assert len(ALL_BENCHMARKS) == 6

    def test_irregular_inputs_deterministic(self):
        a = _irregular_inputs(TINY, "linked_list", "small", READ_INTENSIVE)
        b = _irregular_inputs(TINY, "linked_list", "small", READ_INTENSIVE)
        assert a == b

    def test_inputs_differ_across_benchmarks(self):
        a = _irregular_inputs(TINY, "linked_list", "small", READ_INTENSIVE)
        b = _irregular_inputs(TINY, "binary_tree", "small", READ_INTENSIVE)
        assert a != b

    @pytest.mark.parametrize("bench", IRREGULAR)
    def test_run_irregular_variants(self, bench):
        from repro.config import TABLE2

        u = _run_irregular(bench, TABLE2, TINY, "small", READ_INTENSIVE, "unversioned")
        v = _run_irregular(bench, TABLE2, TINY, "small", READ_INTENSIVE, "versioned", 2)
        assert u.cycles > 0 and v.cycles > 0

    @pytest.mark.parametrize("bench", REGULAR)
    def test_run_regular_variants(self, bench):
        from repro.config import TABLE2

        u = _run_regular(bench, TABLE2, TINY, "small", "unversioned")
        v = _run_regular(bench, TABLE2, TINY, "small", "versioned", 2)
        assert u.cycles > 0 and v.cycles > 0


class TestExperiments:
    def test_table2_checks_pass(self):
        result = table2_platform()
        assert all(result["checks"].values())
        assert "Table II" in result["text"]

    def test_fig6_rows_cover_all_benchmarks(self):
        result = fig6_speedup(TINY)
        benches = {row[0] for row in result["rows"]}
        assert benches == set(ALL_BENCHMARKS)
        # 4 rows per irregular bench, 2 per regular.
        assert len(result["rows"]) == 4 * len(IRREGULAR) + 2 * len(REGULAR)
        assert all(row[3] > 0 for row in result["rows"])

    def test_gc_overhead_structure(self):
        result = gc_overhead(TINY)
        assert len(result["rows"]) == 3
        assert result["tight_phases"] >= 0
        ample = next(r for r in result["rows"] if r[0].startswith("ample"))
        assert ample[2] == 0  # no GC phases in the ample configuration


class TestCLI:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "table2" in out

    def test_table2(self, capsys):
        from repro.__main__ import main

        assert main(["table2"]) == 0
        assert "Table II" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])


class TestBars:
    def test_format_bars_scales_and_marks_reference(self):
        from repro.harness.report import format_bars

        text = format_bars("T", [("a", 0.5), ("b", 2.0)], width=20)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.50" in lines[2] and "2.00" in lines[3]
        # The 2.0 bar is full width; the 0.5 bar is a quarter.
        assert lines[3].count("#") == 20
        assert lines[2].count("#") == 5
        assert "|" in lines[2]  # break-even marker visible below reference

    def test_format_bars_empty(self):
        from repro.harness.report import format_bars

        assert format_bars("T", []) == "T"

    def test_format_bars_no_reference(self):
        from repro.harness.report import format_bars

        text = format_bars("T", [("a", 3.0)], reference=None, width=10)
        assert "|" not in text


class TestBarsEdgeCases:
    """Regression tests: non-positive values must not break the layout."""

    def test_zero_value_renders_empty_bar(self):
        from repro.harness.report import format_bars

        text = format_bars("T", [("zero", 0.0), ("one", 1.0)], width=10)
        zero_line = text.splitlines()[2]
        assert zero_line.count("#") == 0
        assert "0.00" in zero_line
        assert "!" not in zero_line  # zero is fine, only negatives flag

    def test_negative_value_clamped_and_flagged(self):
        from repro.harness.report import format_bars

        text = format_bars("T", [("bad", -0.5), ("good", 2.0)], width=10)
        lines = text.splitlines()
        bad, good = lines[2], lines[3]
        assert bad.count("#") == 0  # clamped, not wider than width
        assert bad.rstrip().endswith("!")
        assert "-0.50" in bad
        assert not good.rstrip().endswith("!")
        # Every bar field is exactly ``width`` columns: the value column
        # starts at the same offset on each line.
        assert bad.index("-0.50") == good.index("2.00")

    def test_all_zero_rows(self):
        from repro.harness.report import format_bars

        text = format_bars("T", [("a", 0.0), ("b", 0.0)], width=8)
        for line in text.splitlines()[2:]:
            assert line.count("#") == 0
            assert "0.00" in line

    def test_all_negative_rows(self):
        from repro.harness.report import format_bars

        text = format_bars("T", [("a", -1.0), ("b", -2.0)], width=8)
        for line in text.splitlines()[2:]:
            assert line.count("#") == 0
            assert line.rstrip().endswith("!")


class TestTableValidation:
    """Regression tests: ragged rows raise ConfigError, not IndexError."""

    def test_ragged_row_raises_config_error_with_index(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="row 1"):
            format_table(("a", "b"), [(1, 2), (1,), (3, 4)])

    def test_extra_cells_also_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="3 cell"):
            format_table(("a", "b"), [(1, 2, 3)])

    def test_well_formed_rows_unaffected(self):
        text = format_table(("a", "b"), [(1, 2), (3, 4)])
        assert "1" in text and "4" in text


class TestFormatMetrics:
    def _snapshot(self):
        from repro.obs import MetricsRegistry

        r = MetricsRegistry()
        r.counter("gc_reclaims").inc(3)
        r.gauge("free_depth").set(42)
        for v in (1, 1, 2, 9999):
            r.walk_length.observe(v)
        return r.snapshot()

    def test_renders_counters_gauges_and_histograms(self):
        from repro.harness.report import format_metrics

        text = format_metrics(self._snapshot(), title="t")
        assert "gc_reclaims" in text
        assert "free_depth" in text
        assert "walk_length" in text
        assert "n=4" in text
        assert "> 128" in text  # overflow bucket labelled

    def test_empty_snapshot(self):
        from repro.harness.report import format_metrics

        assert "(no samples)" in format_metrics({}, title="t")
        # Histograms with zero observations are skipped, not rendered.
        from repro.obs import MetricsRegistry

        text = format_metrics(MetricsRegistry().snapshot(), title="t")
        assert "walk_length" not in text


class TestObsSummaryExperiment:
    def test_obs_summary_rows(self):
        from repro.harness.experiments import obs_summary
        from repro.harness.runner import SweepRunner

        runner = SweepRunner(jobs=1, use_cache=False)
        out = obs_summary(TINY, runner=runner)
        assert len(out["rows"]) == len(IRREGULAR) * 2
        benches = {row[0] for row in out["rows"]}
        assert benches == set(IRREGULAR)
        # Metrics snapshots made it through the RunResult rows: at least
        # one bench recorded full lookups.
        assert any(row[2] > 0 for row in out["rows"])
        assert "walk mean" in out["text"]


class TestRunResultMetricsRoundTrip:
    def test_metrics_survive_json(self):
        from repro.harness.runner import RunResult, StatsView

        snap = {"counters": {"c": 1}, "gauges": {}, "histograms": {}}
        r = RunResult(cycles=10, stats=StatsView({"cycles": 10}), metrics=snap)
        again = RunResult.from_json(r.to_json())
        assert again.metrics == snap
        assert again.cycles == 10

    def test_metrics_default_none(self):
        from repro.harness.runner import RunResult, StatsView

        r = RunResult(cycles=10, stats=StatsView({"cycles": 10}))
        assert RunResult.from_json(r.to_json()).metrics is None
