"""Tests for the analysis helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    crossover_point,
    geomean,
    relative_speedup,
    scaling_efficiency,
    speedup_table,
    summarize_runs,
)
from repro.errors import ConfigError
from repro.sim.stats import SimStats
from repro.workloads.base import WorkloadRun


def make_run(variant: str, cycles: int, **stat_overrides) -> WorkloadRun:
    stats = SimStats()
    for k, v in stat_overrides.items():
        setattr(stats, k, v)
    return WorkloadRun(name="t", variant=variant, cycles=cycles, stats=stats)


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([3]) == pytest.approx(3.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ConfigError):
            geomean([])
        with pytest.raises(ConfigError):
            geomean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 100), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_property_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(0.01, 100), min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_property_reciprocal_symmetry(self, values):
        g = geomean(values)
        g_inv = geomean([1 / v for v in values])
        assert g * g_inv == pytest.approx(1.0, rel=1e-6)


class TestSpeedup:
    def test_relative(self):
        assert relative_speedup(100, 50) == 2.0
        assert relative_speedup(50, 100) == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            relative_speedup(0, 10)

    def test_table(self):
        base = make_run("unversioned", 1000)
        runs = [make_run("v1", 2000), make_run("v32", 250)]
        table = speedup_table(base, runs)
        assert table == [("v1", 2000, 0.5), ("v32", 250, 4.0)]

    def test_efficiency(self):
        eff = scaling_efficiency([4, 8], [3.0, 4.0])
        assert eff == [0.75, 0.5]
        with pytest.raises(ConfigError):
            scaling_efficiency([4], [1.0, 2.0])


class TestCrossover:
    def test_finds_first_crossing(self):
        assert crossover_point([4, 8, 16, 32], [0.7, 0.9, 1.1, 1.3]) == 16

    def test_none_when_never_crossing(self):
        assert crossover_point([4, 8], [0.7, 0.9]) is None

    def test_crosses_at_start(self):
        assert crossover_point([4, 8], [1.5, 2.0]) == 4

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            crossover_point([1, 2], [1.0])


class TestSummarize:
    def test_aggregates(self):
        runs = [
            make_run("a", 100, versioned_ops=10, versioned_stalls=2,
                     direct_hits=6, full_lookups=2, gc_phases=1,
                     versions_created=5, gc_reclaimed=3),
            make_run("b", 200, versioned_ops=10, versioned_stalls=0,
                     direct_hits=2, full_lookups=0, gc_phases=0,
                     versions_created=5, gc_reclaimed=0),
        ]
        s = summarize_runs(runs)
        assert s["runs"] == 2
        assert s["total_cycles"] == 300
        assert s["stall_rate"] == pytest.approx(0.1)
        assert s["direct_hit_rate"] == pytest.approx(0.8)
        assert s["versions_created"] == 10
        assert s["versions_reclaimed"] == 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            summarize_runs([])

    def test_zero_ops_safe(self):
        s = summarize_runs([make_run("a", 1)])
        assert s["stall_rate"] == 0.0
        assert s["direct_hit_rate"] == 0.0
