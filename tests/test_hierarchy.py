"""Tests for the memory hierarchy and coherence directory."""

from __future__ import annotations

from repro.config import MachineConfig
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.stats import SimStats


def make_hier(cores=2, **kw):
    cfg = MachineConfig(num_cores=cores, **kw)
    stats = SimStats()
    return MemoryHierarchy(cfg, stats), stats, cfg


def test_cold_miss_goes_to_dram():
    h, stats, cfg = make_hier()
    lat = h.access(0, 0x1000)
    assert lat == cfg.l1.hit_latency + cfg.l2_hit_latency + cfg.dram_latency_cycles
    assert stats.l1_misses == 1
    assert stats.l2_misses == 1
    assert stats.dram_accesses == 1


def test_l1_hit_after_fill():
    h, stats, cfg = make_hier()
    h.access(0, 0x1000)
    lat = h.access(0, 0x1000)
    assert lat == cfg.l1.hit_latency
    assert stats.l1_hits == 1


def test_l2_hit_when_other_core_fetched():
    h, stats, cfg = make_hier()
    h.access(0, 0x1000)
    lat = h.access(1, 0x1000)  # L1 miss for core 1, L2 hit
    assert lat == cfg.l1.hit_latency + cfg.l2_hit_latency
    assert stats.l2_hits == 1


def test_same_line_shares_residency():
    h, stats, _ = make_hier()
    h.access(0, 0x1000)
    h.access(0, 0x1020)  # same 64B line
    assert stats.l1_hits == 1


def test_write_invalidates_other_sharers():
    h, stats, _ = make_hier()
    h.access(0, 0x1000)
    h.access(1, 0x1000)
    assert h.directory.sharers_of(0x1000 >> 6) == {0, 1}
    h.access(0, 0x1000, write=True)
    assert stats.invalidations == 1
    assert h.directory.sharers_of(0x1000 >> 6) == {0}
    assert not h.l1s[1].contains(0x1000 >> 6)


def test_write_with_remote_sharer_pays_remote_penalty():
    h, stats, cfg = make_hier()
    h.access(0, 0x1000)
    h.access(1, 0x1000)
    lat_with_sharer = h.access(0, 0x1000, write=True)
    assert lat_with_sharer == cfg.l1.hit_latency + cfg.remote_penalty
    # Second write: exclusive already, no penalty.
    lat_exclusive = h.access(0, 0x1000, write=True)
    assert lat_exclusive == cfg.l1.hit_latency


def test_install_false_does_not_fill_caches():
    h, stats, _ = make_hier()
    h.access(0, 0x2000, install=False)
    assert not h.l1s[0].contains(0x2000 >> 6)
    assert not h.l2.contains(0x2000 >> 6)
    # Second access misses all over again.
    h.access(0, 0x2000, install=False)
    assert stats.l1_misses == 2
    assert stats.dram_accesses == 2


def test_directory_tracks_l1_eviction():
    h, _, cfg = make_hier()
    block = 0x1000 >> 6
    h.access(0, 0x1000)
    assert 0 in h.directory.sharers_of(block)
    h.l1s[0].invalidate(block)
    assert 0 not in h.directory.sharers_of(block)


def test_extra_evict_hook_invoked():
    h, _, _ = make_hier()
    dropped = []
    h.add_l1_evict_hook(0, dropped.append)
    h.access(0, 0x1000)
    h.l1s[0].invalidate(0x1000 >> 6)
    assert dropped == [0x1000 >> 6]


def test_invalidate_everywhere():
    h, _, _ = make_hier()
    h.access(0, 0x3000)
    h.access(1, 0x3000)
    h.invalidate_everywhere(0x3000)
    block = 0x3000 >> 6
    assert not h.l1s[0].contains(block)
    assert not h.l1s[1].contains(block)
    assert not h.l2.contains(block)


def test_flush_all():
    h, _, _ = make_hier()
    for addr in range(0, 0x2000, 64):
        h.access(0, addr)
    h.flush_all()
    assert h.l1s[0].resident_blocks == 0
    assert h.l2.resident_blocks == 0


def test_read_after_remote_write_misses():
    h, stats, _ = make_hier()
    h.access(1, 0x1000)
    h.access(0, 0x1000, write=True)  # invalidates core 1
    before = stats.l1_misses
    h.access(1, 0x1000)
    assert stats.l1_misses == before + 1
