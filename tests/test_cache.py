"""Tests for the set-associative cache model."""

from __future__ import annotations

from repro.config import CacheConfig
from repro.sim.cache import Cache


def tiny_cache(ways=2, sets=4) -> Cache:
    cfg = CacheConfig(size_bytes=ways * sets * 64, ways=ways, hit_latency=1)
    return Cache(cfg, name="tiny")


def test_miss_then_hit():
    c = tiny_cache()
    assert not c.lookup(5)
    c.insert(5)
    assert c.lookup(5)


def test_block_of_uses_64_byte_lines():
    c = tiny_cache()
    assert c.block_of(0) == 0
    assert c.block_of(63) == 0
    assert c.block_of(64) == 1
    assert c.block_of(0x1000) == 64


def test_lru_eviction_within_set():
    c = tiny_cache(ways=2, sets=1)
    c.insert(0)
    c.insert(1)
    c.lookup(0)  # 0 now most recent
    victim = c.insert(2)
    assert victim == 1
    assert c.contains(0) and c.contains(2) and not c.contains(1)


def test_conflict_only_within_same_set():
    c = tiny_cache(ways=1, sets=4)
    c.insert(0)  # set 0
    c.insert(1)  # set 1
    assert c.contains(0) and c.contains(1)
    victim = c.insert(4)  # set 0 again (4 % 4 == 0)
    assert victim == 0
    assert c.contains(1)


def test_reinserting_resident_block_evicts_nothing():
    c = tiny_cache(ways=2, sets=1)
    c.insert(0)
    c.insert(1)
    assert c.insert(0) is None
    assert c.resident_blocks == 2


def test_contains_does_not_update_recency():
    c = tiny_cache(ways=2, sets=1)
    c.insert(0)
    c.insert(1)
    c.contains(0)  # must NOT refresh block 0
    victim = c.insert(2)
    assert victim == 0


def test_invalidate():
    c = tiny_cache()
    c.insert(7)
    assert c.invalidate(7) is True
    assert not c.contains(7)
    assert c.invalidate(7) is False


def test_dirty_tracking():
    c = tiny_cache()
    c.insert(3, dirty=True)
    assert c.is_dirty(3)
    c.invalidate(3)
    assert not c.is_dirty(3)
    c.insert(4)
    assert not c.is_dirty(4)
    c.mark_dirty(4)
    assert c.is_dirty(4)


def test_evict_hook_fires_on_eviction_and_invalidation():
    c = tiny_cache(ways=1, sets=1)
    dropped = []
    c.evict_hook = dropped.append
    c.insert(0)
    c.insert(1)  # evicts 0
    c.invalidate(1)
    assert dropped == [0, 1]


def test_flush_empties_and_fires_hooks():
    c = tiny_cache()
    dropped = []
    c.evict_hook = dropped.append
    for b in range(6):
        c.insert(b)
    c.flush()
    assert c.resident_blocks == 0
    assert sorted(dropped) == list(range(6))


def test_capacity_respected():
    c = tiny_cache(ways=2, sets=4)
    for b in range(100):
        c.insert(b)
    assert c.resident_blocks <= 8
