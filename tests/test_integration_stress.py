"""Cross-module stress and end-to-end integration tests.

These runs exercise everything at once — several O-structure-based data
structures on one machine, active garbage collection under a tight free
list, compressed-line churn, coherence traffic across 16+ cores — and
validate final results against pure-Python oracles.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import Machine, MachineConfig, StaticScheduler, Task
from repro.runtime.task import TASK_BEGIN_CYCLES
from repro.workloads import linked_list as ll_mod
from repro.workloads.base import FIRST_TASK_ID, plan_entries
from repro.workloads.linked_list import VersionedLinkedList
from repro.workloads.opgen import (
    LOOKUP,
    WRITE_INTENSIVE,
    generate_ops,
    initial_keys,
    reference_results,
)


def test_two_structures_share_one_machine():
    """Two independent lists, interleaved task streams, one machine."""
    cfg = MachineConfig(num_cores=8)
    machine = Machine(cfg)

    ops_a = generate_ops(40, WRITE_INTENSIVE, 100, seed=31)
    ops_b = generate_ops(40, WRITE_INTENSIVE, 100, seed=32)
    init_a = initial_keys(20, 100, seed=31)
    init_b = initial_keys(20, 100, seed=32)
    exp_a = reference_results(init_a, ops_a)
    exp_b = reference_results(init_b, ops_b)

    # Structure A's tasks use odd slots, B's even slots, so both entry
    # chains interleave on the same cores.  Each structure's entry plan
    # is computed over its own (non-contiguous) task ids.
    def plan_for(ops, ids):
        # plan_entries assumes consecutive ids; emulate by planning over
        # a dense stream then mapping — instead plan directly:
        mutators = [tid for tid, (op, _, _) in zip(ids, ops) if op != LOOKUP]
        sentinel = max(ids) + 1
        init_version = mutators[0] if mutators else sentinel
        plans = []
        import bisect

        for tid, (op, _, _) in zip(ids, ops):
            if op != LOOKUP:
                j = bisect.bisect_right(mutators, tid)
                plans.append(("lock", tid, mutators[j] if j < len(mutators) else sentinel))
            else:
                j = bisect.bisect_left(mutators, tid)
                if j == 0:
                    plans.append(("skip",))
                else:
                    plans.append(("load", mutators[j] if j < len(mutators) else sentinel))
        return init_version, plans

    ids_a = [FIRST_TASK_ID + 2 * i for i in range(len(ops_a))]
    ids_b = [FIRST_TASK_ID + 2 * i + 1 for i in range(len(ops_b))]
    init_ver_a, plans_a = plan_for(ops_a, ids_a)
    init_ver_b, plans_b = plan_for(ops_b, ids_b)

    lst_a = VersionedLinkedList(machine, init_a, 200, ticket_init_version=init_ver_a)
    lst_b = VersionedLinkedList(machine, init_b, 200, ticket_init_version=init_ver_b)

    tasks = []
    for lst, ops, ids, plans in ((lst_a, ops_a, ids_a, plans_a),
                                 (lst_b, ops_b, ids_b, plans_b)):
        for tid, (op, key, _), plan in zip(ids, ops, plans):
            if op == LOOKUP:
                tasks.append(Task(tid, lst.lookup_task, key, plan))
            elif op == "insert":
                tasks.append(Task(tid, lst.insert_task, key, plan[2]))
            else:
                tasks.append(Task(tid, lst.delete_task, key, plan[2]))
    tasks.sort(key=lambda t: t.task_id)
    machine.submit(tasks, StaticScheduler())
    machine.run()

    results_a = [t.result for t in tasks if t.task_id in set(ids_a)]
    results_b = [t.result for t in tasks if t.task_id in set(ids_b)]
    assert results_a == exp_a[0]
    assert results_b == exp_b[0]
    assert lst_a.snapshot() == exp_a[1]
    assert lst_b.snapshot() == exp_b[1]


def test_gc_active_during_parallel_run_preserves_results():
    """Tight free list: collection happens mid-run, results still exact."""
    cfg = MachineConfig(num_cores=8, free_list_blocks=192, gc_watermark=96)
    init = initial_keys(40, 160, seed=33)
    ops = generate_ops(96, WRITE_INTENSIVE, 160, seed=33)
    expected_results, expected_final = reference_results(init, ops)
    run = ll_mod.run_versioned(cfg, init, ops, 8)
    assert run.stats.gc_phases > 0, "free list never hit the watermark"
    assert run.stats.gc_reclaimed > 0
    assert run.results == expected_results
    assert run.final_state == expected_final


def test_free_list_refill_trap_during_run():
    """Exhausting the initial carve triggers the OS refill trap."""
    cfg = MachineConfig(
        num_cores=4, free_list_blocks=64, gc_watermark=0, refill_blocks=64
    )
    init = initial_keys(30, 120, seed=34)
    ops = generate_ops(64, WRITE_INTENSIVE, 120, seed=34)
    expected_results, expected_final = reference_results(init, ops)
    run = ll_mod.run_versioned(cfg, init, ops, 4)
    assert run.stats.free_list_refills >= 1
    assert run.results == expected_results
    assert run.final_state == expected_final


def test_determinism_across_repeated_runs():
    """The DES is deterministic: identical inputs, identical cycle counts."""
    cfg = MachineConfig(num_cores=16)
    init = initial_keys(50, 200, seed=35)
    ops = generate_ops(64, WRITE_INTENSIVE, 200, seed=35)
    a = ll_mod.run_versioned(cfg, init, ops, 16)
    b = ll_mod.run_versioned(cfg, init, ops, 16)
    assert a.cycles == b.cycles
    assert a.stats.snapshot() == b.stats.snapshot()


def test_stats_accounting_consistency():
    cfg = MachineConfig(num_cores=8)
    init = initial_keys(40, 160, seed=36)
    ops = generate_ops(64, WRITE_INTENSIVE, 160, seed=36)
    run = ll_mod.run_versioned(cfg, init, ops, 8)
    s = run.stats
    assert s.tasks_started == s.tasks_finished == len(ops)
    assert s.versions_locked == s.versions_unlocked  # every lock released
    assert s.l1_hits + s.l1_misses == s.l1_accesses
    assert 0.0 <= s.direct_hit_rate <= 1.0
    assert s.versioned_ops > 0
    assert s.cycles > 0
    # Busy cycles per core never exceed the wall clock.
    assert all(busy <= s.cycles for busy in s.per_core_cycles.values())


def test_single_task_machine_minimal_overhead():
    """A no-op task costs exactly the task-begin overhead."""
    m = Machine(MachineConfig(num_cores=1))

    def empty(tid):
        return 7
        yield  # pragma: no cover - makes this a generator

    m.submit([Task(0, empty)])
    m.run()
    assert m.cycles == TASK_BEGIN_CYCLES


def test_many_cores_few_tasks():
    """More cores than tasks: idle cores must not deadlock or distort."""
    cfg = MachineConfig(num_cores=32)
    init = initial_keys(20, 80, seed=37)
    ops = generate_ops(8, WRITE_INTENSIVE, 80, seed=37)
    expected_results, expected_final = reference_results(init, ops)
    run = ll_mod.run_versioned(cfg, init, ops, 32)
    assert run.results == expected_results
    assert run.final_state == expected_final


@pytest.mark.parametrize("extra", [0, 10])
def test_figure10_knob_applies_to_all_versioned_ops(extra):
    cfg = dataclasses.replace(
        MachineConfig(num_cores=1), versioned_op_extra_latency=extra
    )
    init = initial_keys(20, 80, seed=38)
    ops = generate_ops(24, WRITE_INTENSIVE, 80, seed=38)
    run = ll_mod.run_versioned(cfg, init, ops, 1)
    # Stash for cross-parametrization comparison via module-level cache.
    _cycles_by_extra[extra] = run.cycles
    if 0 in _cycles_by_extra and 10 in _cycles_by_extra:
        assert _cycles_by_extra[10] > _cycles_by_extra[0]


_cycles_by_extra: dict[int, int] = {}
