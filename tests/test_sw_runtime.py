"""Tests for the software O-structure runtime (real threads)."""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.errors import NotLockedError, SimulationError, VersionExistsError
from repro.sw import SWOStructure, SWRuntime
from repro.sw.ostructure import SWTimeout


class TestSWOStructureBasics:
    def test_store_and_exact_load(self):
        o = SWOStructure()
        o.store_version(1, "a")
        assert o.load_version(1) == "a"

    def test_duplicate_store_rejected(self):
        o = SWOStructure()
        o.store_version(1, "a")
        with pytest.raises(VersionExistsError):
            o.store_version(1, "b")

    def test_load_latest_caps(self):
        o = SWOStructure()
        for v in (1, 3, 7):
            o.store_version(v, v * 10)
        assert o.load_latest(5) == (3, 30)
        assert o.load_latest(7) == (7, 70)

    def test_load_uncreated_times_out(self):
        o = SWOStructure()
        with pytest.raises(SWTimeout):
            o.load_version(9, timeout=0.05)

    def test_load_latest_below_everything_times_out(self):
        o = SWOStructure()
        o.store_version(5, "x")
        with pytest.raises(SWTimeout):
            o.load_latest(4, timeout=0.05)

    def test_lock_blocks_readers_of_that_version(self):
        o = SWOStructure()
        o.store_version(1, "a")
        o.lock_load_version(1, task_id=7)
        with pytest.raises(SWTimeout):
            o.load_version(1, timeout=0.05)
        # Other versions unaffected.
        o.store_version(2, "b")
        assert o.load_version(2) == "b"

    def test_unlock_wrong_holder_rejected(self):
        o = SWOStructure()
        o.store_version(1, "a")
        o.lock_load_version(1, task_id=7)
        with pytest.raises(NotLockedError):
            o.unlock_version(1, task_id=8)

    def test_unlock_with_rename(self):
        o = SWOStructure()
        o.store_version(1, "a")
        o.lock_load_version(1, task_id=7)
        o.unlock_version(1, task_id=7, new_version=2)
        assert o.load_version(2) == "a"
        assert o.versions() == [1, 2]

    def test_rename_collision_rejected(self):
        o = SWOStructure()
        o.store_version(1, "a")
        o.store_version(2, "b")
        o.lock_load_version(1, task_id=7)
        with pytest.raises(VersionExistsError):
            o.unlock_version(1, task_id=7, new_version=2)

    def test_locker_introspection(self):
        o = SWOStructure()
        o.store_version(1, "a")
        assert not o.is_locked(1)
        o.lock_load_version(1, task_id=9)
        assert o.is_locked(1)
        assert o.locker_of(1) == 9

    def test_reclaim_below_keeps_boundary_and_locked(self):
        o = SWOStructure()
        for v in range(1, 8):
            o.store_version(v, v)
        o.lock_load_version(2, task_id=1)
        removed = o.reclaim_below(6)
        # Keeps 6 (the LOAD-LATEST(6) target), 7 and the locked version 2.
        assert set(o.versions()) == {2, 6, 7}
        assert removed == 4
        o.unlock_version(2, task_id=1)

    def test_reclaim_keeps_highest_below_floor_when_floor_uncreated(self):
        o = SWOStructure()
        for v in (1, 3, 5):
            o.store_version(v, v)
        o.reclaim_below(4)  # floor task reads latest <= 4 == version 3
        assert set(o.versions()) == {3, 5}
        assert o.load_latest(4) == (3, 3)


class TestSWOStructureThreads:
    def test_blocking_load_wakes_on_store(self):
        o = SWOStructure()
        result = {}

        def consumer():
            result["value"] = o.load_version(1, timeout=5)

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.02)
        o.store_version(1, 99)
        t.join(timeout=5)
        assert result["value"] == 99

    def test_blocked_latest_sees_version_created_while_waiting(self):
        o = SWOStructure()
        o.store_version(1, "old")
        o.lock_load_version(1, task_id=0)
        result = {}

        def reader():
            result["got"] = o.load_latest(10, timeout=5)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.02)
        o.store_version(5, "new")  # appears while the reader waits
        t.join(timeout=5)
        assert result["got"] == (5, "new")
        o.unlock_version(1, task_id=0)

    def test_lock_contention_serializes(self):
        o = SWOStructure()
        o.store_version(1, 0)
        order = []

        def worker(wid):
            o.lock_load_version(1, task_id=wid, timeout=5)
            order.append(wid)
            time.sleep(0.01)
            o.unlock_version(1, task_id=wid)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert sorted(order) == [0, 1, 2, 3]

    def test_hand_over_hand_chain_across_threads(self):
        # N threads, each extending the chain in task order.
        o = SWOStructure()
        o.store_version(0, [])
        n = 8

        def worker(tid):
            value = o.lock_load_version(tid, task_id=tid, timeout=10)
            o.unlock_version(tid, task_id=tid)
            o.store_version(tid + 1, value + [tid])

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n)]
        # Start in reverse order to prove version waiting does the ordering.
        for t in reversed(threads):
            t.start()
        for t in threads:
            t.join(timeout=20)
        assert o.load_version(n) == list(range(n))


class TestSWTimeoutContext:
    def test_exact_load_context(self):
        o = SWOStructure("cell")
        o.store_version(1, "a")
        with pytest.raises(SWTimeout) as exc_info:
            o.load_version(5, timeout=0.05)
        exc = exc_info.value
        assert exc.address == "cell"
        assert exc.op == "load-version"
        assert exc.wanted == 5
        assert exc.latest == 1
        assert exc.holder is None
        assert exc.timeout == 0.05
        assert exc.context == {
            "address": "cell", "op": "load-version", "wanted": 5,
            "latest": 1, "timeout": 0.05,
        }

    def test_latest_load_reports_lock_holder(self):
        o = SWOStructure("cell")
        o.store_version(3, "x")
        o.lock_load_version(3, task_id=9)
        with pytest.raises(SWTimeout) as exc_info:
            o.load_latest(5, timeout=0.05)
        exc = exc_info.value
        assert exc.op == "load-latest"
        assert exc.cap == 5
        assert exc.wanted is None
        assert exc.latest == 3
        assert exc.holder == 9  # the candidate <= cap is locked by task 9
        o.unlock_version(3, task_id=9)

    def test_lock_ops_carry_their_own_op_names(self):
        o = SWOStructure("cell")
        with pytest.raises(SWTimeout) as e1:
            o.lock_load_version(1, task_id=2, timeout=0.05)
        assert e1.value.op == "lock-load-version"
        with pytest.raises(SWTimeout) as e2:
            o.lock_load_latest(1, task_id=2, timeout=0.05)
        assert e2.value.op == "lock-load-latest"

    def test_str_is_backward_compatible(self):
        o = SWOStructure("cell")
        with pytest.raises(SWTimeout) as exc_info:
            o.load_version(9, timeout=0.05)
        # Pre-context message, byte for byte.
        assert str(exc_info.value) == (
            "cell: blocked operation timed out after 0.05s"
        )
        # describe() appends the structured fields.
        assert "op=load-version" in exc_info.value.describe()
        assert "wanted=9" in exc_info.value.describe()

    def test_bare_construction_has_empty_context(self):
        exc = SWTimeout("boom")
        assert exc.context == {}
        assert exc.describe() == "boom"


class TestTryBlockingParity:
    """The non-blocking ``try_*`` probes must agree with their blocking
    twins: a probe hit is exactly a value the blocking form would have
    returned at that instant, and a probe miss is exactly a state the
    blocking form would have waited on."""

    def test_probe_miss_iff_blocking_waits(self):
        o = SWOStructure()
        # Uncreated version: both forms refuse.
        assert o.try_load_version(1) is None
        with pytest.raises(SWTimeout):
            o.load_version(1, timeout=0.02)
        # Created: both forms agree on the value.
        o.store_version(1, "a")
        assert o.try_load_version(1) == ("a",)
        assert o.load_version(1) == "a"
        # Locked: both forms refuse again.
        o.lock_load_version(1, task_id=7)
        assert o.try_load_version(1) is None
        with pytest.raises(SWTimeout):
            o.load_version(1, timeout=0.02)
        assert o.try_load_latest(5) is None
        with pytest.raises(SWTimeout):
            o.load_latest(5, timeout=0.02)
        o.unlock_version(1, task_id=7)
        assert o.try_load_latest(5) == (1, "a")
        assert o.load_latest(5) == (1, "a")

    def test_try_lock_twins_take_the_lock_like_blocking_ones(self):
        o = SWOStructure()
        o.store_version(2, "b")
        assert o.try_lock_load_version(2, task_id=1) == ("b",)
        assert o.locker_of(2) == 1
        # A second locker (either form) must now be refused.
        assert o.try_lock_load_version(2, task_id=2) is None
        assert o.try_lock_load_latest(9, task_id=2) is None
        with pytest.raises(SWTimeout):
            o.lock_load_version(2, task_id=2, timeout=0.02)
        o.unlock_version(2, task_id=1)
        assert o.try_lock_load_latest(9, task_id=2) == (2, "b")
        o.unlock_version(2, task_id=2)

    def test_parity_under_concurrent_writers_and_droppers(self):
        # One writer extends the version chain (value == version), one
        # dropper reclaims shadowed history, many probers hammer both
        # API forms.  Every value either form returns must equal its
        # version number — any disagreement is a parity bug.
        o = SWOStructure()
        o.store_version(0, 0)
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            v = 1
            while not stop.is_set():
                o.store_version(v, v)
                v += 1
                time.sleep(0.0003)

        def dropper():
            while not stop.is_set():
                versions = o.versions()
                if len(versions) > 8:
                    o.reclaim_below(versions[-4])
                time.sleep(0.001)

        def prober(pid: int):
            rng = random.Random(1000 + pid)
            while not stop.is_set():
                cap = rng.randint(0, 1 << 20)
                hit = o.try_load_latest(cap)
                if hit is not None:
                    v, val = hit
                    if v > cap or val != v:
                        errors.append(f"try_load_latest({cap}) -> {hit}")
                versions = o.versions()
                if versions:
                    v = rng.choice(versions)
                    hit = o.try_load_version(v)
                    # A miss is legal (dropped or freshly locked), but a
                    # hit must carry the immutable value.
                    if hit is not None and hit[0] != v:
                        errors.append(f"try_load_version({v}) -> {hit}")
                hit = o.try_lock_load_latest(1 << 20, task_id=pid)
                if hit is not None:
                    v, val = hit
                    if val != v:
                        errors.append(f"try_lock_load_latest -> {hit}")
                    o.unlock_version(v, task_id=pid)

        def blocking_reader():
            while not stop.is_set():
                v, val = o.load_latest(1 << 20, timeout=5)
                if val != v:
                    errors.append(f"load_latest -> ({v}, {val})")

        threads = (
            [threading.Thread(target=writer), threading.Thread(target=dropper)]
            + [threading.Thread(target=prober, args=(i,)) for i in range(4)]
            + [threading.Thread(target=blocking_reader)]
        )
        for t in threads:
            t.start()
        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert errors == []
        # Post-quiescence: both forms agree on every surviving version.
        for v in o.versions():
            assert o.try_load_version(v) == (v,)
            assert o.load_version(v, timeout=1) == v
        gone = max(o.versions()) + 100
        assert o.try_load_version(gone) is None
        with pytest.raises(SWTimeout):
            o.load_version(gone, timeout=0.02)


class TestSWRuntime:
    def test_spawn_returns_result(self):
        with SWRuntime(num_workers=2) as rt:
            fut = rt.spawn(0, lambda ctx: ctx.task_id * 2)
            assert fut.result(timeout=5) == 0

    def test_rule3_enforced(self):
        with SWRuntime(num_workers=2) as rt:
            gate = rt.new_ostructure("gate")

            def waiting(ctx):
                return gate.load_version(0, timeout=5)

            rt.spawn(5, waiting)
            with pytest.raises(SimulationError):
                rt.spawn(4, lambda ctx: None)
            gate.store_version(0, "go")

    def test_duplicate_spawn_rejected(self):
        with SWRuntime(num_workers=2) as rt:
            gate = rt.new_ostructure("gate")
            rt.spawn(1, lambda ctx: gate.load_version(0, timeout=5))
            with pytest.raises(SimulationError):
                rt.spawn(1, lambda ctx: None)
            gate.store_version(0, 1)

    def test_gc_reclaims_under_live_floor(self):
        with SWRuntime(num_workers=2) as rt:
            cell = rt.new_ostructure("c")
            for v in range(10):
                cell.store_version(v, v)
            gate = rt.new_ostructure("gate")

            def pinned(ctx):
                return gate.load_version(0, timeout=10)

            fut = rt.spawn(8, pinned)  # floor = 8
            reclaimed = rt.collect()
            assert reclaimed > 0
            # Everything task 8 may read survives.
            assert cell.load_latest(8) == (8, 8)
            gate.store_version(0, "done")
            fut.result(timeout=5)

    def test_collect_without_live_tasks_is_noop(self):
        with SWRuntime(num_workers=1) as rt:
            cell = rt.new_ostructure("c")
            for v in range(5):
                cell.store_version(v, v)
            assert rt.collect() == 0
            assert cell.versions() == [0, 1, 2, 3, 4]

    def test_spawn_after_shutdown_rejected(self):
        rt = SWRuntime(num_workers=1)
        rt.shutdown()
        with pytest.raises(SimulationError):
            rt.spawn(0, lambda ctx: None)

    def test_periodic_gc_fires(self):
        with SWRuntime(num_workers=2, gc_every=4) as rt:
            cell = rt.new_ostructure("c")
            cell.store_version(0, 0)

            def writer(ctx):
                cell.store_version(ctx.task_id + 1, ctx.task_id)

            futs = [rt.spawn(t, writer) for t in range(1, 20)]
            for f in futs:
                f.result(timeout=10)
            assert rt.gc_runs >= 1
