"""End-to-end sanitizer tests: clean runs, fault injection, reporting.

The fault-injection tests are the acceptance criterion for the sanitizer:
each one disables a specific piece of correctness machinery (memo/cache
invalidation on GC reclaim, the GC age bound) and asserts the sanitizer
catches the resulting misbehaviour that a plain run would silently
accept.
"""

from __future__ import annotations

import pickle

import pytest

from repro import Machine, MachineConfig, Task, Versioned
from repro.check import CheckViolation
from repro.check.sanitizer import Sanitizer
from repro.ostruct.manager import StallSignal


def small_checked(**kw) -> Machine:
    kw.setdefault("num_cores", 2)
    kw.setdefault("free_list_blocks", 64)
    return Machine(MachineConfig(**kw), checked=True, check_interval=4)


class TestCleanRuns:
    def test_producer_consumer_clean(self):
        m = small_checked()
        cell = Versioned(m.heap.alloc_versioned(1))

        def producer(tid, cell):
            yield cell.store_ver(0, 42)

        def consumer(tid, cell):
            value = yield cell.load_ver(0)
            return value

        tasks = [Task(0, producer, cell), Task(1, consumer, cell)]
        m.submit(tasks)
        m.run()
        assert tasks[1].result == 42
        assert m.sanitizer.ops_checked == 2
        assert m.sanitizer.checkpoints_run >= 1
        assert m.sanitizer.oracle.ops_mirrored == 2

    def test_rename_and_locks_clean(self):
        m = small_checked()
        cell = Versioned(m.heap.alloc_versioned(1))

        def chain(tid, cell):
            yield cell.store_ver(0, 7)
            for v in range(4):
                yield cell.lock_load_ver(v)
                yield cell.unlock_ver(v, v + 1)  # rename: hand-over-hand

        def reader(tid, cell):
            value = yield cell.load_ver(4)
            return value

        tasks = [Task(0, chain, cell), Task(1, reader, cell)]
        m.submit(tasks)
        m.run()
        assert tasks[1].result == 7

    def test_direct_manager_ops_checked(self):
        # The wrappers also guard direct manager calls (no cores involved).
        m = small_checked()
        addr = m.heap.alloc_versioned(4)
        m.manager.store_version(0, addr, 1, "a")
        assert m.manager.load_version(0, addr, 1)[1] == "a"
        with pytest.raises(StallSignal):
            m.manager.load_version(0, addr, 9)
        m.sanitizer.check_now()
        m.sanitizer.finish()

    def test_free_ostructure_mirrored(self):
        m = small_checked()
        addr = m.heap.alloc_versioned(4)
        m.manager.store_version(0, addr, 1, "a")
        m.manager.store_version(0, addr, 2, "b")
        m.manager.free_ostructure(addr)
        assert addr not in m.sanitizer.oracle.structs
        m.sanitizer.finish()


class TestFaultInjection:
    def _primed_machine(self):
        """Three versions; v1 cached in the L1 direct path and memo."""
        m = small_checked(gc_watermark=0)  # no auto phases
        addr = m.heap.alloc_versioned(4)
        for v, val in ((1, "a"), (2, "b"), (3, "c")):
            m.manager.store_version(0, addr, v, val)
        assert m.manager.load_version(0, addr, 1)[1] == "a"
        return m, addr

    def test_skipped_reclaim_invalidation_caught(self):
        # THE acceptance-criterion fault: drop the manager's reclaim hook
        # so GC'd versions linger in compressed lines and the PR-1 memo.
        m, addr = self._primed_machine()
        m.gc.reclaim_hooks.remove(m.manager._on_reclaim)
        m.gc.start_phase()  # no live tasks: reclaims v1 and v2 at once
        assert m.stats.gc_reclaimed == 2
        with pytest.raises(CheckViolation) as ei:
            m.manager.load_version(0, addr, 1)
        assert ei.value.kind == "divergence"
        assert any("does not exist" in p for p in ei.value.problems)

    def test_skipped_reclaim_invalidation_fails_invariants_too(self):
        # Even before any load, the stale compressed entry (and memo)
        # violate the structural invariants.
        m, addr = self._primed_machine()
        m.gc.reclaim_hooks.remove(m.manager._on_reclaim)
        m.gc.start_phase()
        with pytest.raises(CheckViolation) as ei:
            m.sanitizer.check_now()
        assert ei.value.kind == "invariant-checkpoint"
        assert any("reclaimed" in p for p in ei.value.problems)

    def test_unbroken_machine_stalls_instead(self):
        # Control: with the hook in place the same sequence is clean —
        # the load of the reclaimed version parks on the waiter queue.
        m, addr = self._primed_machine()
        m.gc.start_phase()
        assert m.stats.gc_reclaimed == 2
        with pytest.raises(StallSignal):
            m.manager.load_version(0, addr, 1)
        m.sanitizer.check_now()
        m.sanitizer.finish()

    def test_unsafe_gc_bound_caught(self):
        # Simulate the pre-fix GC bound (highest *active* id instead of
        # max_seen): the reclaim audit must flag the reachable version.
        m = small_checked(gc_watermark=0)
        addr = m.heap.alloc_versioned(4)
        t = m.tracker
        for tid in (1, 2, 3):
            t.register(tid)
        t.begin(1)
        t.begin(3)
        m.manager.store_version(0, addr, 1, "a")
        m.manager.store_version(0, addr, 3, "c")  # shadows v1
        t.end(3)
        m.gc.start_phase()
        t.end(1)
        # Fixed bound (max_seen == 3) holds the block for queued task 2.
        assert m.gc.pending_count == 1
        assert m.stats.gc_reclaimed == 0
        # Re-impose the buggy bound and force finalization.
        m.gc._recorded_youngest = 1  # what highest_active() recorded
        with pytest.raises(CheckViolation) as ei:
            m.gc._try_finalize()
        assert ei.value.kind == "gc-safety"
        assert any("live task 2" in p for p in ei.value.problems)


class TestReporting:
    def _violation(self) -> CheckViolation:
        m = small_checked()
        addr = m.heap.alloc_versioned(4)
        m.manager.store_version(0, addr, 1, "a")
        m.gc.reclaim_hooks.remove(m.manager._on_reclaim)
        m.manager.store_version(0, addr, 2, "b")
        m.manager.store_version(0, addr, 3, "c")
        m.gc.start_phase()
        with pytest.raises(CheckViolation) as ei:
            m.manager.load_version(0, addr, 1)
        return ei.value

    def test_report_structure(self):
        v = self._violation()
        text = v.render()
        assert "sanitizer violation [divergence]" in text
        assert "op:" in text
        # Direct manager calls retire no core ops, so the tail is empty
        # here; the wait-graph post-mortem is always attached.
        assert "wait graph" in text
        assert "no blocked cores" in text

    def test_render_includes_trace_tail_when_present(self):
        v = CheckViolation(
            "divergence",
            ["hw=1 reference=2"],
            op=("load_version", 0x40, 1),
            cycle=99,
            ops_checked=12,
            trace_tail=["[      42] c0 t1 store_version @0x40 lat=3"],
            post_mortem="no blocked cores",
        )
        text = v.render()
        assert "trace tail:" in text
        assert "store_version" in text
        assert "cycle 99" in text

    def test_machine_run_violation_carries_trace_tail(self):
        # Through the cores the auto-attached tracer records the
        # interleaving, and the report tail shows it.
        m = small_checked(gc_watermark=0)
        cell = Versioned(m.heap.alloc_versioned(1))

        def writer(tid, cell):
            for v in range(3):
                yield cell.store_ver(v, v)
            # Mimic a reclaim that skips cache invalidation: drop v0
            # from the backing list (mirrored into the reference), but
            # leave the compressed-line entry and memo stale.
            lst = m.manager.lists[cell.addr]
            block, _ = lst.find_exact(0)
            lst.remove(block)
            m.sanitizer.oracle.mirror_reclaim(cell.addr, 0)
            yield cell.load_ver(0)

        m.submit([Task(1, writer, cell)])
        with pytest.raises(CheckViolation) as ei:
            m.run()
        assert ei.value.trace_tail
        assert any("store_version" in line for line in ei.value.trace_tail)

    def test_pickle_round_trip(self):
        # Violations cross the sweep runner's process-pool boundary.
        v = self._violation()
        clone = pickle.loads(pickle.dumps(v))
        assert isinstance(clone, CheckViolation)
        assert clone.kind == v.kind
        assert clone.problems == v.problems
        assert clone.op == v.op
        assert clone.render() == v.render()


class TestInstallUninstall:
    def test_uninstall_restores_manager(self):
        m = small_checked()
        addr = m.heap.alloc_versioned(4)
        mgr = m.manager
        assert "load_version" in vars(mgr)  # instance-attribute wrapper
        m.sanitizer.uninstall()
        assert "load_version" not in vars(mgr)
        # Back to the plain class methods; no oracle mirroring happens.
        mirrored = m.sanitizer.oracle.ops_mirrored
        mgr.store_version(0, addr, 1, "a")
        assert m.sanitizer.oracle.ops_mirrored == mirrored
        assert m.sanitizer._on_reclaim not in m.gc.reclaim_hooks
        assert m.trace_hook is None

    def test_checked_flag_via_config(self):
        m = Machine(MachineConfig(num_cores=2, checked=True))
        assert m.sanitizer is not None
        m2 = Machine(MachineConfig(num_cores=2))
        assert m2.sanitizer is None
        # Explicit argument overrides the config either way.
        m3 = Machine(MachineConfig(num_cores=2, checked=True), checked=False)
        assert m3.sanitizer is None
