"""Tests for the SWOStructure probe API and the differential oracle."""

from __future__ import annotations

import pytest

from repro.check.oracle import DifferentialOracle
from repro.errors import SimulationError
from repro.sw.ostructure import SWOStructure

ADDR = 0x1000


class TestTryProbes:
    def test_try_load_version(self):
        sw = SWOStructure()
        assert sw.try_load_version(1) is None
        sw.store_version(1, "a")
        assert sw.try_load_version(1) == ("a",)

    def test_try_load_version_blocked_by_lock(self):
        sw = SWOStructure()
        sw.store_version(1, "a")
        sw.lock_load_version(1, task_id=7)
        assert sw.try_load_version(1) is None

    def test_try_load_latest(self):
        sw = SWOStructure()
        assert sw.try_load_latest(5) is None
        sw.store_version(1, "a")
        sw.store_version(3, "c")
        assert sw.try_load_latest(5) == (3, "c")
        assert sw.try_load_latest(2) == (1, "a")
        assert sw.try_load_latest(0) is None

    def test_try_lock_load_version_locks_only_on_success(self):
        sw = SWOStructure()
        assert sw.try_lock_load_version(1, task_id=3) is None
        assert not sw.is_locked(1)
        sw.store_version(1, "a")
        assert sw.try_lock_load_version(1, task_id=3) == ("a",)
        assert sw.locker_of(1) == 3
        # Second attempt observes the lock and does not clobber it.
        assert sw.try_lock_load_version(1, task_id=4) is None
        assert sw.locker_of(1) == 3

    def test_try_lock_load_latest(self):
        sw = SWOStructure()
        sw.store_version(2, "b")
        assert sw.try_lock_load_latest(9, task_id=5) == (2, "b")
        assert sw.locker_of(2) == 5
        assert sw.try_lock_load_latest(9, task_id=6) is None

    def test_probes_agree_with_blocking_forms(self):
        sw = SWOStructure()
        sw.store_version(1, "a")
        assert sw.try_load_version(1)[0] == sw.load_version(1)
        assert sw.try_load_latest(4) == sw.load_latest(4)

    def test_drop_version(self):
        sw = SWOStructure()
        sw.store_version(1, "a")
        assert sw.drop_version(1) is True
        assert sw.drop_version(1) is False
        assert sw.versions() == []

    def test_drop_locked_version_refused(self):
        sw = SWOStructure()
        sw.store_version(1, "a")
        sw.lock_load_version(1, task_id=2)
        with pytest.raises(SimulationError):
            sw.drop_version(1)

    def test_dump(self):
        sw = SWOStructure()
        sw.store_version(1, "a")
        sw.store_version(2, "b")
        sw.lock_load_version(2, task_id=9)
        assert sw.dump() == {1: ("a", None), 2: ("b", 9)}


class TestOracleMirrors:
    def test_mirror_store_then_loads_agree(self):
        o = DifferentialOracle()
        assert o.mirror_store(ADDR, 1, "a") == []
        assert o.expect_exact(ADDR, 1, "a") == []
        assert o.expect_latest(ADDR, 5, 1, "a") == []

    def test_duplicate_store_flagged(self):
        o = DifferentialOracle()
        o.mirror_store(ADDR, 1, "a")
        assert o.mirror_store(ADDR, 1, "b")  # hw created a duplicate

    def test_wrong_value_flagged(self):
        o = DifferentialOracle()
        o.mirror_store(ADDR, 1, "a")
        assert o.expect_exact(ADDR, 1, "WRONG")
        assert o.expect_latest(ADDR, 5, 1, "WRONG")

    def test_serving_nonexistent_version_flagged(self):
        o = DifferentialOracle()
        problems = o.expect_exact(ADDR, 3, "ghost")
        assert problems and "does not exist" in problems[0]

    def test_stall_agreement(self):
        o = DifferentialOracle()
        assert o.expect_blocked_exact(ADDR, 1) == []
        o.mirror_store(ADDR, 1, "a")
        # Now a hw stall on version 1 would be a lost wake-up.
        assert o.expect_blocked_exact(ADDR, 1)
        assert o.expect_blocked_latest(ADDR, 5)
        assert o.expect_blocked_latest(ADDR, 0) == []

    def test_lock_mirroring_and_unlock(self):
        o = DifferentialOracle()
        o.mirror_store(ADDR, 1, "a")
        assert o.mirror_lock_exact(ADDR, 1, 7, "a") == []
        # While locked, plain loads must stall.
        assert o.expect_blocked_exact(ADDR, 1) == []
        assert o.mirror_unlock(ADDR, 1, 7) == []
        assert o.expect_exact(ADDR, 1, "a") == []

    def test_unlock_by_non_holder_flagged(self):
        o = DifferentialOracle()
        o.mirror_store(ADDR, 1, "a")
        o.mirror_lock_exact(ADDR, 1, 7, "a")
        assert o.mirror_unlock(ADDR, 1, 8)  # hw let the wrong task unlock
        assert o.expect_not_locked(ADDR, 1, 7)  # hw refused the holder

    def test_lock_latest_wrong_version_flagged(self):
        o = DifferentialOracle()
        o.mirror_store(ADDR, 1, "a")
        o.mirror_store(ADDR, 3, "c")
        assert o.mirror_lock_latest(ADDR, 9, 5, 1, "a")  # hw picked v1, ref v3
        # The failed mirror must not leave the reference locked.
        assert o.structs[ADDR].is_locked(3) is False

    def test_check_reclaim_safety(self):
        o = DifferentialOracle()
        o.mirror_store(ADDR, 1, "a")
        o.mirror_store(ADDR, 3, "c")
        # Live task 2 reads latest<=2 == v1: reclaiming v1 is unsafe.
        problems = o.check_reclaim(ADDR, 1, live_tasks=[2])
        assert problems and "live task 2" in problems[0]
        # With only task 4 live, v1 is shadowed by v3 and unreachable.
        assert o.check_reclaim(ADDR, 1, live_tasks=[4]) == []

    def test_check_reclaim_respects_protection_bound(self):
        # The ticket-protocol shape: v71 renamed into existence by task
        # 65 *for* mutator 71 shadows v65.  Queued readers 66..70 are
        # above max_seen=65, so reclaiming v65 is within the GC contract.
        o = DifferentialOracle()
        o.mirror_store(ADDR, 65, "t65")
        o.mirror_store(ADDR, 71, "t71")
        live = [66, 67, 70]
        assert o.check_reclaim(ADDR, 65, live, max_protected=65) == []
        # Without the bound (or with the task inside the begun window),
        # the same reclaim is a violation.
        assert o.check_reclaim(ADDR, 65, live)
        assert o.check_reclaim(ADDR, 65, live, max_protected=67)

    def test_check_reclaim_latest_version_flagged(self):
        o = DifferentialOracle()
        o.mirror_store(ADDR, 2, "b")
        problems = o.check_reclaim(ADDR, 2, live_tasks=[])
        assert problems and "nothing shadows" in problems[0]

    def test_check_reclaim_locked_flagged(self):
        o = DifferentialOracle()
        o.mirror_store(ADDR, 1, "a")
        o.mirror_store(ADDR, 2, "b")
        o.mirror_lock_exact(ADDR, 1, 7, "a")
        assert any(
            "locked" in p for p in o.check_reclaim(ADDR, 1, live_tasks=[])
        )

    def test_mirror_free_count_mismatch(self):
        o = DifferentialOracle()
        o.mirror_store(ADDR, 1, "a")
        o.mirror_store(ADDR, 2, "b")
        assert o.mirror_free(ADDR, 1)  # hw freed 1 block, ref had 2
        o.mirror_store(ADDR, 1, "x")
        assert o.mirror_free(ADDR, 1) == []

    def test_compare_all_spots_extra_and_missing(self):
        from tests.test_manager import Rig

        rig = Rig()
        o = DifferentialOracle()
        rig.manager.store_version(0, rig.addr, 1, "a")
        o.mirror_store(rig.addr, 1, "a")
        assert o.compare_all(rig.manager) == []
        # hw-only version.
        rig.manager.store_version(0, rig.addr, 2, "b")
        assert any("hw only" in p for p in o.compare_all(rig.manager))
        o.mirror_store(rig.addr, 2, "b")
        # reference-only version.
        o.mirror_store(rig.addr + 4, 1, "z")
        assert any(
            "reference only" in p for p in o.compare_all(rig.manager)
        )
