"""Tests for the live deadlock watchdog (repro.sim.watchdog).

The watchdog periodically checks retirement progress; when no op retires
for a full cycle budget and cores are blocked, it runs the wait-graph
cycle detector and recovers by abort-and-retry of the youngest abortable
task in the cycle.  These tests build real lock cycles on a real machine
— no mocks — and require the recovered run to produce the same results
as an uncontended sequential reference.
"""

from __future__ import annotations

import pytest

from repro import DeadlockError, Machine, MachineConfig, Task, Versioned
from repro.ostruct import isa


def _abba_machine(cfg):
    """Two tasks that lock (a then b) and (b then a): a certain deadlock."""
    m = Machine(cfg)
    a = Versioned(m.heap.alloc_versioned(1))
    b = Versioned(m.heap.alloc_versioned(1))
    m.manager.store_version(0, a.addr, 0, 10)
    m.manager.store_version(0, b.addr, 0, 100)

    def t1(tid):
        va = yield a.lock_load_ver(0)
        yield isa.compute(50)
        vb = yield b.lock_load_ver(0)
        yield a.unlock_ver(0)
        yield b.unlock_ver(0)
        return va + vb * 2  # 10 + 200

    def t2(tid):
        vb = yield b.lock_load_ver(0)
        yield isa.compute(50)
        va = yield a.lock_load_ver(0)
        yield b.unlock_ver(0)
        yield a.unlock_ver(0)
        return vb + va * 2  # 100 + 20

    tasks = [Task(1, t1), Task(2, t2)]
    m.submit(tasks)
    return m, tasks


class TestLiveRecovery:
    def test_abba_cycle_recovered_by_abort_and_retry(self):
        cfg = MachineConfig(
            num_cores=2,
            checked=True,
            watchdog_cycles=2_000,
            watchdog_retries=4,
            watchdog_backoff_cycles=128,
        )
        m, tasks = _abba_machine(cfg)
        stats = m.run()  # must NOT raise DeadlockError
        assert tasks[0].result == 210
        assert tasks[1].result == 120
        assert stats.watchdog_trips >= 1
        assert stats.tasks_retried == 1  # one victim breaks an ABBA pair

    def test_recovered_results_match_sequential_reference(self):
        # Same program, one core: no interleaving, no deadlock possible.
        seq_cfg = MachineConfig(num_cores=1)
        m_seq, t_seq = _abba_machine(seq_cfg)
        m_seq.run()
        reference = [t.result for t in t_seq]

        cfg = MachineConfig(
            num_cores=2, checked=True, watchdog_cycles=2_000
        )
        m, tasks = _abba_machine(cfg)
        m.run()
        assert [t.result for t in tasks] == reference

    def test_victim_is_youngest_task_in_cycle(self):
        cfg = MachineConfig(num_cores=2, checked=True, watchdog_cycles=2_000)
        m, tasks = _abba_machine(cfg)
        m.run()
        assert m.watchdog is not None
        assert list(m.watchdog.retries) == [2]

    def test_retry_exhaustion_degrades_to_deadlock_error(self):
        # A retry limit of zero makes the very first recovery attempt
        # exceed the budget: the watchdog gives up and the drain-time
        # DeadlockError must say so.
        cfg = MachineConfig(
            num_cores=2,
            watchdog_cycles=2_000,
            watchdog_retries=0,
        )
        m, _ = _abba_machine(cfg)
        with pytest.raises(DeadlockError) as exc_info:
            m.run()
        assert "watchdog recovery exhausted" in str(exc_info.value)
        assert m.watchdog.gave_up

    def test_watchdog_disabled_means_plain_deadlock(self):
        cfg = MachineConfig(num_cores=2, watchdog_cycles=0)
        m, _ = _abba_machine(cfg)
        assert m.watchdog is None
        with pytest.raises(DeadlockError):
            m.run()


class TestNoFalsePositives:
    def test_long_compute_does_not_trip(self):
        # One task computing for many budgets: no retirement for long
        # stretches, but no core is blocked — the watchdog must not act.
        cfg = MachineConfig(num_cores=1, watchdog_cycles=500)
        m = Machine(cfg)
        cell = Versioned(m.heap.alloc_versioned(1))

        def prog(tid):
            yield isa.compute(5_000)
            yield cell.store_ver(tid, 1)
            return 1

        tasks = [Task(0, prog)]
        m.submit(tasks)
        stats = m.run()
        assert tasks[0].result == 1
        assert stats.watchdog_trips == 0
        assert stats.tasks_retried == 0

    def test_legitimate_lock_wait_not_aborted(self):
        # Task 2 waits for task 1's lock, but task 1 is making progress
        # (long compute while holding the lock).  No cycle exists; the
        # watchdog may tick but must not abort anyone.
        cfg = MachineConfig(num_cores=2, checked=True, watchdog_cycles=500)
        m = Machine(cfg)
        cell = Versioned(m.heap.alloc_versioned(1))
        m.manager.store_version(0, cell.addr, 0, 7)

        def holder(tid):
            v = yield cell.lock_load_ver(0)
            yield isa.compute(3_000)
            yield cell.unlock_ver(0)
            return v

        def waiter(tid):
            v = yield cell.lock_load_ver(0)
            yield cell.unlock_ver(0)
            return v * 2

        tasks = [Task(1, holder), Task(2, waiter)]
        m.submit(tasks)
        stats = m.run()
        assert tasks[0].result == 7
        assert tasks[1].result == 14
        assert stats.tasks_retried == 0
