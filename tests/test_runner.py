"""Tests for the parallel sweep runner and its on-disk result cache.

The two properties the rest of the repo leans on:

- **determinism**: a sweep's rows are byte-identical whether it runs
  serially, across pool workers, or out of the cache — every simulation
  is seeded and self-contained, so placement cannot matter;
- **memoisation**: a warm-cache re-run performs zero simulations (the
  runner's cache-hit counter proves it) and returns the same rows.
"""

from __future__ import annotations

import json

import pytest

from repro.config import TABLE2
from repro.errors import ConfigError
from repro.harness.experiments import fig6_speedup, gc_overhead
from repro.harness.presets import Scale
from repro.harness.runner import (
    ResultCache,
    RunResult,
    RunSpec,
    StatsView,
    SweepRunner,
    code_version,
    make_spec,
)
from repro.harness.sweeps import execute, irregular_spec
from repro.workloads.opgen import READ_INTENSIVE, WRITE_INTENSIVE

#: Tiny scale so runner tests stay fast (mirrors tests/test_harness.py).
TINY = Scale(
    name="tiny",
    small_elements=20,
    large_elements=40,
    n_ops=24,
    sens_ops=16,
    matmul_small=4,
    matmul_large=6,
    lev_small=6,
    lev_large=10,
    fig8_elements=40,
    fig8_ops=24,
    core_counts=(2, 4),
    max_cores=4,
    l1_sizes_kib=(8, 32),
    latencies=(2, 10),
    gc_ops=40,
)

#: The quick preset's Figure 6 shape at tiny sizes: a genuine slice of
#: the figure's sweep (benchmark x size x mix x variant).
def _fig6_slice(scale: Scale) -> list[RunSpec]:
    specs = []
    for bench in ("linked_list", "hash_table"):
        for size in ("small", "large"):
            for mix in (READ_INTENSIVE, WRITE_INTENSIVE):
                specs.append(irregular_spec(
                    bench, TABLE2, scale, size, mix.name, "unversioned"))
                specs.append(irregular_spec(
                    bench, TABLE2, scale, size, mix.name, "versioned",
                    scale.max_cores))
    return specs


def _dumps(results: list[RunResult]) -> str:
    return json.dumps([r.to_json() for r in results])


class TestSpecs:
    def test_make_spec_canonicalises_param_order(self):
        assert make_spec("f", a=1, b=2) == make_spec("f", b=2, a=1)
        assert hash(make_spec("f", a=1, b=2)) == hash(make_spec("f", b=2, a=1))

    def test_specs_with_config_are_hashable_and_stable(self):
        a = irregular_spec("linked_list", TABLE2, TINY, "small",
                           READ_INTENSIVE.name, "versioned", 4)
        b = irregular_spec("linked_list", TABLE2, TINY, "small",
                           READ_INTENSIVE.name, "versioned", 4)
        assert a == b and hash(a) == hash(b) and repr(a) == repr(b)

    def test_unknown_sweep_function_rejected(self):
        with pytest.raises(ConfigError, match="unknown sweep function"):
            execute(make_spec("nope"))


class TestStatsView:
    def test_attribute_access_and_roundtrip(self):
        spec = _fig6_slice(TINY)[0]
        result = execute(spec)
        assert result.stats.tasks_finished > 0
        assert 0.0 <= result.stats.l1_hit_rate <= 1.0
        back = RunResult.from_json(json.loads(json.dumps(result.to_json())))
        assert back.cycles == result.cycles
        assert back.stats == result.stats


class TestDeterminism:
    def test_parallel_rows_byte_identical_to_serial(self):
        """Figure 6 slice: 2 pool workers vs in-process, same bytes."""
        specs = _fig6_slice(TINY)
        serial = SweepRunner(jobs=1, use_cache=False).run(specs)
        parallel = SweepRunner(jobs=2, use_cache=False).run(specs)
        assert _dumps(serial) == _dumps(parallel)

    def test_fig6_experiment_identical_across_runners(self):
        a = fig6_speedup(TINY, runner=SweepRunner(jobs=1, use_cache=False))
        b = fig6_speedup(TINY, runner=SweepRunner(jobs=2, use_cache=False))
        assert a["rows"] == b["rows"]
        assert a["text"] == b["text"]


class TestCache:
    def test_cache_hit_returns_same_rows_without_simulating(self, tmp_path):
        specs = _fig6_slice(TINY)[:4]
        cold = SweepRunner(jobs=1, cache_dir=tmp_path, use_cache=True)
        cold_rows = cold.run(specs)
        assert cold.stats.simulated == len(specs)
        assert cold.stats.cache_hits == 0

        warm = SweepRunner(jobs=1, cache_dir=tmp_path, use_cache=True)
        warm_rows = warm.run(specs)
        assert warm.stats.simulated == 0
        assert warm.stats.cache_hits == len(specs)
        assert _dumps(cold_rows) == _dumps(warm_rows)

    def test_warm_figure_rerun_executes_zero_simulations(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=tmp_path, use_cache=True)
        first = gc_overhead(TINY, runner=runner)
        assert runner.stats.simulated == 3

        before = runner.stats.snapshot()
        second = gc_overhead(TINY, runner=runner)
        delta = runner.stats.since(before)
        assert delta.simulated == 0
        assert delta.cache_hits == 3
        assert first["rows"] == second["rows"]

    def test_corrupted_cache_file_is_a_miss(self, tmp_path):
        spec = _fig6_slice(TINY)[0]
        cache = ResultCache(tmp_path)
        assert cache.load(spec) is None
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text("not json{")
        assert cache.load(spec) is None

    def test_cache_keyed_by_code_version(self, tmp_path):
        spec = _fig6_slice(TINY)[0]
        result = execute(spec)
        old = ResultCache(tmp_path, version="aaaa")
        old.store(spec, result)
        assert old.load(spec) is not None
        assert ResultCache(tmp_path, version="bbbb").load(spec) is None
        assert code_version() == code_version()  # memoised, stable

    def test_spec_digest_depends_on_fused_flag(self, tmp_path):
        # Rows produced by the two execution tiers must never alias:
        # ``config.fused`` is part of the spec repr and hence the digest.
        base = irregular_spec("linked_list", TABLE2, TINY, "small", "4R-1W", "versioned", 1)
        hatch = irregular_spec(
            "linked_list",
            TABLE2.with_fused(False),
            TINY,
            "small",
            "4R-1W",
            "versioned",
            1,
        )
        assert repr(base) != repr(hatch)
        cache = ResultCache(tmp_path)
        assert cache.path_for(base) != cache.path_for(hatch)

    def test_cache_namespace_depends_on_fused_env_hatch(self, tmp_path, monkeypatch):
        plain = SweepRunner(cache_dir=tmp_path / "a", jobs=1)
        assert plain.cache.version == code_version()
        monkeypatch.setenv("REPRO_FUSED", "0")
        hatch = SweepRunner(cache_dir=tmp_path / "b", jobs=1)
        assert hatch.cache.version == f"{code_version()}-nofuse"
        # Composes with the checkpoint-cadence namespace.
        both = SweepRunner(
            cache_dir=tmp_path / "c", jobs=1, checkpoint_every=16
        )
        assert both.cache.version == f"{code_version()}-ckpt16-nofuse"

    def test_duplicate_specs_simulated_once(self):
        spec = _fig6_slice(TINY)[0]
        runner = SweepRunner(jobs=1, use_cache=False)
        results = runner.run([spec, spec, spec])
        assert runner.stats.simulated == 1
        assert runner.stats.deduped == 2
        assert results[0] is results[1] is results[2]


class TestEnvironment:
    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert SweepRunner(use_cache=False).jobs == 3

    def test_invalid_jobs_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ConfigError):
            SweepRunner(use_cache=False)
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigError):
            SweepRunner(use_cache=False)
        with pytest.raises(ConfigError):
            SweepRunner(jobs=0, use_cache=False)

    def test_cache_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert SweepRunner(jobs=1).cache is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", "unused-but-harmless")
        assert SweepRunner(jobs=1).cache is not None
