"""Tests for the execution tracer."""

from __future__ import annotations

from repro import Machine, MachineConfig, Task, Versioned
from repro.ostruct import isa
from repro.sim.trace import TraceEvent, Tracer


def simple_machine():
    m = Machine(MachineConfig(num_cores=2))
    cell = Versioned(m.heap.alloc_versioned(1))
    conv = m.heap.alloc(64)
    return m, cell, conv


def test_records_ops_in_order():
    m, cell, conv = simple_machine()
    tracer = Tracer(m)

    def prog(tid):
        yield isa.store(conv, 1)
        yield cell.store_ver(0, 2)
        yield cell.load_ver(0)

    m.submit([Task(0, prog)])
    m.run()
    ops = [e.op for e in tracer.events()]
    assert ops == ["store", "store_version", "load_version"]
    cycles = [e.cycle for e in tracer.events()]
    assert cycles == sorted(cycles)


def test_only_versioned_filter():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, only_versioned=True)

    def prog(tid):
        yield isa.store(conv, 1)
        yield isa.compute(10)
        yield cell.store_ver(0, 2)

    m.submit([Task(0, prog)])
    m.run()
    assert [e.op for e in tracer.events()] == ["store_version"]


def test_core_filter():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, cores={1})

    def prog(tid):
        yield isa.compute(5)

    m.submit([Task(0, prog), Task(1, prog)])  # round-robin: cores 0 and 1
    m.run()
    assert all(e.core == 1 for e in tracer.events())
    assert len(tracer) == 1


def test_addr_range_filter():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, addr_range=(cell.addr, cell.addr + 4))

    def prog(tid):
        yield isa.store(conv, 1)
        yield cell.store_ver(0, 2)

    m.submit([Task(0, prog)])
    m.run()
    assert [e.op for e in tracer.events()] == ["store_version"]


def test_stall_events_marked():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, only_versioned=True)

    def producer(tid):
        yield isa.compute(3000)
        yield cell.store_ver(0, 7)

    def consumer(tid):
        yield cell.load_ver(0)

    m.submit([Task(0, producer), Task(1, consumer)])
    m.run()
    stalled = [e for e in tracer.events() if e.stalled]
    assert stalled and stalled[0].op == "load_version"
    # The eventual success is recorded too.
    ok = [e for e in tracer.events() if e.op == "load_version" and not e.stalled]
    assert ok


def test_ring_buffer_drops_oldest():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, capacity=4)

    def prog(tid):
        for i in range(10):
            yield isa.compute(1)

    m.submit([Task(0, prog)])
    m.run()
    assert len(tracer) == 4
    assert tracer.dropped == 6
    assert tracer.recorded == 10


def test_for_address_and_for_task():
    m, cell, conv = simple_machine()
    tracer = Tracer(m)

    def prog(tid):
        yield cell.store_ver(tid, tid)

    m.submit([Task(0, prog), Task(1, prog)])
    m.run()
    history = tracer.for_address(cell.addr)
    assert len(history) == 2
    assert len(tracer.for_task(1)) >= 1


def test_summary():
    m, cell, conv = simple_machine()
    tracer = Tracer(m)

    def prog(tid):
        yield isa.compute(4)
        yield isa.store(conv, 1)

    m.submit([Task(0, prog)])
    m.run()
    s = tracer.summary()
    assert s["recorded"] == 2
    assert s["op_counts"] == {"compute": 1, "store": 1}
    assert s["buffered_latency_total"] > 0


def test_detach_stops_recording():
    m, cell, conv = simple_machine()
    tracer = Tracer(m)
    tracer.detach()

    def prog(tid):
        yield isa.compute(4)

    m.submit([Task(0, prog)])
    m.run()
    assert len(tracer) == 0


def test_event_str_is_readable():
    ev = TraceEvent(cycle=12, core=1, task=3, op="load_version",
                    addr=0x4000_0000, detail=(0x4000_0000, 2), latency=4,
                    stalled=False)
    text = str(ev)
    assert "c1" in text and "t3" in text and "load_version" in text
    assert "0x40000000" in text


def test_accounting_invariant_holds_under_eviction_and_filters():
    # recorded == buffered + dropped at all times; filtered events
    # appear in no counter.
    m, cell, conv = simple_machine()
    tracer = Tracer(m, capacity=3, only_versioned=True)

    def prog(tid):
        for i in range(5):
            yield isa.compute(1)        # filtered: counts nowhere
            yield cell.store_ver(i, i)  # recorded: 5 total, ring of 3

    m.submit([Task(0, prog)])
    m.run()
    s = tracer.summary()
    assert s["recorded"] == 5
    assert s["buffered"] == 3
    assert s["dropped"] == 2
    assert s["recorded"] == s["buffered"] + s["dropped"]
    assert len(tracer) == s["buffered"]
