"""Tests for the execution tracer."""

from __future__ import annotations

from repro import Machine, MachineConfig, Task, Versioned
from repro.ostruct import isa
from repro.sim.trace import TraceEvent, Tracer


def simple_machine():
    m = Machine(MachineConfig(num_cores=2))
    cell = Versioned(m.heap.alloc_versioned(1))
    conv = m.heap.alloc(64)
    return m, cell, conv


def test_records_ops_in_order():
    m, cell, conv = simple_machine()
    tracer = Tracer(m)

    def prog(tid):
        yield isa.store(conv, 1)
        yield cell.store_ver(0, 2)
        yield cell.load_ver(0)

    m.submit([Task(0, prog)])
    m.run()
    ops = [e.op for e in tracer.events()]
    assert ops == ["store", "store_version", "load_version"]
    cycles = [e.cycle for e in tracer.events()]
    assert cycles == sorted(cycles)


def test_only_versioned_filter():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, only_versioned=True)

    def prog(tid):
        yield isa.store(conv, 1)
        yield isa.compute(10)
        yield cell.store_ver(0, 2)

    m.submit([Task(0, prog)])
    m.run()
    assert [e.op for e in tracer.events()] == ["store_version"]


def test_core_filter():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, cores={1})

    def prog(tid):
        yield isa.compute(5)

    m.submit([Task(0, prog), Task(1, prog)])  # round-robin: cores 0 and 1
    m.run()
    assert all(e.core == 1 for e in tracer.events())
    assert len(tracer) == 1


def test_addr_range_filter():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, addr_range=(cell.addr, cell.addr + 4))

    def prog(tid):
        yield isa.store(conv, 1)
        yield cell.store_ver(0, 2)

    m.submit([Task(0, prog)])
    m.run()
    assert [e.op for e in tracer.events()] == ["store_version"]


def test_stall_events_marked():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, only_versioned=True)

    def producer(tid):
        yield isa.compute(3000)
        yield cell.store_ver(0, 7)

    def consumer(tid):
        yield cell.load_ver(0)

    m.submit([Task(0, producer), Task(1, consumer)])
    m.run()
    stalled = [e for e in tracer.events() if e.stalled]
    assert stalled and stalled[0].op == "load_version"
    # The eventual success is recorded too.
    ok = [e for e in tracer.events() if e.op == "load_version" and not e.stalled]
    assert ok


def test_ring_buffer_drops_oldest():
    m, cell, conv = simple_machine()
    tracer = Tracer(m, capacity=4)

    def prog(tid):
        for i in range(10):
            yield isa.compute(1)

    m.submit([Task(0, prog)])
    m.run()
    assert len(tracer) == 4
    assert tracer.dropped == 6
    assert tracer.recorded == 10


def test_for_address_and_for_task():
    m, cell, conv = simple_machine()
    tracer = Tracer(m)

    def prog(tid):
        yield cell.store_ver(tid, tid)

    m.submit([Task(0, prog), Task(1, prog)])
    m.run()
    history = tracer.for_address(cell.addr)
    assert len(history) == 2
    assert len(tracer.for_task(1)) >= 1


def test_summary():
    m, cell, conv = simple_machine()
    tracer = Tracer(m)

    def prog(tid):
        yield isa.compute(4)
        yield isa.store(conv, 1)

    m.submit([Task(0, prog)])
    m.run()
    s = tracer.summary()
    assert s["recorded"] == 2
    assert s["op_counts"] == {"compute": 1, "store": 1}
    assert s["buffered_latency_total"] > 0


def test_detach_stops_recording():
    m, cell, conv = simple_machine()
    tracer = Tracer(m)
    tracer.detach()

    def prog(tid):
        yield isa.compute(4)

    m.submit([Task(0, prog)])
    m.run()
    assert len(tracer) == 0


def test_event_str_is_readable():
    ev = TraceEvent(cycle=12, core=1, task=3, op="load_version",
                    addr=0x4000_0000, detail=(0x4000_0000, 2), latency=4,
                    stalled=False)
    text = str(ev)
    assert "c1" in text and "t3" in text and "load_version" in text
    assert "0x40000000" in text


def test_accounting_invariant_holds_under_eviction_and_filters():
    # recorded == buffered + dropped at all times; filtered events
    # appear in no counter.
    m, cell, conv = simple_machine()
    tracer = Tracer(m, capacity=3, only_versioned=True)

    def prog(tid):
        for i in range(5):
            yield isa.compute(1)        # filtered: counts nowhere
            yield cell.store_ver(i, i)  # recorded: 5 total, ring of 3

    m.submit([Task(0, prog)])
    m.run()
    s = tracer.summary()
    assert s["recorded"] == 5
    assert s["buffered"] == 3
    assert s["dropped"] == 2
    assert s["recorded"] == s["buffered"] + s["dropped"]
    assert len(tracer) == s["buffered"]


# ---------------------------------------------------------------------------
# Trace-hook chaining (multiple consumers on one machine).
# ---------------------------------------------------------------------------


class TestHookChaining:
    def test_two_tracers_both_record(self):
        m, cell, conv = simple_machine()
        first = Tracer(m)
        second = Tracer(m, only_versioned=True)

        def prog(tid):
            yield isa.store(conv, 1)
            yield cell.store_ver(0, 2)

        m.submit([Task(0, prog)])
        m.run()
        assert [e.op for e in first.events()] == ["store", "store_version"]
        assert [e.op for e in second.events()] == ["store_version"]

    def test_detach_in_either_order_leaves_machine_clean(self):
        for order in ((0, 1), (1, 0)):
            m, cell, conv = simple_machine()
            tracers = [Tracer(m), Tracer(m)]
            tracers[order[0]].detach()
            # The survivor is the sole hook again (no dispatcher shell).
            survivor = tracers[order[1]]
            assert m.trace_hook is survivor._hook
            survivor.detach()
            assert m.trace_hook is None

    def test_survivor_still_records_after_peer_detach(self):
        m, cell, conv = simple_machine()
        first = Tracer(m)
        second = Tracer(m)
        first.detach()

        def prog(tid):
            yield isa.compute(2)

        m.submit([Task(0, prog)])
        m.run()
        assert len(first) == 0
        assert len(second) == 1

    def test_double_attach_raises(self):
        import pytest

        from repro.errors import SimulationError

        m, cell, conv = simple_machine()
        tracer = Tracer(m)
        with pytest.raises(SimulationError):
            m.add_trace_hook(tracer._hook)
        # The failed attach did not corrupt the chain.
        assert m.trace_hook is tracer._hook

    def test_legacy_direct_assignment_is_absorbed(self):
        m, cell, conv = simple_machine()
        seen = []

        def legacy(core, task, op_tuple, latency, stalled):
            seen.append(op_tuple[0])

        m.trace_hook = legacy  # old API: direct assignment
        tracer = Tracer(m)  # must chain, not displace

        def prog(tid):
            yield isa.compute(2)

        m.submit([Task(0, prog)])
        m.run()
        assert seen == ["compute"]
        assert len(tracer) == 1
        assert m.remove_trace_hook(legacy)
        tracer.detach()
        assert m.trace_hook is None

    def test_remove_directly_assigned_hook_without_chain(self):
        m, cell, conv = simple_machine()

        def legacy(core, task, op_tuple, latency, stalled):
            pass

        m.trace_hook = legacy
        assert m.remove_trace_hook(legacy)
        assert m.trace_hook is None
        assert not m.remove_trace_hook(legacy)  # already gone


# ---------------------------------------------------------------------------
# Property: recorded == buffered + dropped, always.
# ---------------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    capacity=st.integers(min_value=1, max_value=8),
    only_versioned=st.booleans(),
    cores=st.sampled_from([None, {0}, {1}, {0, 1}]),
    use_addr_range=st.booleans(),
    n_ops=st.integers(min_value=0, max_value=12),
    detach_after=st.integers(min_value=0, max_value=14),
)
@settings(max_examples=60, deadline=None)
def test_accounting_invariant_property(
    capacity, only_versioned, cores, use_addr_range, n_ops, detach_after
):
    """recorded == buffered + dropped under every filter combination,
    eviction pressure, and a mid-run detach()."""
    m, cell, conv = simple_machine()
    addr_range = (cell.addr, cell.addr + 4) if use_addr_range else None
    tracer = Tracer(
        m, capacity=capacity, only_versioned=only_versioned,
        cores=cores, addr_range=addr_range,
    )
    fired = 0

    def checking_hook(core, task, op_tuple, latency, stalled):
        nonlocal fired
        fired += 1
        # Invariant holds after every single event, not just at the end.
        assert tracer.recorded == len(tracer) + tracer.dropped
        if fired == detach_after:
            tracer.detach()

    m.add_trace_hook(checking_hook)

    def prog(tid):
        for i in range(n_ops):
            which = i % 3
            if which == 0:
                yield isa.compute(1)
            elif which == 1:
                yield isa.store(conv, i)
            else:
                yield cell.store_ver(tid * 100 + i, i)

    tasks = [Task(0, prog), Task(1, prog)]
    m.submit(tasks)
    if n_ops:
        m.run()
    s = tracer.summary()
    assert s["recorded"] == s["buffered"] + s["dropped"]
    assert s["buffered"] == len(tracer)
    assert s["buffered"] <= capacity
    if cores is not None:
        assert all(e.core in cores for e in tracer.events())
    if only_versioned:
        assert all(e.op in isa.VERSIONED_OPS for e in tracer.events())
    if addr_range is not None:
        assert all(
            e.addr is not None and addr_range[0] <= e.addr < addr_range[1]
            for e in tracer.events()
        )
