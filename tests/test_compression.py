"""Tests for compressed version-block lines, incl. bit-exact round trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.ostruct.compression import (
    ENTRIES_PER_LINE,
    LINE_BITS,
    MAX_OFFSET,
    RANGE,
    CompressedLine,
)


def test_layout_fits_one_cache_line():
    # 18 + 4 + 8*60 = 502 bits <= 512 (the paper's packing argument).
    assert LINE_BITS == 502
    assert LINE_BITS <= 512


def test_put_and_get():
    line = CompressedLine()
    assert line.put(5, 0xAB, None)
    assert line.get(5) == (0xAB, None)
    assert line.get(6) is None
    assert 5 in line and 6 not in line


def test_capacity_is_eight_with_lru_eviction():
    line = CompressedLine()
    for v in range(ENTRIES_PER_LINE):
        line.put(v, v, None)
    line.get(0)  # refresh 0
    line.put(100, 100, None)  # evicts LRU = 1
    assert len(line) == ENTRIES_PER_LINE
    assert 0 in line and 1 not in line and 100 in line


def test_version_window_restriction_evicts_far_entries():
    line = CompressedLine()
    line.put(0, 1, None)
    line.put(RANGE + 5, 2, None)  # cannot share a window with version 0
    assert RANGE + 5 in line
    assert 0 not in line


def test_close_versions_share_window():
    # Offsets are relative to the quantized window start (base << 14).
    line = CompressedLine()
    line.put(RANGE, 1, None)
    line.put(RANGE + MAX_OFFSET, 2, None)
    assert RANGE in line and RANGE + MAX_OFFSET in line


def test_versions_straddling_window_boundary_cannot_share():
    # Span fits 14 bits but crosses a base boundary: quantized base of the
    # lower value cannot reach the higher one.
    line = CompressedLine()
    line.put(RANGE - 1, 1, None)
    line.put(RANGE + 1, 2, None)
    assert RANGE + 1 in line
    assert RANGE - 1 not in line


def test_lock_offset_in_window():
    line = CompressedLine()
    assert line.put(50, 7, 52)  # locker close to version: fine
    assert line.get(50) == (7, 52)


def test_far_locker_rejected():
    line = CompressedLine()
    # Locker so far from the version no single window covers both.
    assert line.put(0, 7, MAX_OFFSET + 10) is False
    assert 0 not in line


def test_update_existing_entry_lock_state():
    line = CompressedLine()
    line.put(10, 3, None)
    line.put(10, 3, 12)
    assert line.get(10) == (3, 12)
    assert len(line) == 1


def test_drop():
    line = CompressedLine()
    line.put(1, 1, None)
    line.put(2, 2, None)
    line.drop(1)
    assert 1 not in line and 2 in line
    line.drop(99)  # absent drop is a no-op


def test_base_tracks_lowest_version():
    line = CompressedLine()
    line.put(RANGE * 3 + 7, 0, None)
    assert line.base == 3
    assert line.window_start == RANGE * 3


class TestEncodeDecode:
    def test_round_trip_simple(self):
        line = CompressedLine(line_offset=5)
        line.put(100, 0xDEAD, None)
        line.put(101, 0xBEEF, 102)
        decoded = CompressedLine.decode(line.encode())
        assert decoded.line_offset == 5
        assert decoded.get(100) == (0xDEAD, None)
        assert decoded.get(101) == (0xBEEF, 102)

    def test_encoded_word_fits_512_bits(self):
        line = CompressedLine()
        for v in range(8):
            line.put(1000 + v, (1 << 32) - 1 - v, 1000 + v + 8)
        word = line.encode()
        assert word < (1 << 512)

    def test_empty_line_round_trip(self):
        decoded = CompressedLine.decode(CompressedLine().encode())
        assert len(decoded) == 0

    def test_non_int_value_rejected_by_encode(self):
        line = CompressedLine()
        line.put(1, "pointer", None)  # behavioural model accepts any value
        with pytest.raises(SimulationError):
            line.encode()

    def test_oversized_value_rejected_by_encode(self):
        line = CompressedLine()
        line.put(1, 1 << 32, None)
        with pytest.raises(SimulationError):
            line.encode()

    def test_bad_line_offset_rejected(self):
        with pytest.raises(SimulationError):
            CompressedLine(line_offset=16)


@given(
    base=st.integers(min_value=0, max_value=(1 << 18) - 2),
    offsets=st.lists(
        st.integers(min_value=0, max_value=MAX_OFFSET - 1),
        unique=True, min_size=1, max_size=8,
    ),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_property_encode_decode_round_trip(base, offsets, data):
    """Any valid entry set survives a bit-exact encode/decode round trip."""
    line = CompressedLine()
    lo = base << 14
    expected = {}
    for off in offsets:
        version = lo + off
        value = data.draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
        lock_off = data.draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=MAX_OFFSET - 1))
        )
        locked_by = None if lock_off is None else lo + lock_off
        assert line.put(version, value, locked_by)
        expected[version] = (value, locked_by)
    decoded = CompressedLine.decode(line.encode())
    for version, entry in expected.items():
        assert decoded.get(version) == entry


@given(
    st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=64)
)
@settings(max_examples=150, deadline=None)
def test_property_window_invariant_always_holds(versions):
    """After any put sequence, all residents fit one 2^14 window."""
    line = CompressedLine()
    for v in versions:
        line.put(v, v & 0xFFFF, None)
        resident = line.versions()
        assert len(resident) <= ENTRIES_PER_LINE
        if resident:
            window_start = (min(resident) >> 14) << 14
            assert max(resident) - window_start <= MAX_OFFSET
