"""Tests for the I-structure / M-structure layer (Table I, Section II-B)."""

from __future__ import annotations

import pytest

from repro import DeadlockError, Machine, MachineConfig, Task, VersionExistsError
from repro.ostruct import isa
from repro.runtime.istructures import (
    IStructure,
    MStructure,
    new_istructure,
    new_mstructure,
)


class TestIStructure:
    def test_write_then_read(self, uni_machine):
        cell = new_istructure(uni_machine)

        def prog(tid):
            yield cell.write("payload")
            return (yield cell.read())

        task = uni_machine.submit_main(prog)
        uni_machine.run()
        assert task.result == "payload"

    def test_read_blocks_until_write(self):
        m = Machine(MachineConfig(num_cores=2))
        cell = new_istructure(m)

        def writer(tid):
            yield isa.compute(3000)
            yield cell.write(7)

        def reader(tid):
            return (yield cell.read())

        tasks = [Task(0, writer), Task(1, reader)]
        m.submit(tasks)
        stats = m.run()
        assert tasks[1].result == 7
        assert stats.versioned_stalls >= 1

    def test_double_write_faults(self, uni_machine):
        cell = new_istructure(uni_machine)

        def prog(tid):
            yield cell.write(1)
            yield cell.write(2)

        uni_machine.submit_main(prog)
        with pytest.raises(VersionExistsError):
            uni_machine.run()

    def test_read_without_writer_deadlocks(self, uni_machine):
        cell = new_istructure(uni_machine)

        def prog(tid):
            yield cell.read()

        uni_machine.submit_main(prog)
        with pytest.raises(DeadlockError):
            uni_machine.run()

    def test_many_concurrent_readers(self):
        m = Machine(MachineConfig(num_cores=4))
        cell = new_istructure(m)

        def writer(tid):
            yield isa.compute(2000)
            yield cell.write(99)

        def reader(tid):
            return (yield cell.read())

        tasks = [Task(0, writer)] + [Task(i, reader) for i in range(1, 8)]
        m.submit(tasks)
        m.run()
        assert all(t.result == 99 for t in tasks[1:])


class TestMStructure:
    def test_take_put_single_task(self, uni_machine):
        cell = new_mstructure(uni_machine, initial=10)

        def prog(tid):
            version, value = yield from cell.take(tid)
            yield from cell.put(tid, version, value + 1)
            return (yield from cell.read(tid))

        task = uni_machine.submit_main(prog, task_id=1)
        uni_machine.run()
        assert task.result == 11

    def test_concurrent_takers_serialize(self):
        # Four tasks each increment the cell once; every increment lands
        # (takes serialize on the lock, M-structure style).
        m = Machine(MachineConfig(num_cores=4))
        cell = new_mstructure(m, initial=0)

        def bump(tid):
            version, value = yield from cell.take(tid)
            yield isa.compute(500)
            yield from cell.put(tid, version, value + 1)

        tasks = [Task(t, bump) for t in range(1, 5)]
        m.submit(tasks)
        m.run()
        # The latest version holds the full count iff no increment raced.
        lst = m.manager.lists[cell.addr]
        final = lst.find_latest(1 << 30)[0].value
        assert final >= 1  # racy by design (classic M-structure semantics)
        locked = [b for b in lst if b.locked]
        assert not locked  # everything released

    def test_sequential_takers_chain_fully(self):
        # On one core tasks run in order: the count is exact.
        m = Machine(MachineConfig(num_cores=1))
        cell = new_mstructure(m, initial=0)

        def bump(tid):
            version, value = yield from cell.take(tid)
            yield from cell.put(tid, version, value + 1)

        tasks = [Task(t, bump) for t in range(1, 6)]
        m.submit(tasks)
        m.run()
        final = m.manager.lists[cell.addr].find_latest(1 << 30)[0].value
        assert final == 5

    def test_take_blocks_while_held(self):
        m = Machine(MachineConfig(num_cores=2))
        cell = new_mstructure(m, initial=5)
        spans = {}

        def holder(tid):
            version, value = yield from cell.take(tid)
            spans["holder"] = m.sim.now
            yield isa.compute(4000)
            yield from cell.put(tid, version, value)

        def taker(tid):
            yield isa.compute(500)  # arrive while held
            version, value = yield from cell.take(tid)
            spans["taker"] = m.sim.now
            yield from cell.put(tid, version, value)

        m.submit([Task(1, holder), Task(2, taker)])
        stats = m.run()
        assert spans["taker"] > spans["holder"] + 1500
        assert stats.versioned_stalls >= 1

    def test_read_is_non_destructive(self, uni_machine):
        cell = new_mstructure(uni_machine, initial="x")

        def prog(tid):
            a = yield from cell.read(tid)
            b = yield from cell.read(tid)
            return (a, b)

        task = uni_machine.submit_main(prog, task_id=1)
        uni_machine.run()
        assert task.result == ("x", "x")

    def test_handles_are_thin(self):
        assert IStructure(0x4000).addr == 0x4000
        assert MStructure(0x4000).addr == 0x4000
