"""Tests for the ``python -m repro trace`` CLI (repro.obs.cli)."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as repro_main
from repro.errors import ConfigError
from repro.obs.cli import _parse_fault, build_parser, main as trace_main
from repro.sim.machine import _machine_observers


def test_acceptance_command(tmp_path, capsys):
    """The issue's acceptance command, at quick scale."""
    trace = tmp_path / "out.json"
    metrics = tmp_path / "m.json"
    rc = repro_main([
        "trace", "binary_tree",
        "--perfetto", str(trace), "--metrics", str(metrics),
    ])
    assert rc == 0
    assert _machine_observers == []  # observer removed after the run

    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    phases = {ev["ph"] for ev in events}
    assert {"X", "M"} <= phases
    cats = {ev.get("cat") for ev in events}
    assert "task" in cats and "gc" in cats and "op" in cats
    # The recovery track exists even when no recovery fired.
    names = {
        ev["args"]["name"] for ev in events
        if ev["ph"] == "M" and ev["name"] == "thread_name"
    }
    assert "watchdog" in names and "gc" in names

    snap = json.loads(metrics.read_text())
    assert snap["histograms"]["walk_length"]["count"] > 0
    assert snap["histograms"]["gc_lag"]["count"] > 0

    out = capsys.readouterr().out
    assert "critical path" in out
    assert "walk_length" in out


def test_regular_workload_and_stdout_only(capsys):
    rc = trace_main(["matmul", "--cores", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "matmul @ 4 cores" in out
    assert "task_spans=" in out


def test_recovery_track_populated_by_fault_run(tmp_path):
    trace = tmp_path / "fault.json"
    rc = trace_main([
        "linked_list", "--cores", "4", "--ops", "60", "--mix", "1R-1W",
        "--watchdog", "2000", "--fault", "drop-wake:1:2",
        "--perfetto", str(trace),
    ])
    assert rc == 0
    doc = json.loads(trace.read_text())
    recoveries = [
        ev for ev in doc["traceEvents"] if ev.get("cat") == "recovery"
    ]
    assert recoveries, "watchdog recovery instants missing from the trace"
    assert any("kick" in ev["name"] for ev in recoveries)


def test_parse_fault():
    spec = _parse_fault("drop-wake:3:2:40:2")
    assert (spec.kind, spec.at, spec.span, spec.value, spec.arg) == (
        "drop-wake", 3, 2, 40, 2
    )
    assert _parse_fault("pause-gc").at == 1
    with pytest.raises(ConfigError):
        _parse_fault("drop-wake:x")
    with pytest.raises(ConfigError):
        _parse_fault("drop-wake:1:2:3:4:5")
    with pytest.raises(ConfigError):
        _parse_fault("no-such-kind:1")


def test_unknown_workload_rejected(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["no_such_workload"])
