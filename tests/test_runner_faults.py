"""Tests for the crash-tolerant sweep runner (harness-tier faults).

These use the registered ``chaos`` sweep target
(:mod:`repro.faults.harness`), whose workers really die: ``crash`` is a
raw ``os._exit`` inside the pool worker, ``hang`` sleeps past the
configured timeout, ``error`` raises deterministically.  Faults fire
once per (key, mode) via marker files, so a retry of the same spec
succeeds — which is exactly the contract the runner must deliver.
"""

from __future__ import annotations

import pytest

from repro.errors import SweepFailure
from repro.harness.runner import ResultCache, RunSpec, SweepRunner, make_spec


def chaos_spec(key: str, mode: str = "ok", marker_dir: str = "", **kw) -> RunSpec:
    return make_spec("chaos", key=key, mode=mode, marker_dir=marker_dir, **kw)


def make_runner(tmp_path, **kw) -> SweepRunner:
    kw.setdefault("jobs", 2)
    kw.setdefault("retry_backoff", 0.01)
    return SweepRunner(cache_dir=tmp_path / "cache", **kw)


class TestCrashRecovery:
    def test_crashed_worker_is_retried(self, tmp_path):
        runner = make_runner(tmp_path, timeout=30.0)
        specs = [
            chaos_spec("a"),
            chaos_spec("boom", mode="crash", marker_dir=str(tmp_path)),
            chaos_spec("b"),
        ]
        results = runner.run(specs)
        assert len(results) == 3
        assert [r.stats.key for r in results] == ["a", "boom", "b"]
        assert runner.stats.crashes >= 1
        assert runner.stats.retried >= 1
        assert (tmp_path / "chaos-boom-crash.fired").exists()

    def test_hung_worker_killed_and_retried(self, tmp_path):
        runner = make_runner(tmp_path, timeout=1.0)
        specs = [
            chaos_spec(
                "wedge", mode="hang", marker_dir=str(tmp_path), sleep=60.0
            ),
            chaos_spec("c"),
        ]
        results = runner.run(specs)
        assert [r.stats.key for r in results] == ["wedge", "c"]
        assert runner.stats.timeouts >= 1
        assert runner.stats.retried >= 1

    def test_retries_exhausted_raises_sweep_failure(self, tmp_path):
        # retries=0 and a crash that fires every attempt (fresh marker
        # dir per attempt is impossible, so use mode that keeps failing:
        # delete the marker between attempts isn't possible mid-run —
        # instead retries=0 means the single crash already exceeds it).
        runner = make_runner(tmp_path, timeout=30.0, retries=0)
        specs = [
            chaos_spec("ok1"),
            chaos_spec("dead", mode="crash", marker_dir=str(tmp_path)),
        ]
        with pytest.raises(SweepFailure) as exc_info:
            runner.run(specs)
        assert "worker process died" in str(exc_info.value)

    def test_deterministic_error_reraises_without_retry(self, tmp_path):
        from repro.errors import ReproError

        runner = make_runner(tmp_path, timeout=30.0)
        specs = [
            chaos_spec("fine"),
            chaos_spec("bad", mode="error", marker_dir=str(tmp_path)),
        ]
        with pytest.raises(ReproError, match="injected deterministic"):
            runner.run(specs)
        assert runner.stats.retried == 0

    def test_describe_mentions_recovery_counters(self, tmp_path):
        runner = make_runner(tmp_path, timeout=30.0)
        runner.run([chaos_spec("x", mode="crash", marker_dir=str(tmp_path))])
        text = runner.stats.describe()
        assert "retried" in text and "crash" in text
        fresh = SweepRunner(jobs=1, use_cache=False)
        assert "retried" not in fresh.stats.describe()


class TestResumableSweeps:
    def test_completed_rows_survive_a_failed_sweep(self, tmp_path):
        runner = make_runner(tmp_path, timeout=30.0, retries=0, jobs=1)
        ok = chaos_spec("keep-me")
        dead = chaos_spec("die", mode="crash", marker_dir=str(tmp_path))
        with pytest.raises(SweepFailure):
            runner.run([ok, dead])
        # The completed row was persisted before the failure.
        cache = ResultCache(tmp_path / "cache")
        assert cache.load(ok) is not None
        assert cache.load(dead) is None

    def test_resume_reuses_survivors_and_matches_clean_run(self, tmp_path):
        specs = [chaos_spec(f"row-{i}") for i in range(4)]

        clean = make_runner(tmp_path / "clean-dir", use_cache=False)
        reference = [r.to_json() for r in clean.run(specs)]

        # First attempt dies after persisting at least one row.
        first = make_runner(tmp_path, timeout=30.0, retries=0, jobs=1)
        dead = chaos_spec("die", mode="crash", marker_dir=str(tmp_path))
        with pytest.raises(SweepFailure):
            first.run(specs[:2] + [dead] + specs[2:])

        # Resume: survivors load from cache, the rest simulate.
        resumed = make_runner(tmp_path, resume=True)
        results = resumed.run(specs)
        assert resumed.stats.cache_hits >= 1
        assert [r.to_json() for r in results] == reference

    def test_resume_cleans_stale_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = chaos_spec("seed-row")
        make_runner(tmp_path).run([spec])  # creates the version dir
        straggler = cache.path_for(spec).with_name("dead.123.tmp")
        straggler.write_text("{partial")
        make_runner(tmp_path, resume=True)
        assert not straggler.exists()
        assert cache.load(spec) is not None  # real rows untouched

    def test_store_never_leaves_partial_json(self, tmp_path):
        # An interrupted store must leave no .json and no .tmp behind.
        cache = ResultCache(tmp_path / "cache")
        spec = chaos_spec("atomic")

        class Boom(BaseException):
            pass

        class ExplodingResult:
            def to_json(self):
                raise Boom()

        with pytest.raises(Boom):
            cache.store(spec, ExplodingResult())
        version_dir = cache.root / cache.version
        if version_dir.is_dir():
            assert not list(version_dir.glob("*.tmp"))
            assert not list(version_dir.glob("*.json"))


class TestConfigValidation:
    def test_resume_forces_cache_on(self, tmp_path):
        runner = SweepRunner(
            jobs=1, use_cache=False, cache_dir=tmp_path, resume=True
        )
        assert runner.cache is not None

    def test_bad_timeout_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SweepRunner(jobs=1, use_cache=False, timeout=-1.0)

    def test_bad_retries_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            SweepRunner(jobs=1, use_cache=False, retries=-1)
