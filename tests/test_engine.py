"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(5, lambda t=tag: order.append(t))
    sim.run()
    assert order == list("abcde")


def test_callbacks_can_schedule_further_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.schedule(2, lambda: chain(n + 1))

    sim.schedule(0, lambda: chain(0))
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 10


def test_zero_delay_event_runs_after_earlier_same_cycle_events():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0, lambda: order.append("zero-delay"))

    sim.schedule(1, first)
    sim.schedule(1, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "zero-delay"]


def test_schedule_at_now_runs_after_earlier_same_cycle_events():
    """schedule_at(sim.now, ...) mid-callback joins the back of the cycle.

    Same contract as schedule(0): a callback appending work to the current
    cycle runs it after every event already queued for that cycle.
    """
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule_at(sim.now, lambda: order.append("at-now"))

    sim.schedule(3, first)
    sim.schedule(3, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "at-now"]


def test_same_cycle_order_mixes_schedule_and_schedule_at():
    """Within one cycle, schedule() and schedule_at() interleave by call order."""
    sim = Simulator()
    order = []
    sim.schedule(4, lambda: order.append("a"))
    sim.schedule_at(4, lambda: order.append("b"))
    sim.schedule(4, lambda: order.append("c"))
    sim.schedule_at(4, lambda: order.append("d"))
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_same_cycle_order_survives_overflow_migration():
    """Far-future events keep schedule order against near ones at the same time.

    An event scheduled far ahead (overflow tier) must still run before a
    later-scheduled event for the same cycle (wheel tier), and after an
    earlier-scheduled one — migration between tiers cannot reorder a cycle.
    """
    sim = Simulator()
    order = []
    target = 1000  # far enough to start life in the overflow tier
    sim.schedule_at(target, lambda: order.append("far-first"))
    sim.schedule(target - 10, lambda: None)  # advances the clock near target

    def near():
        # Runs at target-10; both appends land on the already-migrated cycle.
        sim.schedule(10, lambda: order.append("near-second"))
        sim.schedule_at(target, lambda: order.append("near-third"))

    sim.schedule(target - 10, near)
    sim.run()
    assert order == ["far-first", "near-second", "near-third"]


def test_same_cycle_order_after_solo_demotion():
    """A lone pending event keeps its place when a same-cycle event joins it."""
    sim = Simulator()
    order = []
    sim.schedule(5, lambda: order.append("solo"))  # sole pending event
    sim.schedule(5, lambda: order.append("joiner"))  # demotes it into the wheel
    sim.schedule_at(5, lambda: order.append("third"))
    sim.run()
    assert order == ["solo", "joiner", "third"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule_at(42, lambda: times.append(sim.now))
    sim.run()
    assert times == [42]


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_run_until_stops_clock_at_limit():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(100, lambda: fired.append(100))
    executed = sim.run(until=50)
    assert fired == [10]
    assert executed == 1
    assert sim.now == 50
    assert sim.pending_events == 1


def test_run_max_events():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i, lambda: None)
    executed = sim.run(max_events=3)
    assert executed == 3
    assert sim.pending_events == 7


def test_step_executes_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(3, lambda: seen.append("x"))
    assert sim.step() is True
    assert seen == ["x"]
    assert sim.step() is False


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def bad():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0, bad)
    sim.run()
    assert len(errors) == 1


def test_step_not_reentrant_from_run():
    """Regression: step() used to bypass the _running guard run() enforces."""
    sim = Simulator()
    errors = []

    def bad():
        try:
            sim.step()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0, bad)
    sim.run()
    assert len(errors) == 1


def test_step_not_reentrant_from_step():
    sim = Simulator()
    errors = []

    def bad():
        try:
            sim.step()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0, bad)
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert len(errors) == 1
    # The guard clears afterwards: stepping resumes normally.
    assert sim.step() is True
    assert sim.step() is False


def test_returns_executed_count():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    assert sim.run() == 7
