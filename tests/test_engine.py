"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, lambda: order.append("c"))
    sim.schedule(10, lambda: order.append("a"))
    sim.schedule(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_same_cycle_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(5, lambda t=tag: order.append(t))
    sim.run()
    assert order == list("abcde")


def test_callbacks_can_schedule_further_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.schedule(2, lambda: chain(n + 1))

    sim.schedule(0, lambda: chain(0))
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 10


def test_zero_delay_event_runs_after_earlier_same_cycle_events():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0, lambda: order.append("zero-delay"))

    sim.schedule(1, first)
    sim.schedule(1, lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "zero-delay"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule_at(42, lambda: times.append(sim.now))
    sim.run()
    assert times == [42]


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_run_until_stops_clock_at_limit():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(100, lambda: fired.append(100))
    executed = sim.run(until=50)
    assert fired == [10]
    assert executed == 1
    assert sim.now == 50
    assert sim.pending_events == 1


def test_run_max_events():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i, lambda: None)
    executed = sim.run(max_events=3)
    assert executed == 3
    assert sim.pending_events == 7


def test_step_executes_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(3, lambda: seen.append("x"))
    assert sim.step() is True
    assert seen == ["x"]
    assert sim.step() is False


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def bad():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0, bad)
    sim.run()
    assert len(errors) == 1


def test_step_not_reentrant_from_run():
    """Regression: step() used to bypass the _running guard run() enforces."""
    sim = Simulator()
    errors = []

    def bad():
        try:
            sim.step()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0, bad)
    sim.run()
    assert len(errors) == 1


def test_step_not_reentrant_from_step():
    sim = Simulator()
    errors = []

    def bad():
        try:
            sim.step()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(0, bad)
    sim.schedule(1, lambda: None)
    assert sim.step() is True
    assert len(errors) == 1
    # The guard clears afterwards: stepping resumes normally.
    assert sim.step() is True
    assert sim.step() is False


def test_returns_executed_count():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    assert sim.run() == 7
