"""Tests for the deterministic fault-injection layer (repro.faults).

Covers the fault vocabulary (spec validation, seeded random plans), the
machine-tier injector for every fault kind, allocation backpressure with
emergency collection, and the FreeListExhausted terminal edges: bounded
refill budgets under all six workloads, and the "nothing reclaimable"
case that must carry a wait-graph report.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import (
    FaultSpec,
    FreeListExhausted,
    Machine,
    MachineConfig,
    Task,
    Versioned,
    random_plan,
)
from repro.config import TABLE2
from repro.errors import ConfigError
from repro.faults import KINDS, TRANSPARENT_KINDS
from repro.faults.spec import validate_plan
from repro.workloads import (
    binary_tree,
    hash_table,
    levenshtein,
    linked_list,
    matmul,
    opgen,
    rb_tree,
)

IRREGULAR = {
    "linked_list": linked_list,
    "binary_tree": binary_tree,
    "hash_table": hash_table,
    "rb_tree": rb_tree,
}


def faulted_config(*faults, **overrides) -> MachineConfig:
    base = dict(
        checked=True,
        free_list_blocks=64,
        refill_blocks=16,
        free_list_refills=2,
        gc_watermark=8,
        watchdog_cycles=20_000,
        watchdog_backoff_cycles=64,
        faults=tuple(faults),
    )
    base.update(overrides)
    return dataclasses.replace(TABLE2, **base)


def run_irregular(name: str, cfg: MachineConfig, *, seed=7, n_ops=48,
                  mix=opgen.WRITE_INTENSIVE):
    mod = IRREGULAR[name]
    initial = opgen.initial_keys(24, 96, seed)
    ops = opgen.generate_ops(n_ops, mix, 96, seed)
    run = mod.run_versioned(cfg, initial, ops, 4)
    expected, _ = opgen.reference_results(initial, ops)
    return run, list(expected)


# ---------------------------------------------------------------------------
# Fault vocabulary.
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_valid_kinds(self):
        for kind in KINDS:
            FaultSpec(kind=kind, at=3)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="set-cpu-on-fire")

    def test_bad_fields_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="drop-wake", at=0)
        with pytest.raises(ConfigError):
            FaultSpec(kind="drop-wake", span=0)
        with pytest.raises(ConfigError):
            FaultSpec(kind="pause-gc", value=-1)

    def test_validate_plan_rejects_non_spec(self):
        with pytest.raises(ConfigError):
            validate_plan(("drop-wake",))

    def test_frozen_and_deterministic_repr(self):
        f = FaultSpec(kind="pause-gc", at=5, value=100)
        with pytest.raises(dataclasses.FrozenInstanceError):
            f.at = 9
        assert repr(f) == repr(FaultSpec(kind="pause-gc", at=5, value=100))

    def test_config_validates_plan(self):
        with pytest.raises(ConfigError):
            MachineConfig(faults=("not-a-spec",))

    def test_random_plan_deterministic_and_transparent(self):
        a = random_plan(1234, n_ops=100)
        b = random_plan(1234, n_ops=100)
        assert a == b
        assert all(f.kind in TRANSPARENT_KINDS for f in a)
        assert random_plan(1234, n_ops=100) != random_plan(4321, n_ops=100) or not a

    def test_random_plan_abort_needs_task_ids(self):
        plans = [
            random_plan(s, n_ops=50, kinds=("abort-task",), task_ids=(1, 2))
            for s in range(20)
        ]
        specs = [f for p in plans for f in p]
        assert specs, "abort faults should be drawn"
        assert all(f.kind == "abort-task" and f.arg in (1, 2) for f in specs)
        assert all(
            not random_plan(s, n_ops=50, kinds=("abort-task",))
            for s in range(20)
        ), "no task ids -> no abort faults"


# ---------------------------------------------------------------------------
# Machine-tier injection: transparent kinds.
# ---------------------------------------------------------------------------


class TestTransparentFaults:
    def test_starvation_recovers_with_refill_budget(self):
        cfg = faulted_config(
            FaultSpec(kind="starve-free-list", at=90, value=1, arg=2)
        )
        run, expected = run_irregular("linked_list", cfg)
        assert list(run.results) == expected
        assert run.stats.faults_injected == 1
        assert run.stats.free_list_refills >= 1

    def test_starvation_recovers_through_emergency_collection(self):
        # Zero refill budget and nearly no blocks left: only emergency
        # reclamation of shadowed blocks can produce allocations.
        cfg = faulted_config(
            FaultSpec(kind="starve-free-list", at=120, value=0, arg=6),
            free_list_refills=4,
        )
        run, expected = run_irregular(
            "linked_list", cfg, mix=opgen.READ_INTENSIVE
        )
        assert list(run.results) == expected
        assert run.stats.emergency_gc_phases >= 1

    def test_drop_wake_recovered_by_watchdog_kick(self):
        cfg = faulted_config(FaultSpec(kind="drop-wake", at=1, span=2))
        run, expected = run_irregular("linked_list", cfg)
        assert list(run.results) == expected
        assert run.stats.faults_injected >= 1
        assert run.stats.watchdog_trips >= 1
        assert run.stats.watchdog_kicks >= 1

    def test_delay_wake_transparent(self):
        cfg = faulted_config(
            FaultSpec(kind="delay-wake", at=1, span=3, value=40)
        )
        run, expected = run_irregular("linked_list", cfg)
        assert list(run.results) == expected
        assert run.stats.faults_injected >= 1

    def test_pause_gc_transparent(self):
        cfg = faulted_config(FaultSpec(kind="pause-gc", at=60, value=3000))
        run, expected = run_irregular("linked_list", cfg)
        assert list(run.results) == expected
        assert run.stats.faults_injected == 1

    def test_injector_bookkeeping(self):
        cfg = MachineConfig(
            num_cores=2,
            checked=True,
            faults=(
                FaultSpec(kind="pause-gc", at=2, value=500),
                FaultSpec(kind="delay-wake", at=1, span=1, value=10),
            ),
        )
        m = Machine(cfg)
        cell = Versioned(m.heap.alloc_versioned(1))

        def producer(tid):
            yield ("compute", 200)
            yield cell.store_ver(0, 42)

        def consumer(tid):
            return (yield cell.load_ver(0))  # parks until v0 exists

        tasks = [Task(0, producer), Task(1, consumer)]
        m.submit(tasks)
        stats = m.run()
        assert tasks[1].result == 42
        assert m.injector is not None
        assert stats.faults_injected == len(m.injector.fired) == 2
        assert m.injector.op_index > 0
        assert m.injector.notify_index >= 1


# ---------------------------------------------------------------------------
# Abort-and-retry as an injected fault (deterministic, pure generators).
# ---------------------------------------------------------------------------


class TestAbortTaskFault:
    def test_abort_mid_task_rolls_back_and_replays(self):
        cfg = MachineConfig(
            num_cores=2,
            checked=True,
            faults=(FaultSpec(kind="abort-task", at=4, value=10, arg=1),),
        )
        m = Machine(cfg)
        cell = Versioned(m.heap.alloc_versioned(1))
        m.manager.store_version(0, cell.addr, 0, 5)

        def writer(tid):
            v = yield cell.load_ver(0)
            yield cell.store_ver(tid, v * 2)
            yield ("compute", 2000)
            return v

        def reader(tid):
            # Exact load: parks until the writer's v1 exists, and if the
            # abort drops v1 mid-wait it re-parks until the replay
            # recreates it.
            v = yield cell.load_ver(1)
            return v

        tasks = [Task(1, writer), Task(2, reader)]
        m.submit(tasks)
        stats = m.run()
        assert tasks[0].result == 5
        assert tasks[1].result == 10
        assert stats.tasks_retried == 1
        assert m.injector.fired, "abort fault should have been applied"

    def test_abort_skipped_when_victim_already_finished(self):
        cfg = MachineConfig(
            num_cores=1,
            checked=True,
            faults=(FaultSpec(kind="abort-task", at=50, value=1, arg=0),),
        )
        m = Machine(cfg)
        cell = Versioned(m.heap.alloc_versioned(1))

        def prog(tid):
            yield cell.store_ver(0, 1)
            return 1

        tasks = [Task(0, prog)]
        m.submit(tasks)
        stats = m.run()
        assert tasks[0].result == 1
        assert stats.tasks_retried == 0


# ---------------------------------------------------------------------------
# FreeListExhausted edges.
# ---------------------------------------------------------------------------


class TestExhaustionEdges:
    @pytest.mark.parametrize("name", sorted(IRREGULAR))
    def test_bounded_refill_budget_irregular(self, name):
        # Small free list with a bounded refill budget: every irregular
        # workload must complete correctly through refill traps.
        cfg = dataclasses.replace(
            TABLE2,
            checked=True,
            free_list_blocks=48,
            refill_blocks=32,
            free_list_refills=8,
            gc_watermark=8,
        )
        run, expected = run_irregular(name, cfg, mix=opgen.WRITE_INTENSIVE)
        assert list(run.results) == expected
        # Memory pressure must actually have been exercised: either the
        # budgeted refill trap fired or the GC had to reclaim blocks.
        assert run.stats.free_list_refills + run.stats.gc_reclaimed >= 1

    @pytest.mark.parametrize("name", ("matmul", "levenshtein"))
    def test_bounded_refill_budget_regular(self, name):
        cfg = dataclasses.replace(
            TABLE2,
            checked=True,
            free_list_blocks=48,
            refill_blocks=32,
            free_list_refills=24,
            gc_watermark=8,
        )
        if name == "matmul":
            import numpy as np

            run = matmul.run_versioned(cfg, 6, 4, seed=3)
            a, b, c = matmul.make_inputs(6, 3)
            assert np.array_equal(run.final_state, matmul.reference(a, b, c))
        else:
            run = levenshtein.run_versioned(cfg, 10, 4, seed=3)
            s1, s2 = levenshtein.make_strings(10, 3)
            assert run.final_state == levenshtein.reference(s1, s2)
        assert run.stats.free_list_refills >= 1

    def test_terminal_exhaustion_carries_wait_graph(self):
        # Unrecoverable starvation mid-run: cores park on allocation,
        # nothing ever becomes reclaimable enough, and the run must end
        # in FreeListExhausted with a wait-graph report attached.
        cfg = faulted_config(
            FaultSpec(kind="starve-free-list", at=90, value=0, arg=2),
            watchdog_cycles=5_000,
        )
        with pytest.raises(FreeListExhausted) as exc_info:
            run_irregular("linked_list", cfg)
        exc = exc_info.value
        assert exc.post_mortem
        assert "wait graph" in str(exc)
        assert "backpressure" in str(exc)

    def test_backpressure_disabled_raises_immediately(self):
        cfg = faulted_config(
            FaultSpec(kind="starve-free-list", at=90, value=0, arg=0),
            allocation_backpressure=False,
            watchdog_cycles=0,
        )
        with pytest.raises(FreeListExhausted) as exc_info:
            run_irregular("linked_list", cfg)
        # The fail-fast path raises from inside allocation: no stalled
        # cores yet, so no backpressure edges are expected.
        assert "refill budget" in str(exc_info.value)

    def test_backpressure_stall_counters(self):
        # Starve hard but leave shadowed blocks reclaimable only after
        # tasks end: cores must actually park on ALLOC_WAIT.
        cfg = faulted_config(
            FaultSpec(kind="starve-free-list", at=80, value=0, arg=0),
            free_list_blocks=96,
            gc_watermark=4,
        )
        try:
            run, expected = run_irregular(
                "linked_list", cfg, mix=opgen.READ_INTENSIVE, n_ops=64
            )
        except FreeListExhausted:
            pytest.skip("schedule degraded before any stall resolved")
        assert list(run.results) == expected
        if run.stats.backpressure_stalls:
            assert run.stats.backpressure_stall_cycles >= 0
