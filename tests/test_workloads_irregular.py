"""Sequential-equivalence and protocol tests for the irregular workloads.

The acceptance criterion for the paper's task-based execution model is
that a parallel versioned run produces *exactly* the sequential program's
results — per-operation return values and final structure contents.
These tests check that across structures, mixes, core counts and
hypothesis-generated operation streams.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineConfig
from repro.workloads import binary_tree, hash_table, linked_list, rb_tree
from repro.workloads.base import ENTER_LOAD, ENTER_LOCK, ENTER_SKIP, plan_entries
from repro.workloads.opgen import (
    DELETE,
    INSERT,
    LOOKUP,
    READ_INTENSIVE,
    SCAN,
    WRITE_INTENSIVE,
    OpMix,
    generate_ops,
    initial_keys,
    reference_results,
)

MODULES = {
    "linked_list": linked_list,
    "binary_tree": binary_tree,
    "hash_table": hash_table,
    "rb_tree": rb_tree,
}

CFG = MachineConfig()


def check_equivalence(mod, init, ops, cores):
    expected_results, expected_final = reference_results(init, ops)
    run = mod.run_versioned(CFG, init, ops, cores)
    assert run.results == expected_results, [
        (i, a, b)
        for i, (a, b) in enumerate(zip(run.results, expected_results))
        if a != b
    ][:5]
    assert run.final_state == expected_final
    return run


@pytest.mark.parametrize("name", sorted(MODULES))
@pytest.mark.parametrize("mix", [READ_INTENSIVE, WRITE_INTENSIVE], ids=lambda m: m.name)
class TestSequentialEquivalence:
    def test_unversioned_matches_oracle(self, name, mix):
        mod = MODULES[name]
        init = initial_keys(80, 320, seed=11)
        ops = generate_ops(96, mix, 320, seed=11)
        expected_results, expected_final = reference_results(init, ops)
        run = mod.run_unversioned(CFG, init, ops)
        assert run.results == expected_results
        assert run.final_state == expected_final

    def test_versioned_single_core(self, name, mix):
        init = initial_keys(80, 320, seed=12)
        ops = generate_ops(96, mix, 320, seed=12)
        check_equivalence(MODULES[name], init, ops, 1)

    def test_versioned_parallel(self, name, mix):
        init = initial_keys(80, 320, seed=13)
        ops = generate_ops(96, mix, 320, seed=13)
        check_equivalence(MODULES[name], init, ops, 8)

    def test_versioned_many_cores(self, name, mix):
        init = initial_keys(50, 200, seed=14)
        ops = generate_ops(64, mix, 200, seed=14)
        check_equivalence(MODULES[name], init, ops, 32)


class TestEdgeCases:
    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_empty_initial_structure(self, name):
        ops = [(INSERT, 5, 0), (LOOKUP, 5, 0), (DELETE, 5, 0), (LOOKUP, 5, 0)]
        run = check_equivalence(MODULES[name], [], ops, 2)
        assert run.results == [True, True, True, False]

    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_all_operations_on_one_key(self, name):
        ops = [(INSERT, 7, 0)] + [(DELETE, 7, 0), (INSERT, 7, 0)] * 10
        check_equivalence(MODULES[name], [3], ops, 4)

    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_pure_read_stream(self, name):
        init = initial_keys(40, 160, seed=15)
        ops = [(LOOKUP, k, 0) for k in range(0, 160, 7)]
        check_equivalence(MODULES[name], init, ops, 8)

    @pytest.mark.parametrize("name", sorted(MODULES))
    def test_pure_write_stream(self, name):
        ops = [(INSERT, k, 0) for k in range(0, 60, 2)] + [
            (DELETE, k, 0) for k in range(0, 60, 4)
        ]
        check_equivalence(MODULES[name], [1], ops, 8)

    def test_binary_tree_two_children_deletes(self):
        # Force deletions of internal nodes with two children.
        init = [50, 25, 75, 12, 37, 62, 87, 6, 18, 31, 43]
        ops = [(DELETE, 50, 0), (LOOKUP, 43, 0), (DELETE, 25, 0),
               (LOOKUP, 37, 0), (DELETE, 75, 0), (LOOKUP, 87, 0)]
        check_equivalence(binary_tree, init, ops, 4)

    def test_binary_tree_scan_spanning_mutations(self):
        init = list(range(0, 100, 5))
        ops = [(SCAN, 0, 10, ), (INSERT, 3, 0), (SCAN, 0, 10), (DELETE, 10, 0),
               (SCAN, 0, 10), (SCAN, 95, 10)]
        check_equivalence(binary_tree, init, ops, 4)

    def test_rb_tree_invariants_after_parallel_run(self):
        init = initial_keys(60, 240, seed=16)
        ops = generate_ops(80, WRITE_INTENSIVE, 240, seed=16)
        expected_results, expected_final = reference_results(init, ops)

        def setup_and_check():
            from repro.runtime.scheduler import StaticScheduler
            from repro.runtime.task import Task
            from repro.sim.machine import Machine
            from repro.workloads.base import FIRST_TASK_ID, plan_entries
            from repro.workloads.rb_tree import VersionedRBTree

            machine = Machine(CFG.with_cores(8))
            init_version, plans = plan_entries(ops)
            tree = VersionedRBTree(machine, init, len(init) + len(ops) + 2,
                                   ticket_init_version=init_version)
            tasks = []
            for i, (op, key, _) in enumerate(ops):
                tid = FIRST_TASK_ID + i
                if op == LOOKUP:
                    tasks.append(Task(tid, tree.lookup_task, key, plans[i]))
                elif op == INSERT:
                    tasks.append(Task(tid, tree.insert_task, key, plans[i][2]))
                else:
                    tasks.append(Task(tid, tree.delete_task, key, plans[i][2]))
            machine.submit(tasks, StaticScheduler())
            machine.run()
            assert tree.snapshot() == expected_final
            # The red-black properties hold on the final tree.
            tree.check_invariants()

        setup_and_check()

    def test_hash_table_single_bucket_degenerates_to_list(self):
        from repro.runtime.scheduler import StaticScheduler
        from repro.runtime.task import Task
        from repro.sim.machine import Machine
        from repro.workloads.base import FIRST_TASK_ID
        from repro.workloads.hash_table import VersionedHashTable

        ops = [(INSERT, 5, 0), (INSERT, 9, 0), (DELETE, 5, 0), (LOOKUP, 9, 0)]
        expected_results, expected_final = reference_results([1, 13], ops)
        init_version, plans = plan_entries(ops)
        machine = Machine(CFG.with_cores(2))
        table = VersionedHashTable(machine, [1, 13], 16, num_buckets=1,
                                   ticket_init_version=init_version)
        tasks = []
        for i, (op, key, _) in enumerate(ops):
            tid = FIRST_TASK_ID + i
            body = {LOOKUP: table.lookup_task, INSERT: table.insert_task,
                    DELETE: table.delete_task}[op]
            arg = plans[i] if op == LOOKUP else plans[i][2]
            tasks.append(Task(tid, body, key, arg))
        machine.submit(tasks, StaticScheduler())
        machine.run()
        assert [t.result for t in tasks] == expected_results
        assert table.snapshot() == expected_final


class TestProtocolBehaviour:
    def test_readers_do_not_lock_the_root(self):
        # Pure-lookup stream: zero lock operations on the ticket.
        init = initial_keys(40, 160, seed=17)
        ops = [(LOOKUP, k, 0) for k in range(0, 160, 11)]
        run = hash_table.run_versioned(CFG, init, ops, 8)
        assert run.stats.versions_locked == 0

    def test_write_intensive_stalls_more_at_root(self):
        # The paper's hash-table observation: write-heavy mixes stall at
        # the root far more than read-heavy ones.
        init = initial_keys(100, 400, seed=18)
        ops_w = generate_ops(96, WRITE_INTENSIVE, 400, seed=18)
        ops_r = generate_ops(96, READ_INTENSIVE, 400, seed=18)
        run_w = hash_table.run_versioned(CFG, init, ops_w, 16)
        run_r = hash_table.run_versioned(CFG, init, ops_r, 16)
        assert run_w.stats.root_load_stalls > run_r.stats.root_load_stalls

    def test_snapshot_isolation_under_concurrent_inserts(self):
        # Scans overlapping inserts still return sequential-order results
        # (this is the serializability claim of Section IV-C).
        init = list(range(0, 200, 4))
        mix = OpMix(reads=3, writes=1, name="3S-1W")
        ops = generate_ops(96, mix, 200, seed=19, read_op=SCAN, scan_range=8)
        ops = [(op if op != DELETE else INSERT, k, e) for op, k, e in ops]
        check_equivalence(binary_tree, init, ops, 16)

    def test_versions_created_match_mutations(self):
        init = initial_keys(30, 120, seed=20)
        ops = [(INSERT, 200 + i, 0) for i in range(10)]
        run = linked_list.run_versioned(CFG, init, ops, 4)
        # Each insert creates >= 2 versions (new node next + spliced prev).
        creations = run.stats.versions_created
        assert creations >= 20

    def test_scheduler_skew_does_not_break_order(self):
        # Block scheduling puts whole runs of consecutive tasks on one
        # core — maximal skew for the entry protocol.
        from repro.runtime.scheduler import StaticScheduler
        from repro.runtime.task import Task
        from repro.sim.machine import Machine
        from repro.workloads.base import FIRST_TASK_ID
        from repro.workloads.linked_list import VersionedLinkedList

        init = initial_keys(30, 120, seed=21)
        ops = generate_ops(48, WRITE_INTENSIVE, 120, seed=21)
        expected_results, expected_final = reference_results(init, ops)
        init_version, plans = plan_entries(ops)
        machine = Machine(CFG.with_cores(4))
        lst = VersionedLinkedList(machine, init, len(init) + len(ops) + 2,
                                  ticket_init_version=init_version)
        tasks = []
        for i, (op, key, _) in enumerate(ops):
            tid = FIRST_TASK_ID + i
            if op == LOOKUP:
                tasks.append(Task(tid, lst.lookup_task, key, plans[i]))
            elif op == INSERT:
                tasks.append(Task(tid, lst.insert_task, key, plans[i][2]))
            else:
                tasks.append(Task(tid, lst.delete_task, key, plans[i][2]))
        machine.submit(tasks, StaticScheduler("block"))
        machine.run()
        assert [t.result for t in tasks] == expected_results
        assert lst.snapshot() == expected_final


class TestEntryPlanner:
    def test_all_readers(self):
        ops = [(LOOKUP, 1, 0)] * 4
        init, plans = plan_entries(ops, first_tid=1)
        assert init == 5  # sentinel
        assert all(p == (ENTER_SKIP,) for p in plans)

    def test_all_mutators_chain(self):
        ops = [(INSERT, 1, 0)] * 3
        init, plans = plan_entries(ops, first_tid=1)
        assert init == 1
        assert plans == [(ENTER_LOCK, 1, 2), (ENTER_LOCK, 2, 3), (ENTER_LOCK, 3, 4)]

    def test_readers_wait_on_next_mutator_version(self):
        ops = [(INSERT, 1, 0), (LOOKUP, 2, 0), (LOOKUP, 3, 0), (DELETE, 4, 0)]
        init, plans = plan_entries(ops, first_tid=1)
        assert init == 1
        assert plans[0] == (ENTER_LOCK, 1, 4)
        # Readers 2 and 3 wait for mutator 1's rename target (version 4).
        assert plans[1] == (ENTER_LOAD, 4)
        assert plans[2] == (ENTER_LOAD, 4)
        assert plans[3] == (ENTER_LOCK, 4, 5)

    def test_trailing_readers_use_sentinel(self):
        ops = [(INSERT, 1, 0), (LOOKUP, 2, 0)]
        init, plans = plan_entries(ops, first_tid=1)
        assert plans[0] == (ENTER_LOCK, 1, 3)
        assert plans[1] == (ENTER_LOAD, 3)

    def test_leading_readers_skip(self):
        ops = [(LOOKUP, 1, 0), (INSERT, 2, 0)]
        _, plans = plan_entries(ops, first_tid=1)
        assert plans[0] == (ENTER_SKIP,)


@given(
    init=st.lists(st.integers(0, 100), max_size=25),
    seed=st.integers(0, 10_000),
    cores=st.sampled_from([2, 4, 8]),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_property_linked_list_parallel_equals_sequential(init, seed, cores, data):
    """Hypothesis: random op streams on random cores == sequential oracle."""
    n_ops = data.draw(st.integers(4, 40))
    ops = generate_ops(n_ops, WRITE_INTENSIVE, 100, seed)
    expected_results, expected_final = reference_results(init, ops)
    run = linked_list.run_versioned(CFG, init, ops, cores)
    assert run.results == expected_results
    assert run.final_state == expected_final


@given(
    init=st.lists(st.integers(0, 100), max_size=25),
    seed=st.integers(0, 10_000),
    data=st.data(),
)
@settings(max_examples=20, deadline=None)
def test_property_binary_tree_parallel_equals_sequential(init, seed, data):
    n_ops = data.draw(st.integers(4, 32))
    ops = generate_ops(n_ops, WRITE_INTENSIVE, 100, seed)
    expected_results, expected_final = reference_results(init, ops)
    run = binary_tree.run_versioned(CFG, init, ops, 8)
    assert run.results == expected_results
    assert run.final_state == expected_final
