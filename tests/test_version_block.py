"""Tests for version blocks and version-block lists, incl. property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.ostruct.version_block import VersionBlock, VersionList


def vb(version, value=None, paddr=None):
    return VersionBlock(version, value if value is not None else version * 10,
                        paddr if paddr is not None else 0x8000_0000 + version * 16)


class TestVersionBlock:
    def test_fields(self):
        b = vb(3, value=42, paddr=0x1000)
        assert b.version == 3
        assert b.value == 42
        assert b.paddr == 0x1000
        assert not b.locked
        assert b.next is None
        assert b.next_paddr is None

    def test_next_paddr_mirrors_link(self):
        a, b = vb(1), vb(2)
        a.next = b
        assert a.next_paddr == b.paddr

    def test_version_id_range_checked(self):
        with pytest.raises(SimulationError):
            VersionBlock(-1, 0, 0)
        with pytest.raises(SimulationError):
            VersionBlock(1 << 32, 0, 0)

    def test_lock_state(self):
        b = vb(1)
        b.locked_by = 7
        assert b.locked
        b.locked_by = None
        assert not b.locked


class TestSortedInsert:
    def test_inserts_keep_descending_order(self):
        lst = VersionList(0x4000_0000)
        for v in [5, 2, 9, 1, 7]:
            lst.insert(vb(v))
        assert lst.versions() == [9, 7, 5, 2, 1]
        lst.check_invariants()

    def test_head_bit_maintained(self):
        lst = VersionList(0)
        lst.insert(vb(1))
        assert lst.head.head is True
        lst.insert(vb(5))
        assert lst.head.version == 5
        assert lst.head.head is True
        # Old head's bit cleared.
        assert lst.head.next.head is False

    def test_duplicate_version_rejected(self):
        lst = VersionList(0)
        lst.insert(vb(3))
        with pytest.raises(SimulationError):
            lst.insert(vb(3))

    def test_insert_reports_shadowed_block(self):
        lst = VersionList(0)
        lst.insert(vb(1))
        shadowed, _ = lst.insert(vb(2))
        assert shadowed is not None and shadowed.version == 1
        # Inserting below everything shadows nothing.
        shadowed, _ = lst.insert(vb(0))
        assert shadowed is None

    def test_out_of_order_insert_shadows_next_lower(self):
        lst = VersionList(0)
        lst.insert(vb(1))
        lst.insert(vb(9))
        shadowed, _ = lst.insert(vb(5))
        assert shadowed.version == 1

    def test_insert_at_head_is_cheap(self):
        lst = VersionList(0)
        for v in range(10):
            _, visited = lst.insert(vb(v))
            assert visited <= 1  # in-order creation never walks


class TestUnsortedInsert:
    def test_append_at_head(self):
        lst = VersionList(0, sorted_insert=False)
        for v in [5, 2, 9]:
            lst.insert(vb(v))
        assert lst.versions() == [9, 2, 5]

    def test_find_exact_scans_whole_list(self):
        lst = VersionList(0, sorted_insert=False)
        for v in [5, 2, 9]:
            lst.insert(vb(v))
        block, visited = lst.find_exact(5)
        assert block.version == 5
        assert visited == 3

    def test_find_latest_scans_for_max(self):
        lst = VersionList(0, sorted_insert=False)
        for v in [5, 2, 9]:
            lst.insert(vb(v))
        block, _ = lst.find_latest(7)
        assert block.version == 5

    def test_shadow_scan(self):
        lst = VersionList(0, sorted_insert=False)
        lst.insert(vb(1))
        lst.insert(vb(5))
        shadowed, _ = lst.insert(vb(3))
        assert shadowed.version == 1


class TestLookup:
    def test_find_exact_hit(self):
        lst = VersionList(0)
        for v in [1, 3, 5]:
            lst.insert(vb(v))
        block, visited = lst.find_exact(3)
        assert block.version == 3
        assert visited == 2  # 5 then 3

    def test_find_exact_early_termination(self):
        lst = VersionList(0)
        for v in [1, 3, 5]:
            lst.insert(vb(v))
        block, visited = lst.find_exact(4)
        assert block is None
        assert visited == 2  # stops at 3 < 4

    def test_find_latest_returns_highest_at_or_below_cap(self):
        lst = VersionList(0)
        for v in [1, 3, 5]:
            lst.insert(vb(v))
        assert lst.find_latest(4)[0].version == 3
        assert lst.find_latest(5)[0].version == 5
        assert lst.find_latest(100)[0].version == 5
        assert lst.find_latest(0)[0] is None

    def test_remove(self):
        lst = VersionList(0)
        blocks = [vb(v) for v in [1, 3, 5]]
        for b in blocks:
            lst.insert(b)
        assert lst.remove(blocks[1]) is True
        assert lst.versions() == [5, 1]
        assert lst.remove(blocks[1]) is False
        lst.check_invariants()

    def test_remove_head_promotes_next(self):
        lst = VersionList(0)
        blocks = [vb(v) for v in [1, 3]]
        for b in blocks:
            lst.insert(b)
        lst.remove(blocks[1])  # remove version 3 (head)
        assert lst.head.version == 1
        assert lst.head.head is True


@given(st.lists(st.integers(min_value=0, max_value=10_000), unique=True, min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_property_sorted_list_invariants(versions):
    """Any insertion order yields a sorted, duplicate-free list."""
    lst = VersionList(0)
    for v in versions:
        lst.insert(vb(v))
    lst.check_invariants()
    assert lst.versions() == sorted(versions, reverse=True)


@given(
    st.lists(st.integers(min_value=0, max_value=500), unique=True, min_size=1, max_size=40),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=200, deadline=None)
def test_property_find_latest_matches_spec(versions, cap):
    """find_latest == max(v <= cap) in both sorted and unsorted modes."""
    expected = max((v for v in versions if v <= cap), default=None)
    for mode in (True, False):
        lst = VersionList(0, sorted_insert=mode)
        for v in versions:
            lst.insert(vb(v))
        block, _ = lst.find_latest(cap)
        got = block.version if block else None
        assert got == expected


@given(st.lists(st.integers(min_value=0, max_value=300), unique=True, min_size=2, max_size=30))
@settings(max_examples=100, deadline=None)
def test_property_shadowing_identifies_next_lower_version(versions):
    """The block reported as shadowed is the next-lower live version."""
    lst = VersionList(0)
    lst.insert(vb(versions[0]))
    for v in versions[1:]:
        shadowed, _ = lst.insert(vb(v))
        live_below = [u for u in lst.versions() if u < v]
        if live_below:
            assert shadowed is not None and shadowed.version == max(live_below)
        else:
            assert shadowed is None
