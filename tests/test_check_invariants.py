"""Tests for the structural invariant checker.

Each test seeds one specific corruption into otherwise-healthy machine
state and asserts ``check_invariants`` names it.  The corruptions mirror
the real failure modes the checker exists for: stale compressed-line
entries after a reclaim, double-released paddrs, detached memo, GC
queue entries outliving their list.
"""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig
from repro.check import check_invariants


@pytest.fixture
def m() -> Machine:
    return Machine(MachineConfig(num_cores=2, gc_watermark=0))


def primed(m: Machine, versions: int = 3) -> int:
    addr = m.heap.alloc_versioned(4)
    for v in range(1, versions + 1):
        m.manager.store_version(0, addr, v, f"val{v}")
    return addr


class TestHealthy:
    def test_fresh_machine(self, m):
        assert check_invariants(m) == []

    def test_after_traffic(self, m):
        addr = primed(m)
        m.manager.load_version(0, addr, 1)
        m.manager.load_latest(1, addr, 99)
        m.manager.lock_load_version(0, addr, 2, task_id=5)
        assert check_invariants(m) == []

    def test_after_gc_phase(self, m):
        primed(m)
        m.gc.start_phase()  # reclaims the two shadowed versions
        assert m.stats.gc_reclaimed == 2
        assert check_invariants(m) == []

    def test_after_free(self, m):
        addr = primed(m)
        m.manager.free_ostructure(addr)
        assert check_invariants(m) == []


class TestCorruptions:
    def test_unsorted_version_list(self, m):
        addr = primed(m)
        lst = m.manager.lists[addr]
        # Swap the stored version ids so the list order is wrong.
        lst.head.version, lst.head.next.version = (
            lst.head.next.version,
            lst.head.version,
        )
        assert any("version list" in p for p in check_invariants(m))

    def test_duplicate_free_paddr(self, m):
        primed(m)
        m.free_list._free.append(m.free_list._free[0])
        assert any("duplicate paddrs" in p for p in check_invariants(m))

    def test_linked_block_on_free_list(self, m):
        addr = primed(m)
        m.free_list._free.append(m.manager.lists[addr].head.paddr)
        assert any("both linked" in p for p in check_invariants(m))

    def test_stale_compressed_entry_after_removal(self, m):
        # The exact shape of the "skipped invalidation on reclaim" bug.
        addr = primed(m)
        lst = m.manager.lists[addr]
        block, _ = lst.find_exact(1)
        lst.remove(block)
        problems = check_invariants(m)
        assert any("reclaimed" in p for p in problems)

    def test_compressed_entry_outlives_free(self, m):
        addr = primed(m)
        # Free behind the compressed caches' back.
        entries = [dict(d) for d in m.manager._direct]
        m.manager.free_ostructure(addr)
        for d, saved in zip(m.manager._direct, entries):
            d.update(saved)
        assert any("outlives" in p for p in check_invariants(m))

    def test_line_blocks_mismatch(self, m):
        addr = primed(m)
        entry = m.manager._direct[0][addr]
        entry.blocks.pop(next(iter(entry.blocks)))
        assert any("encoded" in p for p in check_invariants(m))

    def test_block_index_desync(self, m):
        addr = primed(m)
        m.manager._block_index[0].pop(addr >> 6)
        assert any("block index" in p for p in check_invariants(m))

    def test_detached_memo(self, m):
        addr = primed(m)
        mgr = m.manager
        assert mgr._memo_core >= 0
        # Replace the table entry while the memo keeps the old object.
        from repro.ostruct.manager import _DirectEntry

        mgr._direct[mgr._memo_core][mgr._memo_vaddr] = _DirectEntry()
        assert any("memo" in p for p in check_invariants(m))

    def test_gc_entry_paddr_freed(self, m):
        primed(m)
        assert m.gc.shadowed_count == 2
        block, _ = m.gc._shadowed[0]
        m.free_list.release(block.paddr)
        assert any(
            "already on the free list" in p for p in check_invariants(m)
        )

    def test_gc_entry_detached(self, m):
        addr = primed(m)
        lst = m.manager.lists[addr]
        block, _ = m.gc._shadowed[0]
        lst.remove(block)
        assert any("detached" in p for p in check_invariants(m))

    def test_gc_entry_lost_flag(self, m):
        primed(m)
        block, _ = m.gc._shadowed[0]
        block.shadowed = False
        assert any("shadowed flag" in p for p in check_invariants(m))

    def test_waiter_on_non_versioned_page(self, m):
        m.manager._waiters[0x10] = [lambda: None]
        assert any("non-versioned" in p for p in check_invariants(m))
