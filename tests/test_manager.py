"""Unit tests for the O-structure manager (direct API, no core in the loop)."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.errors import NotLockedError, ProtectionFault, VersionExistsError
from repro.ostruct.free_list import FreeList
from repro.ostruct.gc import GarbageCollector
from repro.ostruct.manager import OStructureManager, StallSignal
from repro.ostruct.page_table import PageTable
from repro.runtime.allocator import VERSION_BLOCK_BASE, SimHeap
from repro.runtime.task import TaskTracker
from repro.sim.engine import Simulator
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.stats import SimStats


class Rig:
    """A manager wired to real components, driven synchronously."""

    def __init__(self, **cfg_kw):
        self.config = MachineConfig(num_cores=cfg_kw.pop("num_cores", 2), **cfg_kw)
        self.sim = Simulator()
        self.stats = SimStats()
        self.hierarchy = MemoryHierarchy(self.config, self.stats)
        self.page_table = PageTable()
        self.heap = SimHeap(self.page_table)
        self.tracker = TaskTracker()
        self.free_list = FreeList(
            base_paddr=VERSION_BLOCK_BASE,
            initial_blocks=self.config.free_list_blocks,
            refill_blocks=self.config.refill_blocks,
            max_refills=None,
            stats=self.stats,
            on_refill_page=self.page_table.mark_versioned,
        )
        self.gc = GarbageCollector(
            free_list=self.free_list,
            tracker=self.tracker,
            hierarchy=self.hierarchy,
            stats=self.stats,
            watermark=self.config.gc_watermark,
        )
        self.manager = OStructureManager(
            config=self.config,
            sim=self.sim,
            hierarchy=self.hierarchy,
            page_table=self.page_table,
            free_list=self.free_list,
            gc=self.gc,
            stats=self.stats,
        )
        self.addr = self.heap.alloc_versioned(16)


@pytest.fixture
def rig():
    return Rig()


class TestStoreLoad:
    def test_store_then_exact_load(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 111)
        _, value = rig.manager.load_version(0, rig.addr, 1)
        assert value == 111

    def test_all_created_versions_loadable_simultaneously(self, rig):
        for v, val in [(1, 10), (2, 20), (3, 30)]:
            rig.manager.store_version(0, rig.addr, v, val)
        for v, val in [(1, 10), (2, 20), (3, 30)]:
            assert rig.manager.load_version(0, rig.addr, v)[1] == val

    def test_load_uncreated_version_stalls(self, rig):
        rig.manager.store_version(0, rig.addr, 2, 20)
        with pytest.raises(StallSignal):
            rig.manager.load_version(0, rig.addr, 1)

    def test_out_of_sequence_creation(self, rig):
        # Version 2 usable before version 1 exists (the register-renaming analogy).
        rig.manager.store_version(0, rig.addr, 2, 20)
        assert rig.manager.load_version(0, rig.addr, 2)[1] == 20
        rig.manager.store_version(0, rig.addr, 1, 10)
        assert rig.manager.load_version(0, rig.addr, 1)[1] == 10

    def test_store_existing_version_faults(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        with pytest.raises(VersionExistsError):
            rig.manager.store_version(0, rig.addr, 1, 99)

    def test_duplicate_store_releases_allocated_block(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        before = rig.free_list.free_count
        with pytest.raises(VersionExistsError):
            rig.manager.store_version(0, rig.addr, 1, 99)
        assert rig.free_list.free_count == before

    def test_load_latest_picks_highest_at_or_below_cap(self, rig):
        for v in [1, 3, 7]:
            rig.manager.store_version(0, rig.addr, v, v * 10)
        assert rig.manager.load_latest(0, rig.addr, 5)[1] == (3, 30)
        assert rig.manager.load_latest(0, rig.addr, 7)[1] == (7, 70)
        assert rig.manager.load_latest(0, rig.addr, 100)[1] == (7, 70)

    def test_load_latest_stalls_when_nothing_at_or_below(self, rig):
        rig.manager.store_version(0, rig.addr, 5, 50)
        with pytest.raises(StallSignal):
            rig.manager.load_latest(0, rig.addr, 4)

    def test_versioned_access_to_conventional_page_faults(self, rig):
        conv = rig.heap.alloc(4)
        with pytest.raises(ProtectionFault):
            rig.manager.load_version(0, conv, 1)
        with pytest.raises(ProtectionFault):
            rig.manager.store_version(0, conv, 1, 0)


class TestLocking:
    def test_lock_load_version(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        _, value = rig.manager.lock_load_version(0, rig.addr, 1, task_id=5)
        assert value == 10
        assert rig.stats.versions_locked == 1

    def test_locked_version_blocks_exact_load(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=5)
        with pytest.raises(StallSignal):
            rig.manager.load_version(1, rig.addr, 1)

    def test_lock_on_other_version_is_ignored_by_exact_load(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.store_version(0, rig.addr, 2, 20)
        rig.manager.lock_load_version(0, rig.addr, 2, task_id=5)
        # Version 1 unaffected by the lock on version 2 (paper, Section II-A).
        assert rig.manager.load_version(1, rig.addr, 1)[1] == 10

    def test_locked_latest_blocks_capped_load(self, rig):
        rig.manager.store_version(0, rig.addr, 3, 30)
        rig.manager.lock_load_latest(0, rig.addr, 10, task_id=5)
        with pytest.raises(StallSignal):
            rig.manager.load_latest(1, rig.addr, 10)

    def test_double_lock_stalls(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=5)
        with pytest.raises(StallSignal):
            rig.manager.lock_load_version(1, rig.addr, 1, task_id=6)

    def test_unlock_releases(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=5)
        rig.manager.unlock_version(0, rig.addr, 1, task_id=5)
        assert rig.manager.load_version(1, rig.addr, 1)[1] == 10

    def test_unlock_by_non_holder_faults(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=5)
        with pytest.raises(NotLockedError):
            rig.manager.unlock_version(0, rig.addr, 1, task_id=6)

    def test_unlock_unlocked_version_faults(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        with pytest.raises(NotLockedError):
            rig.manager.unlock_version(0, rig.addr, 1, task_id=5)

    def test_unlock_nonexistent_version_faults(self, rig):
        with pytest.raises(NotLockedError):
            rig.manager.unlock_version(0, rig.addr, 9, task_id=5)

    def test_unlock_with_rename_creates_new_unlocked_version(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=5)
        rig.manager.unlock_version(0, rig.addr, 1, task_id=5, new_version=2)
        # The renamed version carries the same value and is unlocked.
        assert rig.manager.load_version(1, rig.addr, 2)[1] == 10
        assert rig.manager.versions_of(rig.addr) == [2, 1]


class TestWaiters:
    def test_store_notifies_waiters(self, rig):
        woken = []
        rig.manager.add_waiter(rig.addr, lambda: woken.append("w"))
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.sim.run()
        assert woken == ["w"]

    def test_unlock_notifies_waiters(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=5)
        woken = []
        rig.manager.add_waiter(rig.addr, lambda: woken.append("w"))
        rig.manager.unlock_version(0, rig.addr, 1, task_id=5)
        rig.sim.run()
        assert woken == ["w"]

    def test_waiters_are_one_shot(self, rig):
        woken = []
        rig.manager.add_waiter(rig.addr, lambda: woken.append("w"))
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.store_version(0, rig.addr, 2, 20)
        rig.sim.run()
        assert woken == ["w"]

    def test_waiter_report(self, rig):
        rig.manager.add_waiter(rig.addr, lambda: None)
        report = rig.manager.blocked_waiter_report()
        assert len(report) == 1 and "1 waiter" in report[0]


class TestDirectAccess:
    def test_repeat_load_hits_compressed_line(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.load_version(0, rig.addr, 1)
        before = rig.stats.direct_hits
        lat, _ = rig.manager.load_version(0, rig.addr, 1)
        assert rig.stats.direct_hits == before + 1
        assert lat == rig.config.l1.hit_latency  # single L1 access

    def test_direct_access_disabled_without_compression(self):
        rig = Rig(compression_enabled=False)
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.load_version(0, rig.addr, 1)
        rig.manager.load_version(0, rig.addr, 1)
        assert rig.stats.direct_hits == 0
        assert rig.stats.full_lookups >= 2

    def test_other_core_misses_direct_and_walks(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        before = rig.stats.full_lookups
        rig.manager.load_version(1, rig.addr, 1)
        assert rig.stats.full_lookups == before + 1

    def test_remote_store_discards_compressed_line(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.load_version(0, rig.addr, 1)  # core 0 has direct entry
        rig.manager.store_version(1, rig.addr, 2, 20)  # exclusive write by core 1
        before = rig.stats.direct_hits
        rig.manager.load_version(0, rig.addr, 1)
        # Core 0's compressed line was invalidated: full lookup again.
        assert rig.stats.direct_hits == before

    def test_direct_latest_answers_only_when_head_cached(self, rig):
        for v in [1, 5]:
            rig.manager.store_version(0, rig.addr, v, v)
        rig.manager.load_latest(0, rig.addr, 10)  # caches head (5)
        before = rig.stats.direct_hits
        _, (version, _) = rig.manager.load_latest(0, rig.addr, 10)
        assert version == 5
        assert rig.stats.direct_hits == before + 1
        # A cap below the head cannot be answered directly unless exact.
        with pytest.raises(StallSignal):
            rig.manager.load_latest(0, rig.addr, 0)

    def test_pollution_avoidance_keeps_traversed_blocks_out(self):
        rig = Rig()
        # Create a long list, then look up the tail version from a cold cache.
        for v in range(1, 30):
            rig.manager.store_version(0, rig.addr, v, v)
        rig.hierarchy.flush_all()
        rig.manager._direct[0].clear()
        rig.manager.load_version(0, rig.addr, 1)  # walks the whole list
        lst = rig.manager.lists[rig.addr]
        found_line = next(b.paddr >> 6 for b in lst if b.version == 1)
        l1 = rig.hierarchy.l1s[0]
        for b in lst:
            line = b.paddr >> 6
            if line == found_line:
                assert l1.contains(line)  # the requested version installs
            else:
                assert not l1.contains(line)  # traversed blocks do not

    def test_pollution_avoidance_off_installs_traversed_blocks(self):
        rig = Rig(pollution_avoidance=False)
        for v in range(1, 10):
            rig.manager.store_version(0, rig.addr, v, v)
        rig.hierarchy.flush_all()
        rig.manager._direct[0].clear()
        rig.manager.load_version(0, rig.addr, 1)
        lst = rig.manager.lists[rig.addr]
        l1 = rig.hierarchy.l1s[0]
        assert all(l1.contains(b.paddr >> 6) for b in lst)


class TestLifecycle:
    def test_free_ostructure_returns_blocks(self, rig):
        for v in range(1, 6):
            rig.manager.store_version(0, rig.addr, v, v)
        before = rig.free_list.free_count
        freed = rig.manager.free_ostructure(rig.addr)
        assert freed == 5
        assert rig.free_list.free_count == before + 5
        assert rig.manager.versions_of(rig.addr) == []

    def test_free_with_locked_version_faults(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=3)
        with pytest.raises(ProtectionFault):
            rig.manager.free_ostructure(rig.addr)

    def test_free_with_waiters_faults(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.add_waiter(rig.addr, lambda: None)
        with pytest.raises(ProtectionFault):
            rig.manager.free_ostructure(rig.addr)

    def test_free_unknown_address_is_zero(self, rig):
        assert rig.manager.free_ostructure(rig.addr + 4) == 0

    def test_address_reusable_after_free(self, rig):
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.free_ostructure(rig.addr)
        rig.manager.store_version(0, rig.addr, 1, 99)
        assert rig.manager.load_version(0, rig.addr, 1)[1] == 99

    def test_head_bit_check_faults_on_interior_entry(self, rig):
        for v in [1, 2]:
            rig.manager.store_version(0, rig.addr, v, v)
        interior = rig.manager.lists[rig.addr].head.next
        with pytest.raises(ProtectionFault):
            rig.manager.check_head(interior)
