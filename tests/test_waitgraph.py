"""Tests for the wait-for graph deadlock diagnostics."""

from __future__ import annotations

import pytest

from repro import DeadlockError, Machine, MachineConfig, Task, Versioned
from repro.ostruct import isa
from repro.sim.waitgraph import build_wait_graph, find_cycles, post_mortem


def run_to_deadlock(machine):
    with pytest.raises(DeadlockError):
        machine.run()


def test_missing_producer_reported():
    m = Machine(MachineConfig(num_cores=1))
    cell = Versioned(m.heap.alloc_versioned(1))

    def prog(tid):
        yield cell.load_ver(7)  # nobody ever stores version 7

    m.submit([Task(0, prog)])
    run_to_deadlock(m)
    edges = build_wait_graph(m)
    assert len(edges) == 1
    assert edges[0].vaddr == cell.addr
    assert edges[0].holders == frozenset()
    assert find_cycles(m) == []
    report = post_mortem(m)
    assert "no producer" in report
    assert "missing producer" in report


def test_lock_cycle_detected():
    # Classic ABBA: task 1 locks A then wants B; task 2 locks B then wants A.
    m = Machine(MachineConfig(num_cores=2))
    a = Versioned(m.heap.alloc_versioned(1))
    b = Versioned(m.heap.alloc_versioned(1))
    m.manager.store_version(0, a.addr, 0, "A")
    m.manager.store_version(0, b.addr, 0, "B")

    def t1(tid):
        yield a.lock_load_ver(0)
        yield isa.compute(1000)
        yield b.lock_load_ver(0)

    def t2(tid):
        yield b.lock_load_ver(0)
        yield isa.compute(1000)
        yield a.lock_load_ver(0)

    m.submit([Task(1, t1), Task(2, t2)])
    run_to_deadlock(m)
    cycles = find_cycles(m)
    assert cycles == [[1, 2]]
    report = post_mortem(m)
    assert "LOCK CYCLE" in report
    assert "task 1" in report and "task 2" in report


def test_holder_identified_for_latest_wait():
    m = Machine(MachineConfig(num_cores=2))
    cell = Versioned(m.heap.alloc_versioned(1))
    m.manager.store_version(0, cell.addr, 0, "x")

    def holder(tid):
        yield cell.lock_load_ver(0)
        yield cell.load_ver(99)  # now hang on a missing version

    def waiter(tid):
        yield isa.compute(500)
        yield cell.load_last(tid)  # blocked by holder's lock

    m.submit([Task(1, holder), Task(2, waiter)])
    run_to_deadlock(m)
    edges = {e.waiter_task: e for e in build_wait_graph(m)}
    assert edges[2].holders == frozenset({1})
    assert edges[1].holders == frozenset()  # missing version 99


def test_no_blocked_cores():
    m = Machine(MachineConfig(num_cores=1))

    def prog(tid):
        yield isa.compute(1)

    m.submit([Task(0, prog)])
    m.run()
    assert build_wait_graph(m) == []
    assert post_mortem(m) == "no blocked cores"


def test_three_way_cycle():
    m = Machine(MachineConfig(num_cores=3))
    cells = [Versioned(m.heap.alloc_versioned(1)) for _ in range(3)]
    for c in cells:
        m.manager.store_version(0, c.addr, 0, 0)

    def body(tid, mine, want):
        yield mine.lock_load_ver(0)
        yield isa.compute(1000)
        yield want.lock_load_ver(0)

    tasks = [
        Task(1, body, cells[0], cells[1]),
        Task(2, body, cells[1], cells[2]),
        Task(3, body, cells[2], cells[0]),
    ]
    m.submit(tasks)
    run_to_deadlock(m)
    cycles = find_cycles(m)
    assert [1, 2, 3] in cycles


def test_pending_producer_distinguished_from_missing():
    # Task 1 waits on version 2, which live task 2 could still create:
    # the diagnosis must say "producer pending", not "missing producer".
    m = Machine(MachineConfig(num_cores=2))
    cell = Versioned(m.heap.alloc_versioned(1))

    def waiter(tid):
        yield cell.load_ver(2)

    def producer(tid):
        yield isa.compute(10)
        yield cell.load_ver(99)  # stuck itself; never stores v2

    m.submit([Task(1, waiter), Task(2, producer)])
    run_to_deadlock(m)
    edges = {e.waiter_task: e for e in build_wait_graph(m)}
    assert edges[1].holders == frozenset()
    assert edges[1].pending_producers == frozenset({2})
    # Task 2 waits on v99; live task 1 (id <= 99) is a candidate producer.
    assert edges[2].pending_producers == frozenset({1})
    report = post_mortem(m)
    assert "producer pending" in report
    assert "still pending" in report
    assert "missing producer" not in report


def test_waiter_not_its_own_pending_producer():
    # A task cannot unblock itself: with no other live task the wait is
    # a true missing producer even though the waiter's id is in range.
    m = Machine(MachineConfig(num_cores=1))
    cell = Versioned(m.heap.alloc_versioned(1))

    def prog(tid):
        yield cell.load_ver(5)

    m.submit([Task(3, prog)])
    run_to_deadlock(m)
    (edge,) = build_wait_graph(m)
    assert edge.pending_producers == frozenset()
    assert "no producer" in post_mortem(m)


def test_out_of_range_queued_task_not_a_producer():
    # Rule 1 (no version above your own id) bounds the candidate set:
    # only live tasks with id <= the requested version qualify.
    m = Machine(MachineConfig(num_cores=1))
    cell = Versioned(m.heap.alloc_versioned(1))

    def prog(tid):
        yield cell.load_ver(2)

    m.submit([Task(4, prog)])
    m.tracker.register(9)  # queued, live, but 9 > 2: cannot produce v2
    run_to_deadlock(m)
    (edge,) = build_wait_graph(m)
    assert edge.pending_producers == frozenset()
    assert "no producer" in post_mortem(m)


def test_two_disjoint_cycles_both_reported():
    # Four cores, two independent ABBA pairs: the detector must report
    # both cycles, not stop at the first.
    m = Machine(MachineConfig(num_cores=4))
    cells = [Versioned(m.heap.alloc_versioned(1)) for _ in range(4)]
    for c in cells:
        m.manager.store_version(0, c.addr, 0, 0)

    def body(tid, mine, want):
        yield mine.lock_load_ver(0)
        yield isa.compute(1000)
        yield want.lock_load_ver(0)

    tasks = [
        Task(1, body, cells[0], cells[1]),
        Task(2, body, cells[1], cells[0]),
        Task(3, body, cells[2], cells[3]),
        Task(4, body, cells[3], cells[2]),
    ]
    m.submit(tasks)
    run_to_deadlock(m)
    cycles = find_cycles(m)
    assert sorted(cycles) == [[1, 2], [3, 4]]
    report = post_mortem(m)
    assert report.count("LOCK CYCLE") == 2


def test_overlapping_cycles_from_synthetic_edges():
    # One task participating in two cycles (1->2->1 and 1->3->1) — built
    # from synthetic edges, since a single in-order core cannot wait on
    # two addresses at once.
    from repro.sim.waitgraph import WaitEdge, cycles_from_edges

    edges = [
        WaitEdge(0, 1, "lock_load_version", 0x10, frozenset({2, 3})),
        WaitEdge(1, 2, "lock_load_version", 0x14, frozenset({1})),
        WaitEdge(2, 3, "lock_load_version", 0x18, frozenset({1})),
    ]
    cycles = cycles_from_edges(edges)
    assert sorted(cycles) == [[1, 2], [1, 3]]


def test_nested_cycle_within_larger_cycle():
    # 1->2->3->1 plus the chord 2->1: two overlapping simple cycles.
    from repro.sim.waitgraph import WaitEdge, cycles_from_edges

    edges = [
        WaitEdge(0, 1, "lock_load_version", 0x10, frozenset({2})),
        WaitEdge(1, 2, "lock_load_version", 0x14, frozenset({3, 1})),
        WaitEdge(2, 3, "lock_load_version", 0x18, frozenset({1})),
    ]
    cycles = cycles_from_edges(edges)
    assert sorted(cycles) == [[1, 2], [1, 2, 3]]


def test_edges_without_tasks_are_ignored_by_cycle_detection():
    from repro.sim.waitgraph import WaitEdge, cycles_from_edges

    edges = [
        WaitEdge(0, None, "load_version", 0x10, frozenset({1})),
        WaitEdge(1, 1, "load_version", 0x14, frozenset()),
    ]
    assert cycles_from_edges(edges) == []


def test_backpressure_edge_description():
    from repro.sim.waitgraph import WaitEdge

    edge = WaitEdge(
        2, 9, "store_version", 0x40, frozenset(), backpressure=True
    )
    text = edge.describe()
    assert "free-list backpressure" in text
    assert "reclamation" in text
