"""Golden-trace determinism: the timing-wheel kernel vs the heapq kernel.

The simulator's contract is that events fire in exact ``(time, sequence)``
order, so any kernel honouring it produces *byte-identical* results.  The
fixture file ``tests/fixtures/golden_traces.json`` holds
``RunResult.to_json()`` rows (cycles plus the full ``SimStats.snapshot()``)
for a small basket of workloads, generated on the original heapq-of-tuples
kernel **before** the timing-wheel rewrite landed.  These tests re-run the
same specs on the current kernel and require the serialized rows to match
character for character — any drift in event ordering (a wheel bucket
firing out of sequence, an overflow event migrating late, a solo-event
shortcut skipping a cycle) shows up as a cycle-count or stall-counter diff.

The basket deliberately covers every kernel path:

- a sequential (1-core) run — the solo-event fast path, where exactly one
  event is ever pending;
- 4- and 8-core versioned runs — wheel buckets with same-cycle batching,
  waiter wake-ups, coherence traffic;
- a regular (matmul) run — long compute delays that overflow the wheel
  into the far-future heap tier.

Regenerate (only when *workload semantics* legitimately change — never to
paper over a kernel ordering bug)::

    PYTHONPATH=src python tests/test_engine_equivalence.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import TABLE2
from repro.harness.presets import QUICK
from repro.harness.runner import make_spec
from repro.harness.sweeps import execute, irregular_spec, regular_spec

FIXTURE = Path(__file__).parent / "fixtures" / "golden_traces.json"

#: label -> RunSpec.  Labels are the fixture keys; keep them stable.
GOLDEN_SPECS = {
    "linked_list-large-4R1W-versioned-8c": irregular_spec(
        "linked_list", TABLE2, QUICK, "large", "4R-1W", "versioned", 8
    ),
    "hash_table-small-1R1W-versioned-4c": irregular_spec(
        "hash_table", TABLE2, QUICK, "small", "1R-1W", "versioned", 4
    ),
    "binary_tree-small-4R1W-unversioned-1c": irregular_spec(
        "binary_tree", TABLE2, QUICK, "small", "4R-1W", "unversioned"
    ),
    "matmul-small-versioned-4c": regular_spec(
        "matmul", TABLE2, QUICK, "small", "versioned", 4
    ),
}


def _row(label: str) -> str:
    """One canonical serialized result row for ``label``."""
    return json.dumps(execute(GOLDEN_SPECS[label]).to_json(), sort_keys=True)


def _fixture() -> dict[str, str]:
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("label", sorted(GOLDEN_SPECS))
def test_kernel_reproduces_heapq_golden_trace(label):
    golden = _fixture()
    assert label in golden, (
        f"fixture missing {label!r}; regenerate with "
        f"PYTHONPATH=src python {Path(__file__).name} --regen"
    )
    assert _row(label) == golden[label], (
        f"{label}: stats row diverged from the heapq-kernel golden trace "
        f"— the event kernel is not order-preserving"
    )


def _unfused(spec):
    """The same spec pinned to the per-op execution tier."""
    params = dict(spec.params)
    params["config"] = params["config"].with_fused(False)
    return make_spec(spec.fn, **params)


@pytest.mark.parametrize("label", sorted(GOLDEN_SPECS))
def test_unfused_tier_reproduces_heapq_golden_trace(label):
    """The per-op tier must hit the very same golden rows as the fused one.

    The fixtures were generated before macro-op fusion existed, so the
    default-tier test above already proves fused == golden; this one
    proves ``fused=False`` == golden, closing the fused == unfused
    byte-identity triangle on the committed traces (no regeneration).
    """
    golden = _fixture()
    row = json.dumps(execute(_unfused(GOLDEN_SPECS[label])).to_json(), sort_keys=True)
    assert row == golden[label], (
        f"{label}: per-op (fused=False) tier diverged from the golden "
        f"trace the fused tier reproduces — the execution tiers are not "
        f"byte-identical"
    )


def test_fixture_has_no_orphans():
    """Every committed row corresponds to a spec still in the basket."""
    assert set(_fixture()) == set(GOLDEN_SPECS)


def _regen() -> None:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    rows = {label: _row(label) for label in sorted(GOLDEN_SPECS)}
    FIXTURE.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(rows)} golden rows to {FIXTURE}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
