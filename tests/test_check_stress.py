"""Stress-harness tests: checked workload runs across random schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.stress import (
    IRREGULAR,
    check_irregular,
    check_regular,
    checked_config,
    run_check,
)
from repro.config import TABLE2
from repro.harness.presets import QUICK
from repro.workloads import opgen


def test_checked_config_flips_flag_only():
    cfg = checked_config(TABLE2)
    assert cfg.checked is True
    assert cfg.num_cores == TABLE2.num_cores
    assert TABLE2.checked is False  # original untouched


@pytest.mark.parametrize("name", sorted(IRREGULAR))
def test_irregular_clean(name):
    row = check_irregular(name, seed=3, elements=12, n_ops=24, cores=2)
    assert row["problems"] == []
    assert row["versioned_ops"] > 0


@pytest.mark.parametrize("name", ["matmul", "levenshtein"])
def test_regular_clean(name):
    row = check_regular(name, seed=3, size=6, cores=2)
    assert row["problems"] == []


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=5, deadline=None)
def test_random_schedules_clean(seed):
    # Property: no schedule diverges from the reference model.
    row = check_irregular(
        "linked_list",
        seed=seed,
        elements=8,
        n_ops=16,
        cores=2,
        mix=opgen.WRITE_INTENSIVE,
    )
    assert row["problems"] == []


def test_run_check_smoke():
    result = run_check(QUICK, TABLE2, budget=16, schedules=1)
    assert result["violations"] == 0
    assert result["ops_checked"] > 0
    rows = result["rows"]
    # One schedule per irregular workload plus the two regular ones.
    assert {r["workload"] for r in rows} == set(IRREGULAR) | {
        "matmul",
        "levenshtein",
    }
    assert all(r["problems"] == [] for r in rows)
    assert "0 violation" in result["text"] or "zero" in result["text"]
