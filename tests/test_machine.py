"""Integration tests: cores executing task programs on the full machine."""

from __future__ import annotations

import pytest

from repro import (
    DeadlockError,
    Machine,
    MachineConfig,
    ProtectionFault,
    SimulationError,
    StaticScheduler,
    Task,
    Versioned,
)
from repro.ostruct import isa


def run_single(machine, body, *args, task_id=0):
    task = Task(task_id, body, *args)
    machine.submit([task])
    machine.run()
    return task


class TestConventionalOps:
    def test_load_store_roundtrip(self, uni_machine):
        addr = uni_machine.heap.alloc(8)

        def prog(tid):
            yield isa.store(addr, 123)
            return (yield isa.load(addr))

        task = run_single(uni_machine, prog)
        assert task.result == 123
        assert uni_machine.stats.loads == 1
        assert uni_machine.stats.stores == 1

    def test_uninitialised_memory_reads_zero(self, uni_machine):
        addr = uni_machine.heap.alloc(8)

        def prog(tid):
            return (yield isa.load(addr))

        assert run_single(uni_machine, prog).result == 0

    def test_compute_charges_issue_width(self):
        m = Machine(MachineConfig(num_cores=1, issue_width=2))

        def prog(tid):
            yield isa.compute(10)

        start_overhead = 20 + 0  # TASK_BEGIN_CYCLES
        run_single(m, prog)
        # 10 instructions at 2/cycle = 5 cycles, after task-begin overhead.
        assert m.cycles == start_overhead + 5

    def test_conventional_store_to_versioned_page_faults(self, uni_machine):
        vaddr = uni_machine.heap.alloc_versioned(1)

        def prog(tid):
            yield isa.store(vaddr, 1)

        with pytest.raises(ProtectionFault):
            run_single(uni_machine, prog)


class TestVersionedExecution:
    def test_cross_core_producer_consumer_stalls_then_wakes(self):
        m = Machine(MachineConfig(num_cores=2))
        cell = Versioned(m.heap.alloc_versioned(1))

        def producer(tid):
            yield isa.compute(2000)  # delay so the consumer stalls first
            yield cell.store_ver(0, 7)

        def consumer(tid):
            return (yield cell.load_ver(0))

        tasks = [Task(0, producer), Task(1, consumer)]
        m.submit(tasks)
        stats = m.run()
        assert tasks[1].result == 7
        assert stats.versioned_stalls >= 1
        assert stats.versioned_stall_cycles > 0

    def test_lock_handoff_between_tasks(self):
        # The Figure 1 ordered-entry pattern: each task exact-locks its own
        # version and the unlock renames to the successor's version.
        m = Machine(MachineConfig(num_cores=2))
        cell = Versioned(m.heap.alloc_versioned(1))

        def t0(tid):
            yield cell.store_ver(0, 100)
            yield cell.lock_load_ver(tid)  # version 0
            yield isa.compute(5000)
            yield cell.unlock_ver(tid, tid + 1)  # rename to version 1

        def t1(tid):
            value = yield cell.lock_load_ver(tid)  # waits for version 1
            yield cell.unlock_ver(tid)
            return value

        tasks = [Task(0, t0), Task(1, t1)]
        m.submit(tasks)
        m.run()
        # Task 1 saw the renamed version carrying task 0's value.
        assert tasks[1].result == 100
        assert m.manager.versions_of(cell.addr) == [1, 0]

    def test_load_latest_reevaluates_after_unlock(self):
        # A waiter blocked on a locked latest must observe a version
        # created *while it was waiting* if that version is newer.
        m = Machine(MachineConfig(num_cores=2))
        cell = Versioned(m.heap.alloc_versioned(1))

        def t0(tid):
            yield cell.store_ver(0, 1)
            yield cell.lock_load_ver(0)
            yield isa.compute(4000)
            yield cell.store_ver(1, 2)  # newer version appears
            yield cell.unlock_ver(0)

        def t1(tid):
            yield isa.compute(1000)  # arrive while version 0 is locked
            ver, value = yield cell.load_last(tid)
            return (ver, value)

        tasks = [Task(0, t0), Task(1, t1)]
        m.submit(tasks)
        stats = m.run()
        assert tasks[1].result == (1, 2)
        assert stats.versioned_stalls >= 1  # t1 really blocked on the lock

    def test_deadlock_detected_with_diagnostics(self):
        m = Machine(MachineConfig(num_cores=1))
        cell = Versioned(m.heap.alloc_versioned(1))

        def prog(tid):
            yield cell.load_ver(99)  # never created

        m.submit([Task(0, prog)])
        with pytest.raises(DeadlockError) as exc:
            m.run()
        assert "blocked on load_version" in str(exc.value)

    def test_self_deadlock_on_double_lock(self):
        m = Machine(MachineConfig(num_cores=1))
        cell = Versioned(m.heap.alloc_versioned(1))

        def prog(tid):
            yield cell.store_ver(0, 1)
            yield cell.lock_load_ver(0)
            yield cell.lock_load_ver(0)  # stalls forever on own lock

        m.submit([Task(0, prog)])
        with pytest.raises(DeadlockError):
            m.run()

    def test_figure10_injected_latency_slows_versioned_ops(self):
        def build(extra):
            m = Machine(MachineConfig(num_cores=1, versioned_op_extra_latency=extra))
            cell = Versioned(m.heap.alloc_versioned(1))

            def prog(tid):
                for v in range(50):
                    yield cell.store_ver(v, v)
                for v in range(50):
                    yield cell.load_ver(v)

            m.submit([Task(0, prog)])
            m.run()
            return m.cycles

        assert build(10) > build(0)

    def test_injected_latency_does_not_slow_conventional_ops(self):
        def build(extra):
            m = Machine(MachineConfig(num_cores=1, versioned_op_extra_latency=extra))
            addr = m.heap.alloc(400)

            def prog(tid):
                for i in range(50):
                    yield isa.store(addr + 8 * i, i)

            m.submit([Task(0, prog)])
            m.run()
            return m.cycles

        assert build(10) == build(0)


class TestTaskManagement:
    def test_tasks_run_in_queue_order_per_core(self, uni_machine):
        order = []

        def body(tid):
            order.append(tid)
            yield isa.compute(1)

        uni_machine.submit([Task(i, body) for i in range(5)])
        uni_machine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_round_robin_spreads_tasks(self):
        m = Machine(MachineConfig(num_cores=4))
        ran_on = {}

        def body(tid):
            yield isa.compute(1)

        tasks = [Task(i, body) for i in range(8)]
        m.submit(tasks, StaticScheduler("round_robin"))
        for core in m.cores:
            for t in core.queue:
                ran_on[t.task_id] = core.core_id
        assert ran_on == {i: i % 4 for i in range(8)}

    def test_block_scheduler(self):
        plan = StaticScheduler("block").plan(8, 4)
        assert plan == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_tracker_counts(self, machine):
        def body(tid):
            yield isa.compute(1)

        machine.submit([Task(i, body) for i in range(6)])
        stats = machine.run()
        assert stats.tasks_started == 6
        assert stats.tasks_finished == 6
        assert machine.tracker.active_ids == frozenset()

    def test_machine_single_use(self, uni_machine):
        def body(tid):
            yield isa.compute(1)

        uni_machine.submit([Task(0, body)])
        uni_machine.run()
        with pytest.raises(SimulationError):
            uni_machine.run()

    def test_run_without_submit_rejected(self, uni_machine):
        with pytest.raises(SimulationError):
            uni_machine.run()

    def test_max_cycles_stops_early_without_deadlock_error(self):
        m = Machine(MachineConfig(num_cores=1))

        def prog(tid):
            for _ in range(1000):
                yield isa.compute(100)

        m.submit([Task(0, prog)])
        m.run(max_cycles=500)
        assert m.cycles == 500


class TestRWLock:
    def test_readers_share(self):
        m = Machine(MachineConfig(num_cores=2))
        lock = m.new_rwlock()
        hold_times = {}

        def reader(tid):
            yield isa.rw_acquire(lock, "r")
            hold_times[tid] = (m.sim.now, None)
            yield isa.compute(1000)
            hold_times[tid] = (hold_times[tid][0], m.sim.now)
            yield isa.rw_release(lock, "r")

        tasks = [Task(0, reader), Task(1, reader)]
        m.submit(tasks)
        m.run()
        (a0, e0), (a1, e1) = hold_times[0], hold_times[1]
        assert a0 < e1 and a1 < e0  # overlapping critical sections

    def test_writer_excludes_writer(self):
        m = Machine(MachineConfig(num_cores=2))
        lock = m.new_rwlock()
        spans = {}

        def writer(tid):
            yield isa.rw_acquire(lock, "w")
            start = m.sim.now
            yield isa.compute(1000)
            spans[tid] = (start, m.sim.now)
            yield isa.rw_release(lock, "w")

        tasks = [Task(0, writer), Task(1, writer)]
        m.submit(tasks)
        stats = m.run()
        (s0, e0), (s1, e1) = spans[0], spans[1]
        assert e0 <= s1 or e1 <= s0  # disjoint critical sections
        assert stats.rwlock_write_acquires == 2
        assert stats.rwlock_wait_cycles > 0

    def test_writer_excludes_reader(self):
        m = Machine(MachineConfig(num_cores=2))
        lock = m.new_rwlock()
        events = []

        def writer(tid):
            yield isa.rw_acquire(lock, "w")
            events.append(("w-in", m.sim.now))
            yield isa.compute(2000)
            events.append(("w-out", m.sim.now))
            yield isa.rw_release(lock, "w")

        def reader(tid):
            yield isa.compute(100)  # let the writer get there first
            yield isa.rw_acquire(lock, "r")
            events.append(("r-in", m.sim.now))
            yield isa.rw_release(lock, "r")

        m.submit([Task(0, writer), Task(1, reader)])
        m.run()
        w_out = next(t for e, t in events if e == "w-out")
        r_in = next(t for e, t in events if e == "r-in")
        assert r_in >= w_out

    def test_release_without_hold_rejected(self):
        m = Machine(MachineConfig(num_cores=1))
        lock = m.new_rwlock()

        def prog(tid):
            yield isa.rw_release(lock, "r")

        m.submit([Task(0, prog)])
        with pytest.raises(SimulationError):
            m.run()


class TestAllocator:
    def test_regions_disjoint(self, machine):
        a = machine.heap.alloc(64)
        b = machine.heap.alloc_versioned(16)
        assert abs(a - b) > 1 << 20

    def test_versioned_allocation_marks_pages(self, machine):
        addr = machine.heap.alloc_versioned(4)
        assert machine.page_table.is_versioned(addr)
        assert machine.page_table.is_versioned(addr + 12)

    def test_alignment(self, machine):
        machine.heap.alloc(3)
        b = machine.heap.alloc(8, align=64)
        assert b % 64 == 0

    def test_usage_accounting(self, machine):
        machine.heap.alloc(100)
        machine.heap.alloc_versioned(25)
        assert machine.heap.conventional_used >= 100
        assert machine.heap.versioned_used >= 100  # 25 words * 4 bytes

    def test_bad_sizes_rejected(self, machine):
        from repro import AllocationError

        with pytest.raises(AllocationError):
            machine.heap.alloc(0)
        with pytest.raises(AllocationError):
            machine.heap.alloc_versioned(-1)
