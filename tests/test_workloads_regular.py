"""Tests for the regular workloads (matmul, Levenshtein) and rwlock tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineConfig
from repro.workloads import levenshtein, matmul, rwlock_tree
from repro.workloads.opgen import (
    INSERT,
    LOOKUP,
    SCAN,
    OpMix,
    generate_ops,
    initial_keys,
)

CFG = MachineConfig()


class TestMatmul:
    @pytest.mark.parametrize("cores", [1, 4, 16])
    def test_matches_numpy(self, cores):
        a, b, c = matmul.make_inputs(10, seed=11)
        expected = matmul.reference(a, b, c)
        run = matmul.run_versioned(CFG, 10, cores, seed=11)
        assert np.array_equal(run.final_state, expected)

    def test_unversioned_matches_numpy(self):
        a, b, c = matmul.make_inputs(8, seed=7)
        run = matmul.run_unversioned(CFG, 8, seed=7)
        assert np.array_equal(run.final_state, matmul.reference(a, b, c))

    def test_parallel_beats_sequential_versioned(self):
        v1 = matmul.run_versioned(CFG, 12, 1, seed=3)
        v16 = matmul.run_versioned(CFG, 12, 16, seed=3)
        assert v16.cycles < v1.cycles

    def test_dataflow_pipelining_stalls_consumers(self):
        # R-row tasks block on T elements at least sometimes.
        run = matmul.run_versioned(CFG, 10, 8, seed=5)
        assert run.stats.versioned_stalls > 0

    def test_each_element_written_once(self):
        # I-structure discipline: versions created == |T| + |R|.
        n = 8
        run = matmul.run_versioned(CFG, n, 4, seed=9)
        assert run.stats.versions_created == 2 * n * n

    def test_size_one(self):
        a, b, c = matmul.make_inputs(1, seed=2)
        run = matmul.run_versioned(CFG, 1, 1, seed=2)
        assert run.final_state[0, 0] == matmul.reference(a, b, c)[0, 0]


class TestLevenshtein:
    @pytest.mark.parametrize("cores", [1, 4, 16])
    def test_matches_reference(self, cores):
        s1, s2 = levenshtein.make_strings(20, seed=13)
        expected = levenshtein.reference(s1, s2)
        run = levenshtein.run_versioned(CFG, 20, cores, seed=13)
        assert run.final_state == expected

    def test_unversioned_matches_reference(self):
        s1, s2 = levenshtein.make_strings(16, seed=4)
        run = levenshtein.run_unversioned(CFG, 16, seed=4)
        assert run.final_state == levenshtein.reference(s1, s2)

    def test_reference_known_values(self):
        assert levenshtein.reference([1, 2, 3], [1, 2, 3]) == 0
        assert levenshtein.reference([1, 2, 3], [1, 9, 3]) == 1
        assert levenshtein.reference([], [1, 2]) == 2
        assert levenshtein.reference([1, 2], []) == 2

    def test_wavefront_parallelism(self):
        v1 = levenshtein.run_versioned(CFG, 32, 1, seed=6)
        v8 = levenshtein.run_versioned(CFG, 32, 8, seed=6)
        assert v8.cycles < v1.cycles

    @given(
        s1=st.lists(st.integers(0, 3), min_size=0, max_size=12),
        s2=st.lists(st.integers(0, 3), min_size=0, max_size=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_reference_is_a_metric(self, s1, s2):
        d = levenshtein.reference(s1, s2)
        assert d == levenshtein.reference(s2, s1)  # symmetry
        assert (d == 0) == (s1 == s2)  # identity
        assert d <= max(len(s1), len(s2))  # upper bound
        assert d >= abs(len(s1) - len(s2))  # lower bound


class TestRWLockTree:
    def test_results_are_linearizable_types(self):
        init = initial_keys(60, 240, seed=8)
        ops = generate_ops(48, OpMix(3, 1, "3S-1W"), 240, seed=8,
                           read_op=SCAN, scan_range=4)
        ops = [(op if op != "delete" else INSERT, k, e) for op, k, e in ops]
        run = rwlock_tree.run_rwlock(CFG, init, ops, 8)
        for (op, _, _), result in zip(ops, run.results):
            if op == SCAN:
                assert isinstance(result, list)
                assert result == sorted(result)
            else:
                assert isinstance(result, bool)
        # The final tree is a well-formed BST (sorted in-order walk).
        assert run.final_state == sorted(run.final_state)

    def test_single_core_matches_sequential_order(self):
        # On one core tasks run in id order: exact oracle equivalence.
        from repro.workloads.opgen import reference_results

        init = initial_keys(40, 160, seed=9)
        ops = generate_ops(40, OpMix(1, 1, "1R-1W"), 160, seed=9)
        expected_results, expected_final = reference_results(init, ops)
        run = rwlock_tree.run_rwlock(CFG, init, ops, 1)
        assert run.results == expected_results
        assert run.final_state == expected_final

    def test_final_contents_consistent_with_reported_results(self):
        # Whatever interleaving happened, an insert that returned True
        # and was never deleted must be present.
        init = [10, 20, 30]
        ops = [(INSERT, k, 0) for k in (1, 2, 3, 4, 5)]
        run = rwlock_tree.run_rwlock(CFG, init, ops, 4)
        assert all(run.results)
        assert run.final_state == [1, 2, 3, 4, 5, 10, 20, 30]

    def test_lock_stats_populated(self):
        init = initial_keys(30, 120, seed=10)
        ops = generate_ops(32, OpMix(1, 1, "1R-1W"), 120, seed=10)
        run = rwlock_tree.run_rwlock(CFG, init, ops, 8)
        stats = run.stats
        assert stats.rwlock_read_acquires + stats.rwlock_write_acquires == len(ops)

    def test_unsupported_op_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            rwlock_tree.run_rwlock(CFG, [1], [("bogus", 1, 0)], 2)
