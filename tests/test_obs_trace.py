"""Tests for span recording, Perfetto export and critical-path analysis."""

from __future__ import annotations

import json

import pytest

from repro import Machine, MachineConfig, Task, Versioned
from repro.faults import FaultSpec
from repro.obs import SpanRecorder, chrome_trace, critical_path, dependency_edges
from repro.obs.critpath import format_critical_path
from repro.obs.perfetto import write_chrome_trace
from repro.ostruct import isa
from repro.sim.trace import Tracer


def simple_machine(num_cores: int = 2, **kw):
    m = Machine(MachineConfig(num_cores=num_cores, **kw))
    cell = Versioned(m.heap.alloc_versioned(1))
    return m, cell


def chain_machine():
    """Three tasks in a produce→consume chain: 1 → 2 → 3."""
    m, cell = simple_machine()

    def t1(tid):
        yield isa.compute(20)
        yield cell.store_ver(1, 10)

    def t2(tid):
        v = yield cell.load_ver(1)
        yield isa.compute(20)
        yield cell.store_ver(2, v + 1)

    def t3(tid):
        v = yield cell.load_ver(2)
        return v

    tasks = [Task(1, t1), Task(2, t2), Task(3, t3)]
    m.submit(tasks)
    return m, tasks


class TestSpanRecorder:
    def test_task_spans_cover_execution(self):
        m, tasks = chain_machine()
        rec = SpanRecorder(m)
        m.run()
        rec.finish()
        assert len(rec.task_spans) == 3
        by_task = {s.task: s for s in rec.task_spans}
        assert set(by_task) == {1, 2, 3}
        for span in rec.task_spans:
            assert span.outcome == "finished"
            assert span.end is not None and span.end > span.start
        # The chain serialises: task 2 cannot finish before task 1 stores.
        assert by_task[2].end > by_task[1].start

    def test_produce_consume_edges(self):
        m, tasks = chain_machine()
        rec = SpanRecorder(m)
        m.run()
        assert dependency_edges(rec) == {(1, 2), (2, 3)}

    def test_latest_family_consumes_resolved_version(self):
        m, cell = simple_machine()

        def producer(tid):
            yield cell.store_ver(1, 42)

        def consumer(tid):
            v, val = yield cell.load_last(5)  # resolves to version 1
            return (v, val)

        tasks = [Task(1, producer), Task(2, consumer)]
        m.submit(tasks)
        rec = SpanRecorder(m)
        m.run()
        assert tasks[1].result == (1, 42)
        assert (1, 2) in dependency_edges(rec)

    def test_gc_spans_recorded_under_pressure(self):
        m = Machine(MachineConfig(
            num_cores=1, free_list_blocks=8, gc_watermark=4,
            refill_blocks=8, free_list_refills=2,
        ))
        cell = Versioned(m.heap.alloc_versioned(1))

        def writer(tid):
            yield cell.store_ver(tid, tid)

        m.submit([Task(i, writer) for i in range(1, 40)])
        rec = SpanRecorder(m)
        m.run()
        rec.finish()
        phases = [s for s in rec.gc_spans if s.kind == "phase"]
        assert phases
        for span in phases:
            assert span.end is not None and span.end >= span.start
        assert m.stats.gc_phases >= len(phases)

    def test_recovery_events_from_watchdog_kick(self):
        # A dropped wake-up parks a consumer forever; the armed watchdog
        # notices the stalled machine and re-delivers the wake.
        m = Machine(MachineConfig(
            num_cores=2, watchdog_cycles=500,
            faults=(FaultSpec(kind="drop-wake", at=1, span=2),),
        ))
        cell = Versioned(m.heap.alloc_versioned(1))

        def producer(tid):
            yield isa.compute(200)
            yield cell.store_ver(1, 7)

        def consumer(tid):
            v = yield cell.load_ver(1)
            return v

        tasks = [Task(1, producer), Task(2, consumer)]
        m.submit(tasks)
        rec = SpanRecorder(m)
        m.run()
        assert tasks[1].result == 7
        events = {e.event for e in rec.recovery_events}
        assert "trip" in events
        assert "kick" in events

    def test_aborted_task_span_outcome(self):
        m = Machine(MachineConfig(
            num_cores=2, watchdog_cycles=1_000, watchdog_retries=4,
        ))
        a = Versioned(m.heap.alloc_versioned(1))
        b = Versioned(m.heap.alloc_versioned(1))
        m.manager.store_version(0, a.addr, 0, 1)
        m.manager.store_version(0, b.addr, 0, 2)

        def t1(tid):
            yield a.lock_load_ver(0)
            yield isa.compute(50)
            yield b.lock_load_ver(0)
            yield a.unlock_ver(0)
            yield b.unlock_ver(0)

        def t2(tid):
            yield b.lock_load_ver(0)
            yield isa.compute(50)
            yield a.lock_load_ver(0)
            yield b.unlock_ver(0)
            yield a.unlock_ver(0)

        m.submit([Task(1, t1), Task(2, t2)])
        rec = SpanRecorder(m)
        m.run()  # ABBA cycle recovered by abort-and-retry
        aborted = [s for s in rec.task_spans if s.outcome == "aborted"]
        assert aborted
        victim = aborted[0].task
        # The victim re-ran to completion: a later finished span exists.
        assert any(
            s.task == victim and s.outcome == "finished"
            and s.start >= aborted[0].end
            for s in rec.task_spans
        )
        assert any(e.event == "abort" for e in rec.recovery_events)

    def test_second_recorder_rejected(self):
        m, _ = simple_machine()
        SpanRecorder(m)
        with pytest.raises(RuntimeError):
            SpanRecorder(m)

    def test_detach_restores_all_hooks(self):
        m, cell = simple_machine()
        orig_load_latest = m.manager.load_latest
        orig_lock_load_latest = m.manager.lock_load_latest
        rec = SpanRecorder(m)
        rec.detach()
        rec.detach()  # idempotent
        assert m.trace_hook is None
        assert m.task_hook is None
        assert m.recovery_hook is None
        assert m.gc.phase_hooks == []
        # Bound methods compare equal when they rebind the same function;
        # detach removed our instance-attribute wrappers entirely.
        assert "load_latest" not in vars(m.manager)
        assert m.manager.load_latest == orig_load_latest
        assert m.manager.lock_load_latest == orig_lock_load_latest
        SpanRecorder(m)  # slot is free again

    def test_coexists_with_user_tracer(self):
        m, cell = simple_machine()
        user = Tracer(m, only_versioned=True)
        rec = SpanRecorder(m)

        def prog(tid):
            yield cell.store_ver(1, 1)

        m.submit([Task(1, prog)])
        m.run()
        assert [e.op for e in user.events()] == ["store_version"]
        assert rec.task_spans and rec.produces


class TestPerfettoExport:
    def _recorded_run(self):
        m, tasks = chain_machine()
        rec = SpanRecorder(m)
        m.run()
        rec.finish()
        return rec

    def test_round_trips_as_chrome_trace_json(self, tmp_path):
        rec = self._recorded_run()
        path = write_chrome_trace(rec, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "i", "M")
            assert "pid" in ev and "name" in ev
            if ev["ph"] == "X":
                assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert doc == chrome_trace(rec)  # file is the exact document

    def test_thread_metadata_names_all_tracks(self):
        rec = self._recorded_run()
        doc = chrome_trace(rec)
        meta = {
            ev["args"]["name"]: ev.get("tid")
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        cores = rec.machine.config.num_cores
        assert meta["gc"] == cores
        assert meta["watchdog"] == cores + 1
        for core_id in range(cores):
            assert meta[f"core {core_id}"] == core_id

    def test_op_events_nest_inside_their_task_span(self):
        rec = self._recorded_run()
        doc = chrome_trace(rec)
        spans = {}
        for ev in doc["traceEvents"]:
            if ev.get("cat") == "task":
                spans.setdefault(ev["args"]["task"], []).append(
                    (ev["ts"], ev["ts"] + ev["dur"])
                )
        assert spans
        for ev in doc["traceEvents"]:
            if ev.get("cat") != "op" or ev["args"]["task"] is None:
                continue
            lo, hi = ev["ts"], ev["ts"] + ev["dur"]
            assert any(
                start <= lo and hi <= end
                for start, end in spans[ev["args"]["task"]]
            ), f"op at [{lo},{hi}] outside task {ev['args']['task']} spans"

    def test_stalls_and_gc_emit_instants_and_spans(self):
        m = Machine(MachineConfig(
            num_cores=1, free_list_blocks=8, gc_watermark=4,
            refill_blocks=8, free_list_refills=2,
        ))
        cell = Versioned(m.heap.alloc_versioned(1))

        def writer(tid):
            yield cell.store_ver(tid, tid)

        m.submit([Task(i, writer) for i in range(1, 40)])
        rec = SpanRecorder(m)
        m.run()
        rec.finish()
        doc = chrome_trace(rec)
        cats = {ev.get("cat") for ev in doc["traceEvents"]}
        assert "gc" in cats
        gc_tid = m.config.num_cores
        assert all(
            ev["tid"] == gc_tid
            for ev in doc["traceEvents"] if ev.get("cat") == "gc"
        )


class TestCriticalPath:
    def test_chain_is_the_critical_path(self):
        m, tasks = chain_machine()
        rec = SpanRecorder(m)
        m.run()
        rec.finish()
        result = critical_path(rec)
        assert result["chain"] == [1, 2, 3]
        assert result["tasks"] == 3
        assert result["edges"] == 2
        weights = rec.task_cycles()
        assert result["length_cycles"] == sum(weights.values())
        assert result["makespan"] == m.sim.now
        assert result["total_task_cycles"] == sum(weights.values())

    def test_independent_tasks_have_no_edges(self):
        m, cell = simple_machine()

        def prog(tid):
            yield cell.store_ver(tid, tid)

        m.submit([Task(1, prog), Task(2, prog)])
        rec = SpanRecorder(m)
        m.run()
        rec.finish()
        result = critical_path(rec)
        assert result["edges"] == 0
        assert len(result["chain"]) == 1  # heaviest single task

    def test_format_renders_tables(self):
        m, tasks = chain_machine()
        rec = SpanRecorder(m)
        m.run()
        rec.finish()
        text = format_critical_path(critical_path(rec), rec)
        assert "critical path" in text
        assert "longest chain" in text
