"""Tests for the shadowed/pending-list garbage collector (Section III-B)."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.errors import SimulationError
from tests.test_manager import Rig


@pytest.fixture
def rig():
    # Small free list so watermark logic is reachable.
    return Rig(free_list_blocks=64, gc_watermark=8)


def stored(rig, n, start=1):
    for v in range(start, start + n):
        rig.manager.store_version(0, rig.addr, v, v)


class TestShadowRegistration:
    def test_new_version_shadows_previous(self, rig):
        stored(rig, 2)
        assert rig.gc.shadowed_count == 1
        assert rig.stats.shadowed_registered == 1

    def test_first_version_shadows_nothing(self, rig):
        stored(rig, 1)
        assert rig.gc.shadowed_count == 0

    def test_block_registered_only_once(self, rig):
        stored(rig, 2)
        # Re-registering the same block is a no-op.
        lst = rig.manager.lists[rig.addr]
        old = next(b for b in lst if b.version == 1)
        rig.gc.register_shadowed(old, lst, 2)
        assert rig.gc.shadowed_count == 1

    def test_rename_on_unlock_shadows_old_version(self, rig):
        stored(rig, 1)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=1)
        rig.manager.unlock_version(0, rig.addr, 1, task_id=1, new_version=2)
        assert rig.gc.shadowed_count == 1


class TestPhases:
    def test_phase_reclaims_when_no_active_tasks(self, rig):
        stored(rig, 5)  # versions 1..5; 1..4 shadowed
        before = rig.free_list.free_count
        rig.gc.start_phase()
        assert rig.stats.gc_phases == 1
        assert rig.stats.gc_reclaimed == 4
        assert rig.free_list.free_count == before + 4
        assert rig.manager.versions_of(rig.addr) == [5]

    def test_phase_waits_for_old_tasks(self, rig):
        rig.tracker.begin(1)
        stored(rig, 3)  # task 1 still active
        rig.gc.start_phase()
        # Pending: v1 (shadowed by 2) and v2 (shadowed by 3), so the
        # recorded bound is 3; oldest active = 1: no reclaim.
        assert rig.gc.pending_count == 2
        assert rig.stats.gc_reclaimed == 0
        rig.tracker.begin(2)
        rig.tracker.end(1)
        # Oldest active (2) still at or below the bound (readers of v2
        # can hold any id below its shadower, 3): still held.
        assert rig.stats.gc_reclaimed == 0
        rig.tracker.begin(4)
        rig.tracker.end(2)
        # Oldest active (4) is now above the bound: finalized.
        assert rig.stats.gc_reclaimed == 2
        assert rig.gc.pending_count == 0
        rig.tracker.end(4)

    def test_versions_shadowed_during_phase_wait_for_next(self, rig):
        rig.tracker.begin(1)
        stored(rig, 2)  # shadowed: version 1
        rig.gc.start_phase()
        stored(rig, 1, start=3)  # shadows version 2 mid-phase
        assert rig.gc.shadowed_count == 1  # version 2 parked in shadowed list
        assert rig.gc.pending_count == 1  # version 1 pending
        rig.tracker.begin(3)  # above v1's shadower (2): does not hold it
        rig.tracker.end(1)
        assert rig.stats.gc_reclaimed == 1  # only version 1
        assert sorted(rig.manager.versions_of(rig.addr), reverse=True) == [3, 2]
        rig.tracker.end(3)

    def test_locked_pending_block_is_kept(self, rig):
        stored(rig, 2)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=7)
        rig.gc.start_phase()
        assert rig.stats.gc_reclaimed == 0
        assert rig.gc.shadowed_count == 1  # returned to shadowed list
        assert rig.manager.versions_of(rig.addr) == [2, 1]

    def test_reclaimed_version_no_longer_loadable(self, rig):
        from repro.ostruct.manager import StallSignal

        stored(rig, 3)
        rig.gc.start_phase()
        with pytest.raises(StallSignal):
            rig.manager.load_version(0, rig.addr, 1)
        # Latest still fine.
        assert rig.manager.load_latest(0, rig.addr, 10)[1] == (3, 3)

    def test_reclaim_drops_compressed_entries(self, rig):
        stored(rig, 3)
        rig.manager.load_version(0, rig.addr, 1)  # caches version 1
        rig.gc.start_phase()
        entry = rig.manager._direct[0].get(rig.addr)
        if entry is not None:
            assert 1 not in entry.line

    def test_watermark_triggers_phase(self):
        rig = Rig(free_list_blocks=16, gc_watermark=8)
        stored(rig, 12)  # free list drops below 8 along the way
        assert rig.stats.gc_phases >= 1
        # With no active tasks the phases finalize immediately.
        assert rig.stats.gc_reclaimed > 0

    def test_no_trigger_above_watermark(self):
        rig = Rig(free_list_blocks=1024, gc_watermark=4)
        stored(rig, 10)
        assert rig.stats.gc_phases == 0

    def test_disabled_collector_never_triggers(self):
        rig = Rig(free_list_blocks=16, gc_watermark=8)
        rig.gc.enabled = False
        stored(rig, 12)
        assert rig.stats.gc_phases == 0

    def test_start_phase_idempotent_while_active(self, rig):
        rig.tracker.begin(1)
        stored(rig, 3)
        rig.gc.start_phase()
        rig.gc.start_phase()  # already active: no-op
        assert rig.stats.gc_phases == 1
        rig.tracker.end(1)


class TestSafety:
    def test_gc_never_reclaims_reachable_version(self):
        """Versions readable by an active task survive collection.

        Task 3 is active; versions 1 and 2 exist with 2 shadowing 1.  Any
        phase started now must not reclaim version 2 (task 3 may read it
        via LOAD-LATEST), and once finalization waits for task 3's end,
        version 1 is also protected until then.
        """
        rig = Rig(free_list_blocks=64, gc_watermark=8)
        rig.tracker.begin(3)
        rig.manager.store_version(0, rig.addr, 1, 10)
        rig.manager.store_version(0, rig.addr, 2, 20)
        rig.gc.start_phase()
        # Task 3 can still load-latest and must see version 2.
        assert rig.manager.load_latest(0, rig.addr, 3)[1] == (2, 20)
        rig.tracker.end(3)

    def test_stress_many_locations(self):
        rig = Rig(free_list_blocks=128, gc_watermark=16)
        addrs = [rig.addr + 4 * i for i in range(8)]
        for round_ in range(1, 40):
            for a in addrs:
                rig.manager.store_version(0, a, round_, round_)
        # GC ran and every location's latest version survived.
        assert rig.stats.gc_phases >= 1
        for a in addrs:
            assert rig.manager.load_latest(0, a, 100)[1] == (39, 39)
        for a in addrs:
            rig.manager.lists[a].check_invariants()


class TestTracker:
    def test_rule3_enforced(self, rig):
        rig.tracker.begin(5)
        with pytest.raises(SimulationError):
            rig.tracker.begin(4)
        rig.tracker.begin(6)  # above the floor: fine
        rig.tracker.end(5)
        rig.tracker.end(6)

    def test_double_begin_rejected(self, rig):
        rig.tracker.begin(5)
        with pytest.raises(SimulationError):
            rig.tracker.begin(5)

    def test_end_of_inactive_rejected(self, rig):
        with pytest.raises(SimulationError):
            rig.tracker.end(9)

    def test_window_queries(self, rig):
        t = rig.tracker
        assert t.lowest_active() is None and t.highest_active() is None
        t.begin(3)
        t.begin(7)
        assert t.lowest_active() == 3 and t.highest_active() == 7
        assert t.max_seen == 7
        t.end(3)
        assert t.lowest_active() == 7


class TestFinalizeEdges:
    """Edge cases of ``_finalize``: kept blocks, bounds, freed addresses."""

    def test_kept_locked_block_recollected_after_unlock(self, rig):
        stored(rig, 2)
        rig.manager.lock_load_version(0, rig.addr, 1, task_id=7)
        rig.gc.start_phase()  # v1 locked -> kept for a later phase
        assert rig.stats.gc_reclaimed == 0
        assert rig.gc.shadowed_count == 1
        assert not rig.gc.phase_active
        rig.manager.unlock_version(0, rig.addr, 1, task_id=7)
        rig.gc.start_phase()
        assert rig.stats.gc_reclaimed == 1
        assert rig.manager.versions_of(rig.addr) == [2]

    def test_kept_head_block_recollected_once_shadowed_again(self, rig):
        stored(rig, 1)
        lst = rig.manager.lists[rig.addr]
        # Defensive path: queue the current head (never happens through
        # store_version, but _finalize must refuse to reclaim a head).
        rig.gc.register_shadowed(lst.head, lst, 2)
        rig.gc.start_phase()
        assert rig.stats.gc_reclaimed == 0
        assert rig.gc.shadowed_count == 1
        stored(rig, 1, start=2)  # now v1 really is shadowed by v2
        rig.gc.start_phase()
        assert rig.stats.gc_reclaimed == 1
        assert rig.manager.versions_of(rig.addr) == [2]

    def test_phase_with_no_active_tasks_bounds_by_max_seen(self, rig):
        t = rig.tracker
        t.register(2)
        t.register(3)
        t.begin(3)
        stored(rig, 3)
        t.end(3)
        # No task is *executing*, but queued task 2 is live and max_seen
        # is 3: the phase must hold its pending blocks for task 2.
        rig.gc.start_phase()
        assert rig.gc.phase_active
        assert rig.stats.gc_reclaimed == 0
        t.begin(2)
        assert rig.manager.load_latest(0, rig.addr, 2)[1] == (2, 2)
        t.end(2)
        assert rig.stats.gc_reclaimed == 2
        assert not rig.gc.phase_active

    def test_ended_high_task_still_bounds_phase(self, rig):
        # Regression: the phase bound must be max_seen, not the highest
        # *currently active* id.  Task 3 begins, shadows v1, and ends
        # before the phase starts; queued task 2 can still reach v1 via
        # LOAD-LATEST(2), so v1 must survive until task 2 ends.
        t = rig.tracker
        for tid in (1, 2, 3):
            t.register(tid)
        t.begin(1)
        t.begin(3)
        rig.manager.store_version(0, rig.addr, 1, "a")
        rig.manager.store_version(0, rig.addr, 3, "c")  # shadows v1
        t.end(3)
        rig.gc.start_phase()
        t.end(1)
        assert rig.stats.gc_reclaimed == 0
        assert rig.gc.pending_count == 1
        assert rig.manager.load_latest(0, rig.addr, 2)[1] == (1, "a")
        t.begin(2)
        t.end(2)
        assert rig.stats.gc_reclaimed == 1
        assert rig.manager.versions_of(rig.addr) == [3]


class TestFreeInteraction:
    """free_ostructure must purge GC queues (double-release regression)."""

    def test_free_purges_shadowed_list(self, rig):
        rig.tracker.begin(1)
        stored(rig, 3)
        assert rig.gc.shadowed_count == 2
        rig.manager.free_ostructure(rig.addr)
        assert rig.gc.shadowed_count == 0
        before = rig.free_list.free_count
        rig.gc.start_phase()  # nothing shadowed: no-op
        rig.tracker.end(1)
        assert rig.stats.gc_reclaimed == 0
        assert rig.free_list.free_count == before
        free = rig.free_list._free
        assert len(free) == len(set(free))

    def test_free_during_phase_purges_pending(self, rig):
        rig.tracker.begin(1)
        stored(rig, 3)
        rig.gc.start_phase()
        assert rig.gc.pending_count == 2
        rig.manager.free_ostructure(rig.addr)
        assert rig.gc.pending_count == 0
        before = rig.free_list.free_count
        rig.tracker.begin(2)
        rig.tracker.end(1)  # phase finalizes with an empty pending list
        assert not rig.gc.phase_active
        assert rig.stats.gc_reclaimed == 0
        assert rig.free_list.free_count == before
        free = rig.free_list._free
        assert len(free) == len(set(free))

    def test_forget_address_returns_purge_count(self, rig):
        rig.tracker.begin(1)
        stored(rig, 4)
        assert rig.gc.forget_address(rig.addr) == 3
        assert rig.gc.forget_address(rig.addr) == 0


class TestMemoSafety:
    """The (core, vaddr) lookup memo must never serve a reclaimed entry."""

    def test_reclaimed_version_not_served_from_memo(self, rig):
        stored(rig, 3)
        # Prime the memo and compressed line with v1 on core 0.
        assert rig.manager.load_version(0, rig.addr, 1)[1] == 1
        rig.gc.start_phase()  # reclaims v1 and v2
        assert rig.stats.gc_reclaimed == 2
        from repro.ostruct.manager import StallSignal

        with pytest.raises(StallSignal):
            rig.manager.load_version(0, rig.addr, 1)
        with pytest.raises(StallSignal):
            rig.manager.load_version(0, rig.addr, 2)
        # The surviving head is still served, through any path.
        assert rig.manager.load_version(0, rig.addr, 3)[1] == 3

    def test_memo_not_stale_after_free_and_realloc(self, rig):
        stored(rig, 2)
        assert rig.manager.load_version(0, rig.addr, 1)[1] == 1
        rig.manager.free_ostructure(rig.addr)
        # Same vaddr, new structure: the old memo entry must not leak
        # the freed block's value.
        rig.manager.store_version(0, rig.addr, 1, "fresh")
        assert rig.manager.load_version(0, rig.addr, 1)[1] == "fresh"
