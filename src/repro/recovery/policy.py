"""Crash auto-recovery: restore the latest checkpoint and replay.

:class:`RecoveryPolicy` turns a dying simulation into a restartable one.
It owns a checkpoint directory and wraps a *run function* (anything that
builds a machine internally — the sweep entry points, a workload
variant): each attempt attaches a
:class:`~repro.recovery.checkpoint.Checkpointer` to the machine through
the machine-observer registry, loads whatever valid images a previous
incarnation left behind, and replays under digest *verification* up to
the last surviving marker, capturing new images beyond it.

When an injected ``crash-machine`` fault (or anything else raising
:class:`~repro.errors.MachineCrash`) kills the run, the policy restores:
it strips the crash faults that already fired from the config — the
crash happened; replaying it forever would loop — and re-runs.  The
replayed run verifies byte-identical state at every surviving marker and
then continues to completion, so the final stats and trace are exactly
what an uninterrupted run produces.  Corrupt images (the
``corrupt-block`` fault) are detected by their CRC at load time, counted,
and skipped — recovery falls back to the previous valid image and
re-verifies/re-captures from there.

Recovery is *observable*: the first marker of a restored run fires a
``"restore"`` event through ``machine.recovery_hook``, so a
:class:`repro.obs.SpanRecorder` shows restores on the same track as
watchdog recoveries, and the returned :class:`RecoveryReport` carries
the counters.
"""

from __future__ import annotations

import dataclasses
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..errors import MachineCrash
from .checkpoint import Checkpointer, load_images


@dataclass
class RecoveryReport:
    """What one :meth:`RecoveryPolicy.execute` call went through."""

    #: Crashes caught (== restores performed when the run completed).
    crashes: int = 0
    #: Restores performed (crashes that were followed by a re-run).
    restores: int = 0
    #: Images skipped because magic/CRC validation failed.
    corrupt_images: int = 0
    #: Marker each restore resumed verification from (0 = from scratch).
    restore_markers: list[int] = field(default_factory=list)
    #: Markers whose digest was verified against a surviving image.
    verified_markers: int = 0
    #: Fresh images written across all attempts.
    captured_images: int = 0
    #: Did the final attempt run to completion?
    completed: bool = False

    def describe(self) -> str:
        frontier = (
            ", ".join(f"marker {m}" for m in self.restore_markers) or "none"
        )
        return (
            f"crashes={self.crashes} restores={self.restores} "
            f"(from: {frontier}), markers verified={self.verified_markers}, "
            f"images captured={self.captured_images}, "
            f"corrupt images skipped={self.corrupt_images}, "
            f"completed={self.completed}"
        )


class RecoveryPolicy:
    """Run-to-completion under crash faults, restoring from checkpoints."""

    def __init__(
        self,
        directory: str | Path,
        every: int,
        *,
        max_restores: int = 4,
    ):
        self.directory = Path(directory)
        self.every = int(every)
        self.max_restores = max_restores

    def execute(
        self,
        run_fn: Callable[[Any], Any],
        config: Any,
    ) -> tuple[Any, RecoveryReport]:
        """Call ``run_fn(config)`` with checkpointing; restore on crash.

        ``run_fn`` must build its machine(s) *during* the call (every
        workload entry point does) so the checkpointer can attach via
        the machine-observer registry.  Returns ``(result, report)``;
        re-raises :class:`MachineCrash` once the restore budget is
        exhausted, and propagates every other exception untouched.
        """
        from ..sim.machine import add_machine_observer, remove_machine_observer

        report = RecoveryReport()
        cfg = config
        while True:
            images, corrupt = load_images(self.directory, every=self.every)
            report.corrupt_images += corrupt
            announce = None
            if report.restores:
                restore_marker = max(images) if images else 0
                report.restore_markers.append(restore_marker)
                announce = {
                    "marker": restore_marker,
                    "restore": report.restores,
                }
            state: dict = {}

            def observe(machine, _state=state, _imgs=images, _ann=announce):
                if "ckpt" not in _state:
                    _state["ckpt"] = Checkpointer(
                        machine,
                        self.directory,
                        self.every,
                        verify=_imgs,
                        announce=_ann,
                    )

            add_machine_observer(observe)
            try:
                result = run_fn(cfg)
            except MachineCrash as exc:
                report.crashes += 1
                if report.restores >= self.max_restores:
                    raise
                report.restores += 1
                cfg = self._strip_fired_crashes(cfg, exc.op_index)
                continue
            finally:
                remove_machine_observer(observe)
                ckpt = state.get("ckpt")
                if ckpt is not None:
                    ckpt.detach()
                    report.verified_markers += len(ckpt.verified)
                    report.captured_images += len(ckpt.captured)
            report.completed = True
            return result, report

    @staticmethod
    def _strip_fired_crashes(config: Any, op_index: int) -> Any:
        """Drop crash faults that already fired from a machine config.

        A crash at op N happened in the *environment*; the restored run
        must not re-inject it or recovery would loop.  Later crash
        faults (``at > op_index``) are kept: multiple crashes during one
        run are a legitimate chaos scenario.
        """
        faults = getattr(config, "faults", ())
        kept = tuple(
            f
            for f in faults
            if not (f.kind == "crash-machine" and f.at <= op_index)
        )
        if len(kept) == len(faults):
            return config
        return dataclasses.replace(config, faults=kept)

    def clean(self) -> None:
        """Delete the checkpoint directory (after a verified success)."""
        shutil.rmtree(self.directory, ignore_errors=True)
