"""Version-store checkpointing, crash recovery, and deterministic replay.

The detect→degrade→recover story so far ends at *degrade*: the watchdog
and fault injector (PR 3) can diagnose a wedged machine and the sweep
runner survives dead workers, but a crashed simulation loses everything
it computed.  This package adds the *recover* leg, built on the same
property the paper's versioned memory gets recovery from — a bounded,
pinned version frontier plus deterministic forward replay:

- :mod:`repro.recovery.checkpoint` — :class:`Checkpoint` epoch images
  of the full simulation state (engine counters, version lists,
  compressed lines, page table, free list, GC queues, task tracker,
  cores, rwlocks), CRC-guarded and atomically written, plus the
  :class:`Checkpointer` that captures them every N versioned ops and
  pins the GC's reclaim bound at each image's version frontier;
- :mod:`repro.recovery.policy` — :class:`RecoveryPolicy`, which turns
  an injected ``crash-machine`` fault (or a killed worker) into a
  restore: re-run under digest verification against the surviving
  images and continue to completion, byte-identical to an
  uninterrupted run;
- :mod:`repro.recovery.cli` — ``python -m repro recover WORKLOAD
  --crash-at N``, the end-to-end demonstration that crashing and
  recovering reproduces the uninterrupted stats row and trace tail
  character for character.

Restore semantics (stated honestly): task bodies are live generator
frames and engine events are closures — neither is picklable, so a
checkpoint cannot literally re-materialise mid-task continuations.
Instead an image carries the run's *replay coordinates* (workload
identity, versioned-op marker) and a complete structural digest of the
machine at that marker.  Restore rebuilds the machine from its spec and
replays deterministically, **verifying** the digest at every surviving
marker; the simulator's total event order (see ``repro.sim.engine``)
makes the replayed prefix byte-identical, and the digests prove it run
by run instead of assuming it.  The epoch pin keeps the GC's behaviour
a pure function of the marker cadence, so pinning is part of the
deterministic contract rather than a side effect.
"""

from .checkpoint import (
    Checkpoint,
    Checkpointer,
    CheckpointError,
    capture_state,
    find_latest_valid_image,
    load_images,
)
from .policy import RecoveryPolicy, RecoveryReport

__all__ = [
    "Checkpoint",
    "Checkpointer",
    "CheckpointError",
    "RecoveryPolicy",
    "RecoveryReport",
    "capture_state",
    "find_latest_valid_image",
    "load_images",
]
