"""Epoch checkpoints: capture, CRC-guarded images, marker verification.

One :class:`Checkpoint` is a full structural snapshot of a machine taken
at a deterministic point — the N-th versioned operation, the same
ordinal clock the fault injector triggers on — covering every mutable
subsystem: the event engine's counters, the stats, the whole version
store (lists, compressed lines, page table, free list), the GC's
shadowed/pending queues, the task tracker, the cores' scheduling state,
and any rwlocks.  The snapshot is pure data (ints, strings, tuples), so
it pickles; its SHA-256 digest is the run's identity at that marker.

On-disk image format (``ckpt-NNNNNN.img``)::

    MAGIC (8 bytes) | CRC32 of payload (4 bytes, big-endian) | payload

where the payload is the pickled checkpoint dict.  The CRC detects the
``corrupt-block`` fault (and real bit rot): a damaged image reads as
:class:`CheckpointError` and recovery falls back to the previous valid
image.  Images are written atomically — temp file, flush+fsync, rename,
directory fsync — so a writer killed at any instruction leaves either
the old state or the new state, never a truncated image (the same
guarantee the sweep runner's row cache makes, hardened here too).

The :class:`Checkpointer` drives capture from inside a live machine.  It
wraps ``manager._extra`` (the once-per-versioned-op chokepoint, exactly
like the fault injector, with which it composes) and, at every multiple
of ``every``, defers a *marker event* via ``sim.schedule(0, ...)`` so
the version store is quiescent when the walk happens.  At a marker it
always does the same three deterministic things — bump
``stats.checkpoints_reached``, pin the GC's reclaim bound at the current
version frontier, capture the state — and then either *writes* the image
(capture mode) or *compares digests* against a surviving image of a
previous incarnation of the same run (verify mode, used during restore).
Because both modes schedule the same events and mutate the same state,
a verified replay is byte-identical to the run that wrote the images.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import CheckpointError, ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.machine import Machine

#: Image file magic ("repro o-structure checkpoint", format version 1).
MAGIC = b"ROCKPT1\n"

#: Pickle protocol pinned for digest stability across interpreter runs.
_PICKLE_PROTOCOL = 4


# ---------------------------------------------------------------------------
# State walk.
# ---------------------------------------------------------------------------


def _canon(value: Any) -> Any:
    """A canonical, picklable stand-in for one stored value.

    Workloads store ints (keys and simulated pointers); anything exotic
    falls back to ``repr`` so the walk never fails mid-capture.
    """
    if value is None or isinstance(value, (int, float, str, bool, bytes)):
        return value
    if isinstance(value, tuple):
        return tuple(_canon(v) for v in value)
    return repr(value)


def capture_state(machine: "Machine") -> dict[str, Any]:
    """Walk every mutable subsystem into a plain, deterministic dict.

    The walk is read-only (it must not perturb the run it snapshots) and
    emits only primitives in deterministic order, so pickling the result
    yields identical bytes for identical machine states.
    """
    sim = machine.sim
    mgr = machine.manager
    gc = machine.gc
    tracker = machine.tracker
    free = machine.free_list

    version_store = {
        vaddr: tuple(
            (
                block.version,
                _canon(block.value),
                block.locked_by,
                block.shadowed,
                block.shadowed_by,
                vlist.head is block,
                block.paddr,
            )
            for block in vlist
        )
        for vaddr, vlist in mgr.lists.items()
    }
    compressed = tuple(
        tuple(
            (vaddr, tuple(sorted(entry.line.versions())))
            for vaddr, entry in sorted(core_direct.items())
        )
        for core_direct in mgr._direct
    )
    return {
        # Engine bookkeeping (event sequence numbers, pending-queue size)
        # is deliberately NOT captured: an environment fault's event —
        # e.g. the deferred crash-machine raise — can sit scheduled but
        # unfired when a same-cycle marker captures, and the replay,
        # whose config no longer carries the already-fired crash, must
        # still digest-match.  The clock and the executed-event count
        # are real state; the queue internals are not.
        "engine": {
            "now": sim.now,
            "executed_total": sim.executed_total,
        },
        "stats": machine.stats.snapshot(),
        "retired_ops": machine.retired_ops,
        "version_store": version_store,
        "compressed_lines": compressed,
        "waiters": tuple(
            (vaddr, len(cbs))
            for vaddr, cbs in sorted(mgr._waiters.items())
            if cbs
        ),
        "created": tuple(
            (task, tuple(pairs)) for task, pairs in sorted(mgr._created.items())
        ),
        "roots": tuple(sorted(mgr.roots)),
        "page_table": tuple(sorted(machine.page_table._versioned_pages)),
        "free_list": {
            "free": tuple(free._free),
            "bump": free._bump,
            "refills_left": free.refills_left,
        },
        "gc": {
            "shadowed": tuple(
                (vlist.vaddr, block.version) for block, vlist in gc._shadowed
            ),
            "pending": tuple(
                (vlist.vaddr, block.version) for block, vlist in gc._pending
            ),
            "phase_active": gc.phase_active,
            "recorded_youngest": gc._recorded_youngest,
            "enabled": gc.enabled,
            "pin": tuple(sorted(gc.epoch_pin)) if gc.epoch_pin is not None else None,
            "pin_drops": gc.pin_drops,
        },
        "tracker": {
            "live": tuple(sorted(tracker.live_ids)),
            "active": tuple(sorted(tracker.active_ids)),
            "max_seen": tracker.max_seen,
            "begun": tracker.begun,
            "ended": tracker.ended,
        },
        "cores": tuple(
            (
                core.core_id,
                core.busy_cycles,
                core.current.task_id if core.current is not None else None,
                tuple(task.task_id for task in core.queue),
                core.blocked,
                core._blocked_addr if core.blocked else None,
            )
            for core in machine.cores
        ),
        "rwlocks": tuple(
            (
                lock.name,
                lock.addr,
                tuple(sorted(lock._readers)),
                lock._writer,
                tuple((mode, core_id) for mode, core_id, _cb, _t in lock._queue),
            )
            for lock in machine.rwlocks
        ),
        "heap": {
            "conventional_used": machine.heap.conventional_used,
            "versioned_used": machine.heap.versioned_used,
        },
        "mem": tuple(
            (addr, _canon(value)) for addr, value in sorted(machine.mem.items())
        ),
    }


def state_digest(state: dict[str, Any]) -> str:
    """SHA-256 over the canonical pickle of a captured state."""
    return hashlib.sha256(
        pickle.dumps(state, protocol=_PICKLE_PROTOCOL)
    ).hexdigest()


# ---------------------------------------------------------------------------
# Images.
# ---------------------------------------------------------------------------


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory so a rename survives power loss."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers see old bytes or new bytes.

    temp file in the same directory -> write -> flush -> fsync ->
    rename -> fsync(dir).  A writer killed (``kill -9``) at any point
    leaves at most a ``*.tmp`` straggler, never a partial ``path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


class Checkpoint:
    """One epoch image: replay coordinates + structural state + digest."""

    def __init__(
        self,
        *,
        marker: int,
        every: int,
        op_index: int,
        cycle: int,
        digest: str,
        state: dict[str, Any],
        pinned: tuple[tuple[int, int], ...],
        code_version: str,
    ):
        self.marker = marker
        self.every = every
        self.op_index = op_index
        self.cycle = cycle
        self.digest = digest
        self.state = state
        self.pinned = pinned
        self.code_version = code_version

    @classmethod
    def capture(
        cls, machine: "Machine", *, marker: int = 0, every: int = 0
    ) -> "Checkpoint":
        """Snapshot ``machine`` right now (read-only walk)."""
        from ..harness.runner import code_version

        state = capture_state(machine)
        pin = machine.gc.epoch_pin
        return cls(
            marker=marker,
            every=every,
            op_index=getattr(machine, "checkpointer", None).op_index
            if getattr(machine, "checkpointer", None) is not None
            else machine.stats.versioned_ops,
            cycle=machine.sim.now,
            digest=state_digest(state),
            state=state,
            pinned=tuple(sorted(pin)) if pin is not None else (),
            code_version=code_version(),
        )

    def verify(self, machine: "Machine") -> bool:
        """Does ``machine``'s current state digest match this image?"""
        return state_digest(capture_state(machine)) == self.digest

    # -- serialisation -------------------------------------------------------

    def _payload(self) -> dict[str, Any]:
        return {
            "marker": self.marker,
            "every": self.every,
            "op_index": self.op_index,
            "cycle": self.cycle,
            "digest": self.digest,
            "state": self.state,
            "pinned": self.pinned,
            "code_version": self.code_version,
        }

    def write(self, path: str | Path) -> Path:
        """Atomically write the CRC-guarded image; returns the path."""
        payload = pickle.dumps(self._payload(), protocol=_PICKLE_PROTOCOL)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        atomic_write_bytes(Path(path), MAGIC + crc.to_bytes(4, "big") + payload)
        return Path(path)

    @classmethod
    def read(cls, path: str | Path) -> "Checkpoint":
        """Read and validate an image; :class:`CheckpointError` on damage."""
        try:
            raw = Path(path).read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint image {path}: {exc}")
        if len(raw) < len(MAGIC) + 4 or not raw.startswith(MAGIC):
            raise CheckpointError(f"checkpoint image {path} has a bad header")
        crc = int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 4], "big")
        payload = raw[len(MAGIC) + 4 :]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise CheckpointError(
                f"checkpoint image {path} failed its CRC check (corrupt)"
            )
        try:
            doc = pickle.loads(payload)
        except Exception as exc:  # pickle raises a zoo of types
            raise CheckpointError(f"checkpoint image {path} unpicklable: {exc}")
        try:
            return cls(**doc)
        except TypeError as exc:
            raise CheckpointError(f"checkpoint image {path} malformed: {exc}")


def image_path(directory: str | Path, marker: int) -> Path:
    return Path(directory) / f"ckpt-{marker:06d}.img"


def load_images(
    directory: str | Path, *, every: int | None = None
) -> tuple[dict[int, Checkpoint], int]:
    """Read every valid image in ``directory``; ``(by_marker, corrupt)``.

    Corrupt or unreadable images are skipped and counted — that is the
    fallback path for the ``corrupt-block`` fault.  Images written by a
    different code version or a different marker cadence are *stale*,
    not corrupt: they describe a run this one cannot be compared to, so
    they are silently ignored.
    """
    from ..harness.runner import code_version

    directory = Path(directory)
    if not directory.is_dir():
        return {}, 0
    images: dict[int, Checkpoint] = {}
    corrupt = 0
    current = code_version()
    for path in sorted(directory.glob("ckpt-*.img")):
        try:
            ck = Checkpoint.read(path)
        except CheckpointError:
            corrupt += 1
            continue
        if ck.code_version != current:
            continue
        if every is not None and ck.every != every:
            continue
        images[ck.marker] = ck
    return images, corrupt


def find_latest_valid_image(
    directory: str | Path, *, every: int | None = None
) -> Checkpoint | None:
    """The highest-marker valid image in ``directory``, or ``None``."""
    images, _corrupt = load_images(directory, every=every)
    return images[max(images)] if images else None


# ---------------------------------------------------------------------------
# The in-machine driver.
# ---------------------------------------------------------------------------


class Checkpointer:
    """Captures (or verifies) an epoch checkpoint every N versioned ops.

    Wraps ``manager._extra`` with the same instance-attribute idiom the
    fault injector uses; when both are attached the checkpointer wraps
    the injector's wrapper, so the two count the same op ordinals.  The
    actual marker work is deferred to a fresh delay-0 event because
    ``_extra`` runs mid-dispatch, while the version store is still being
    mutated by the op in flight.

    ``verify`` maps marker numbers to images from a previous incarnation
    of the same run; at those markers the checkpointer compares digests
    instead of writing, raising :class:`CheckpointError` on divergence
    (determinism is the entire restore guarantee, so a mismatch must be
    loud).  Markers with no image to verify are captured as usual.
    """

    def __init__(
        self,
        machine: "Machine",
        directory: str | Path,
        every: int,
        *,
        verify: dict[int, Checkpoint] | None = None,
        announce: dict[str, Any] | None = None,
    ):
        if every < 1:
            raise ConfigError("checkpoint interval must be >= 1 versioned op")
        self.machine = machine
        self.directory = Path(directory)
        self.every = int(every)
        self.verify = dict(verify or {})
        #: Info dict fired once through ``machine.recovery_hook`` at the
        #: first marker (repro.obs span integration for restores).
        self.announce = dict(announce) if announce else None
        self.op_index = 0
        self.marker = 0
        #: Markers whose image this run wrote / verified.
        self.captured: list[int] = []
        self.verified: list[int] = []
        self._marker_pending = False
        self._detached = False
        manager = machine.manager
        # Remember whether _extra was already an instance attribute (the
        # fault injector's wrapper): detach() then restores the captured
        # callable; otherwise it deletes ours so the plain class method
        # shows through again — disabled checkpointing leaves no trace.
        self._had_instance_extra = "_extra" in vars(manager)
        self._orig_extra = manager._extra
        manager._extra = self._extra
        machine.checkpointer = self

    # -- wrapped chokepoint --------------------------------------------------

    def _extra(self) -> int:
        self.op_index += 1
        if not self._marker_pending and self.op_index % self.every == 0:
            # Defer to a fresh event: the op that brought us here is
            # still mid-dispatch and the store is not yet quiescent.
            self._marker_pending = True
            self.machine.sim.schedule(0, self._at_marker)
        return self._orig_extra()

    # -- marker work ---------------------------------------------------------

    def _at_marker(self) -> None:
        self._marker_pending = False
        self.marker += 1
        marker = self.marker
        m = self.machine
        m.stats.checkpoints_reached += 1
        if self.announce is not None:
            info, self.announce = self.announce, None
            if m.recovery_hook is not None:
                m.recovery_hook("restore", info)
        # Pin the GC's reclaim bound at this epoch's version frontier:
        # nothing live at this marker may be reclaimed until the next
        # marker advances the pin (see repro.ostruct.gc).
        m.gc.epoch_pin = frozenset(
            (vaddr, block.version)
            for vaddr, vlist in m.manager.lists.items()
            for block in vlist
        )
        ck = Checkpoint.capture(m, marker=marker, every=self.every)
        ref = self.verify.get(marker)
        if ref is not None:
            if ref.digest != ck.digest:
                raise CheckpointError(
                    f"replay diverged from checkpoint image at marker "
                    f"{marker} (op {self.op_index}, cycle {m.sim.now}): "
                    f"digest {ck.digest[:12]} != recorded {ref.digest[:12]}"
                )
            self.verified.append(marker)
        else:
            ck.write(image_path(self.directory, marker))
            self.captured.append(marker)

    # -- lifecycle -----------------------------------------------------------

    def detach(self) -> None:
        """Restore the wrapped chokepoint (only if still ours)."""
        if self._detached:
            return
        self._detached = True
        manager = self.machine.manager
        if manager._extra == self._extra:
            if self._had_instance_extra:
                manager._extra = self._orig_extra
            else:
                del manager._extra
        if getattr(self.machine, "checkpointer", None) is self:
            self.machine.checkpointer = None
