"""``python -m repro recover``: crash a run on purpose and prove recovery.

The end-to-end demonstration of the recovery tier::

    python -m repro recover rb_tree --crash-at 1000

runs the workload twice at the same checkpoint cadence:

1. an **uninterrupted reference** run, capturing epoch checkpoints as it
   goes;
2. a **crashed** run with an injected ``crash-machine`` fault at the
   requested versioned-op ordinal, executed under a
   :class:`~repro.recovery.RecoveryPolicy` — the crash is caught, the
   latest valid checkpoint becomes the restore point, and the replay
   verifies the state digest at every surviving marker before running
   on to completion;

then compares the two: the final ``SimStats.snapshot()`` rows and the
tail of the op traces must be **byte-identical**.  Exit status 0 means
they were; 1 means recovery diverged (which the digest verification
should already have caught as a :class:`CheckpointError`).

``--corrupt-at M`` additionally injects a ``corrupt-block`` fault that
flips a byte in the newest checkpoint image mid-run, demonstrating the
CRC guard: recovery detects the damaged image, counts it, and falls
back to the previous valid one.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import shutil
import sys
import tempfile
from pathlib import Path

from ..config import TABLE2
from ..errors import ConfigError, MachineCrash
from ..faults import FaultSpec
from ..harness.presets import get_scale
from ..harness.sweeps import (
    MIXES,
    _IRREGULAR_MODULES,
    _REGULAR_MODULES,
    _run_irregular,
    _run_regular,
)
from ..sim.machine import add_machine_observer, remove_machine_observer
from ..sim.trace import Tracer
from ..workloads.opgen import READ_INTENSIVE
from .policy import RecoveryPolicy

WORKLOADS = sorted(_IRREGULAR_MODULES) + sorted(_REGULAR_MODULES)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro recover",
        description=(
            "Crash one workload run mid-flight, restore it from the last "
            "epoch checkpoint, and verify byte-identical completion."
        ),
    )
    parser.add_argument("workload", choices=WORKLOADS, help="workload to run")
    parser.add_argument(
        "--crash-at", type=int, required=True, metavar="N",
        help="versioned-op ordinal at which the crash fault fires",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="OPS",
        help="versioned ops between epoch checkpoints (default 64)",
    )
    parser.add_argument(
        "--corrupt-at", type=int, default=None, metavar="M",
        help=(
            "also flip a byte in the newest checkpoint image at this "
            "op ordinal (demonstrates the CRC fallback)"
        ),
    )
    parser.add_argument(
        "--scale", default="quick", choices=("quick", "paper"),
        help="workload scale (default quick)",
    )
    parser.add_argument(
        "--cores", type=int, default=8, help="simulated cores (default 8)"
    )
    parser.add_argument(
        "--size", default="small", choices=("small", "large"),
        help="structure size preset (default small)",
    )
    parser.add_argument(
        "--mix", default=READ_INTENSIVE.name, choices=sorted(MIXES),
        help="op mix for the irregular structures",
    )
    parser.add_argument(
        "--ops", type=int, default=None, metavar="N",
        help="override the operation count of irregular workloads",
    )
    parser.add_argument(
        "--dir", default=None, metavar="PATH",
        help="checkpoint directory root (default: a temporary directory)",
    )
    parser.add_argument(
        "--keep", action="store_true",
        help="keep the checkpoint images instead of deleting them on exit",
    )
    parser.add_argument(
        "--max-restores", type=int, default=4, metavar="N",
        help="restore budget before giving up (default 4)",
    )
    parser.add_argument(
        "--tail", type=int, default=40, metavar="EVENTS",
        help="op-trace tail length compared byte-for-byte (default 40)",
    )
    return parser


def _execute(args, config, scale, directory: Path, max_restores: int):
    """One policy-managed run; returns (run, report, trace tail)."""

    def run_fn(cfg):
        if args.workload in _IRREGULAR_MODULES:
            return _run_irregular(
                args.workload, cfg, scale, args.size, MIXES[args.mix],
                "versioned", args.cores, args.ops,
            )
        return _run_regular(
            args.workload, cfg, scale, args.size, "versioned", args.cores
        )

    # Each attempt builds a fresh machine; keep the newest tracer so the
    # tail reflects the run that actually completed.
    state: dict = {}

    def observe(machine) -> None:
        state["tracer"] = Tracer(machine, capacity=max(args.tail, 1 << 12))

    policy = RecoveryPolicy(
        directory, args.checkpoint_every, max_restores=max_restores
    )
    add_machine_observer(observe)
    try:
        run, report = policy.execute(run_fn, config)
    finally:
        remove_machine_observer(observe)
    tail = [str(e) for e in state["tracer"].last(args.tail)]
    return run, report, tail


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.crash_at < 1:
        parser.error("--crash-at must be >= 1")
    scale = get_scale(args.scale)

    root = Path(args.dir) if args.dir else Path(tempfile.mkdtemp(prefix="repro-ckpt-"))
    ref_dir, crash_dir = root / "reference", root / "crashed"
    try:
        base = dataclasses.replace(TABLE2)
        ref, ref_report, ref_tail = _execute(
            args, base, scale, ref_dir, args.max_restores
        )
        print(
            f"reference:  {args.workload} finished in {ref.cycles} cycles "
            f"({ref_report.captured_images} checkpoint(s) captured)"
        )

        faults = [FaultSpec("crash-machine", at=args.crash_at)]
        if args.corrupt_at is not None:
            faults.append(FaultSpec("corrupt-block", at=args.corrupt_at))
        try:
            crashed = dataclasses.replace(base, faults=tuple(faults))
        except ConfigError as exc:
            parser.error(str(exc))
        try:
            out, report, tail = _execute(
                args, crashed, scale, crash_dir, args.max_restores
            )
        except MachineCrash as exc:
            print(
                f"RECOVERY FAILED: restore budget exhausted: {exc}",
                file=sys.stderr,
            )
            return 1
        print(f"recovered:  {args.workload} finished in {out.cycles} cycles")
        print(f"recovery:   {report.describe()}")

        ref_row = json.dumps(ref.stats.snapshot(), sort_keys=True)
        out_row = json.dumps(out.stats.snapshot(), sort_keys=True)
        stats_ok = ref_row == out_row
        tail_ok = ref_tail == tail
        print(
            f"stats row:  {'byte-identical' if stats_ok else 'DIVERGED'}; "
            f"trace tail ({len(ref_tail)} events): "
            f"{'byte-identical' if tail_ok else 'DIVERGED'}"
        )
        if not stats_ok or not tail_ok:
            if not tail_ok:
                for a, b in zip(ref_tail, tail):
                    if a != b:
                        print(f"  reference: {a}\n  recovered: {b}", file=sys.stderr)
                        break
            print("RECOVERY DIVERGED from the uninterrupted run", file=sys.stderr)
            return 1
        return 0
    finally:
        if args.keep:
            print(f"checkpoint images kept under {root}")
        else:
            shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
