"""Performance probes and the regression baseline gate (``repro bench``).

``python -m repro bench`` runs a fixed basket of deterministic probes —
the event kernel's wheel and solo paths, the array-backed cache, the
coherence directory under the full hierarchy, and one end-to-end QUICK
workload — and records each probe's wall-clock and throughput into
``benchmarks/baselines.json``.  ``--compare`` re-runs the basket and
fails (exit 1) when any probe regressed by more than ``--tolerance``
(CI runs ``--compare --tolerance 0.25``).

Absolute events-per-second numbers do not transfer between machines, so
the committed baseline would be meaningless on a different CI host.  The
gate therefore normalises every probe by a *calibration score* measured
at run time: a fixed pure-Python loop shaped like simulator work (integer
arithmetic, method calls, list traffic) whose ops/s tracks the host's
single-thread Python speed.  What is compared across runs is the
dimensionless ratio ``probe_score / calibration_score`` — "simulator
events per calibration op" — which is stable across hosts to well within
the 25% tolerance while still catching real algorithmic regressions.

Each probe runs ``REPEATS`` times and keeps the best (least-interfered)
score; the calibration loop likewise.  Everything is deterministic — no
randomness, no wall-clock-dependent control flow — so two runs execute
identical event sequences and differ only in timing.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable

from .config import TABLE2
from .harness.presets import QUICK
from .harness.sweeps import execute, irregular_spec
from .sim.cache import Cache
from .sim.engine import Simulator
from .sim.hierarchy import MemoryHierarchy
from .sim.stats import SimStats

#: Default committed baseline (repo-relative; CI runs from the checkout).
DEFAULT_BASELINE = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines.json"

#: Best-of-N repeats per probe to shed scheduler noise.
REPEATS = 3

#: Default allowed fractional drop of a probe's normalised score.
DEFAULT_TOLERANCE = 0.25

_CALIBRATION_OPS = 400_000


def _calibration_loop(n: int) -> int:
    """Fixed workload whose ops/s proxies the host's Python speed."""
    acc = 0
    sink: list[int] = []
    append = sink.append
    for i in range(n):
        acc += i & 7
        append(acc)
        if len(sink) > 64:
            sink.clear()
    return acc


def calibrate() -> float:
    """Host calibration score in ops/s (best of REPEATS)."""
    best = 0.0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        _calibration_loop(_CALIBRATION_OPS)
        elapsed = time.perf_counter() - t0
        best = max(best, _CALIBRATION_OPS / elapsed)
    return best


# ---------------------------------------------------------------------------
# Probes.  Each returns (work_units, elapsed_seconds); score = units/s.
# ---------------------------------------------------------------------------


def _probe_engine_wheel() -> tuple[int, float]:
    """Multi-chain event traffic across wheel buckets and the overflow heap."""
    sim = Simulator()
    lats = (4, 1, 2, 35, 120, 300)
    budget = [300_000]

    def make_chain() -> Callable[[], None]:
        k = 0

        def cb() -> None:
            nonlocal k
            if budget[0] <= 0:
                return
            budget[0] -= 1
            k += 1
            sim.schedule(lats[k % 6], cb)

        return cb

    for _ in range(16):
        sim.schedule(0, make_chain())
    t0 = time.perf_counter()
    n = sim.run()
    return n, time.perf_counter() - t0


def _probe_engine_solo() -> tuple[int, float]:
    """A single continuation chain — the solo fast path end to end."""
    sim = Simulator()
    lats = (4, 1, 2)
    budget = [400_000]
    k = 0

    def cb() -> None:
        nonlocal k
        if budget[0] <= 0:
            return
        budget[0] -= 1
        k += 1
        sim.schedule(lats[k % 3], cb)

    sim.schedule(0, cb)
    t0 = time.perf_counter()
    n = sim.run()
    return n, time.perf_counter() - t0


def _probe_cache() -> tuple[int, float]:
    """L1-geometry lookup/insert stream with hits, misses and evictions."""
    cache = Cache(TABLE2.l1, name="probe")
    ops = 0
    t0 = time.perf_counter()
    for rep in range(120):
        base = rep * 17
        for b in range(2_000):
            block = base + (b * 7) % 1_024
            if not cache.lookup(block):
                cache.insert(block, dirty=(b & 3) == 0)
            ops += 1
    return ops, time.perf_counter() - t0


def _probe_hierarchy() -> tuple[int, float]:
    """Reads/writes from 8 cores over shared blocks — directory traffic."""
    hier = MemoryHierarchy(TABLE2.with_cores(8), SimStats())
    ops = 0
    t0 = time.perf_counter()
    for rep in range(120):
        for i in range(2_000):
            core = i & 7
            addr = ((i * 3) % 512) * 64
            hier.access(core, addr, write=(i % 5) == 0)
            ops += 1
    return ops, time.perf_counter() - t0


def _probe_end_to_end() -> tuple[int, float]:
    """One full QUICK workload run (machine, manager, GC, the lot)."""
    spec = irregular_spec(
        "linked_list", TABLE2, QUICK, "large", "4R-1W", "versioned", 8
    )
    t0 = time.perf_counter()
    result = execute(spec)
    return result.cycles, time.perf_counter() - t0


def _probe_fused_quick() -> tuple[int, float]:
    """A fusion-dominated end-to-end run: sequential conventional memory.

    The unversioned linked-list baseline is all ``compute``/``load``/
    ``store`` on one core — exactly the op mix the fused-block
    interpreter (:mod:`repro.sim.fuse`) retires without engine round
    trips — so this probe gates the fused tier's throughput the way
    ``end_to_end_quick`` gates the manager-dominated tier.
    """
    spec = irregular_spec(
        "linked_list", TABLE2, QUICK, "large", "4R-1W", "unversioned"
    )
    t0 = time.perf_counter()
    result = execute(spec)
    return result.cycles, time.perf_counter() - t0


def _probe_version_walk() -> tuple[int, float]:
    """O-structure version-list traversal: deep chains, stale-version loads.

    Exercises the manager's walk machinery host-side (no event loop):
    compressed-line direct hits for recent versions, full list walks for
    old ones.  This is the per-op cost fusion can *not* elide, so it is
    gated separately from the fused data plane.
    """
    from .sim.machine import Machine

    m = Machine(TABLE2.with_cores(1))
    depth = 40
    vaddrs = [m.heap.alloc_versioned(1) for _ in range(32)]
    for vaddr in vaddrs:
        for v in range(depth):
            m.manager.store_version(0, vaddr, v, v * 3)
    ops = 0
    t0 = time.perf_counter()
    for _rep in range(8):
        for vaddr in vaddrs:
            for v in range(depth):
                m.manager.load_version(0, vaddr, v)
                ops += 1
    return ops, time.perf_counter() - t0


PROBES: dict[str, tuple[Callable[[], tuple[int, float]], str]] = {
    "engine_wheel": (_probe_engine_wheel, "events"),
    "engine_solo": (_probe_engine_solo, "events"),
    "cache_lru": (_probe_cache, "ops"),
    "hierarchy_coherence": (_probe_hierarchy, "accesses"),
    "end_to_end_quick": (_probe_end_to_end, "cycles"),
    "fused_quick": (_probe_fused_quick, "cycles"),
    "version_walk": (_probe_version_walk, "loads"),
}


def run_probes() -> dict:
    """Run the basket; returns the full measurement document."""
    calibration = calibrate()
    probes: dict[str, dict] = {}
    for name, (fn, unit) in PROBES.items():
        best_score = 0.0
        best_row: dict = {}
        for _ in range(REPEATS):
            units, elapsed = fn()
            score = units / elapsed
            if score > best_score:
                best_score = score
                best_row = {
                    "units": unit,
                    "work": units,
                    "wall_s": round(elapsed, 4),
                    "per_s": round(score, 1),
                    "normalized": score / calibration,
                }
        probes[name] = best_row
    return {
        "calibration_ops_per_s": round(calibration, 1),
        "probes": probes,
    }


def _format_rows(doc: dict) -> str:
    lines = [
        f"{'probe':<22} {'work':>9} {'wall s':>8} {'per s':>12} {'normalized':>11}"
    ]
    for name, row in doc["probes"].items():
        lines.append(
            f"{name:<22} {row['work']:>9} {row['wall_s']:>8.3f} "
            f"{row['per_s']:>12.0f} {row['normalized']:>11.4f}"
        )
    lines.append(f"calibration: {doc['calibration_ops_per_s']:.0f} ops/s")
    return "\n".join(lines)


def record(baseline_path: Path | str = DEFAULT_BASELINE) -> dict:
    """Measure and write the baseline file; returns the document."""
    doc = run_probes()
    path = Path(baseline_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def compare(
    baseline_path: Path | str = DEFAULT_BASELINE,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[bool, str]:
    """Re-measure and diff against the baseline.

    Returns ``(ok, report)``; ``ok`` is False when any probe's normalised
    score dropped more than ``tolerance`` below the baseline, or when the
    baseline is missing a probe that now exists (a silently ungated probe
    is itself a regression of the gate).
    """
    path = Path(baseline_path)
    if not path.exists():
        return False, f"no baseline at {path}; run `python -m repro bench` first"
    base = json.loads(path.read_text())
    current = run_probes()
    ok = True
    lines = [
        f"{'probe':<22} {'baseline':>10} {'current':>10} {'ratio':>7}  verdict"
    ]
    for name, row in current["probes"].items():
        ref = base.get("probes", {}).get(name)
        if ref is None:
            ok = False
            lines.append(f"{name:<22} {'-':>10} {row['normalized']:>10.4f} "
                         f"{'-':>7}  MISSING FROM BASELINE")
            continue
        best_norm = row["normalized"]
        ratio = best_norm / ref["normalized"]
        retried = 0
        # A shared CI host can slow the probe and the calibration loop by
        # different amounts for a moment (noisy neighbours, frequency
        # shifts).  A real algorithmic regression persists, transient skew
        # does not — so re-measure (with a fresh calibration) before
        # declaring failure.
        while ratio < 1.0 - tolerance and retried < 2:
            retried += 1
            calibration = calibrate()
            fn, _unit = PROBES[name]
            for _ in range(REPEATS):
                units, elapsed = fn()
                best_norm = max(best_norm, units / elapsed / calibration)
            ratio = best_norm / ref["normalized"]
        regressed = ratio < 1.0 - tolerance
        ok = ok and not regressed
        verdict = "REGRESSED" if regressed else "ok"
        if retried and not regressed:
            verdict = f"ok (after {retried} retr{'y' if retried == 1 else 'ies'})"
        lines.append(
            f"{name:<22} {ref['normalized']:>10.4f} {best_norm:>10.4f} "
            f"{ratio:>6.2f}x  {verdict}"
        )
    lines.append(
        f"tolerance: -{tolerance:.0%}; calibration baseline "
        f"{base.get('calibration_ops_per_s', 0):.0f} vs current "
        f"{current['calibration_ops_per_s']:.0f} ops/s"
    )
    return ok, "\n".join(lines)
