"""Task runtime: the software layer the paper assumes above the ISA.

Provides the task abstraction with GC progress tracking
(:mod:`repro.runtime.task`), the static scheduler of Section IV-A
(:mod:`repro.runtime.scheduler`), the simulated heap
(:mod:`repro.runtime.allocator`), the high-level versioned-handle API of
Figure 1 (:mod:`repro.runtime.versioned`), and the read-write lock used by
the unversioned baseline (:mod:`repro.runtime.rwlock`).
"""

from .task import Task, TaskTracker
from .scheduler import StaticScheduler
from .allocator import SimHeap
from .versioned import Versioned
from .istructures import IStructure, MStructure, new_istructure, new_mstructure
from .pipeline import parallel_for, spawn_tasks
from .rwlock import SimRWLock

__all__ = [
    "Task",
    "TaskTracker",
    "StaticScheduler",
    "SimHeap",
    "Versioned",
    "IStructure",
    "MStructure",
    "new_istructure",
    "new_mstructure",
    "parallel_for",
    "spawn_tasks",
    "SimRWLock",
]
