"""Simulated read-write lock (the unversioned baseline of Figure 8).

The paper compares the versioned binary tree against "an unversioned
binary tree protected by a read-write lock", noting the rwlock separates
reads from writes — readers share, writers exclude — which eliminates
synchronization inside the structure but also concurrency between the two
classes.

The lock word lives at a conventional address so acquisition traffic
exercises the coherence protocol (the classic lock-line ping-pong).
Grant policy is FIFO with reader batching: the queue is served in order,
but consecutive readers at the front are granted together.  That is fair
(no writer starvation) and matches common rwlock implementations.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.machine import Machine


class SimRWLock:
    """A read-write lock living inside the simulated machine."""

    def __init__(self, machine: "Machine", name: str = "rwlock"):
        self.machine = machine
        self.name = name
        self.addr = machine.heap.alloc(64, align=64)  # own cache line
        self._readers: set[int] = set()
        self._writer: int | None = None
        self._queue: deque[tuple[str, int, Callable[[int], None], int]] = deque()

    # -- state inspection ---------------------------------------------------

    @property
    def reader_count(self) -> int:
        return len(self._readers)

    @property
    def writer_core(self) -> int | None:
        return self._writer

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # -- acquisition ---------------------------------------------------------

    def _lock_word_access(self, core_id: int) -> int:
        """Touch the lock word with exclusive intent (coherence traffic)."""
        return self.machine.hierarchy.access(core_id, self.addr, write=True)

    def try_acquire(
        self, core_id: int, mode: str, on_grant: Callable[[int], None]
    ) -> int | None:
        """Attempt to acquire in ``mode`` ('r' or 'w').

        Returns the acquisition latency on immediate success, or ``None``
        if the caller was queued — ``on_grant(latency)`` fires later.
        """
        if mode not in ("r", "w"):
            raise SimulationError(f"bad rwlock mode {mode!r}")
        stats = self.machine.stats
        lat = self._lock_word_access(core_id)
        if mode == "r":
            # Readers may enter only when no writer holds or waits (FIFO:
            # queued writers bar new readers, preventing writer starvation).
            if self._writer is None and not self._queue:
                self._readers.add(core_id)
                stats.rwlock_read_acquires += 1
                return lat
        else:
            if self._writer is None and not self._readers and not self._queue:
                self._writer = core_id
                stats.rwlock_write_acquires += 1
                return lat
        self._queue.append((mode, core_id, on_grant, self.machine.sim.now))
        return None

    def release(self, core_id: int, mode: str) -> int:
        """Release the lock; grants queued waiters.  Returns latency."""
        if mode == "r":
            if core_id not in self._readers:
                raise SimulationError(f"core {core_id} does not hold {self.name} read")
            self._readers.discard(core_id)
        else:
            if self._writer != core_id:
                raise SimulationError(f"core {core_id} does not hold {self.name} write")
            self._writer = None
        lat = self._lock_word_access(core_id)
        self._grant()
        return lat

    def _grant(self) -> None:
        """Serve the queue front: one writer, or a batch of readers."""
        sim = self.machine.sim
        stats = self.machine.stats
        metrics = self.machine.metrics
        if self._writer is not None:
            return
        if self._queue and self._queue[0][0] == "w":
            if self._readers:
                return
            mode, core_id, cb, enq_time = self._queue.popleft()
            self._writer = core_id
            stats.rwlock_write_acquires += 1
            stats.rwlock_wait_cycles += sim.now - enq_time
            if metrics is not None:
                metrics.lock_wait.observe(sim.now - enq_time)
            grant_lat = self._lock_word_access(core_id)
            sim.schedule(1, lambda cb=cb, lat=grant_lat: cb(lat))
            return
        while self._queue and self._queue[0][0] == "r":
            mode, core_id, cb, enq_time = self._queue.popleft()
            self._readers.add(core_id)
            stats.rwlock_read_acquires += 1
            stats.rwlock_wait_cycles += sim.now - enq_time
            if metrics is not None:
                metrics.lock_wait.observe(sim.now - enq_time)
            grant_lat = self._lock_word_access(core_id)
            sim.schedule(1, lambda cb=cb, lat=grant_lat: cb(lat))
