"""I-structures and M-structures over O-structures (Table I, Section II-B).

The paper positions O-structures as a superset of the classic dataflow
synchronisation cells:

- an **I-structure** (Arvind et al.) is a write-once location: writes
  fill it, reads block until filled.  "Functional programming can use
  O-structures as I-structures, reducing versioning to full/empty bits."
- an **M-structure** (Barth et al.) adds mutable *take/put*: ``take``
  empties the cell (blocking others), ``put`` refills it.

Both reduce to a fixed O-structure usage pattern, which is exactly what
this module provides.  Like :class:`~repro.runtime.versioned.Versioned`,
methods return micro-op tuples for task generators to yield; multi-op
sequences are generator helpers used with ``yield from``.

Mapping:

- I-structure: single version ``FILL_VERSION``; ``write`` is
  STORE-VERSION, ``read`` is the blocking LOAD-VERSION.
- M-structure: a monotonically growing version chain.  ``take(tid)``
  LOCK-LOAD-LATEST-locks the current version — concurrent takers stall on
  the lock, exactly the M-structure contract; ``put(tid, value)`` stores
  the new value as version ``tid`` and unlocks the taken version, waking
  blocked takers (who then observe the *new* latest version).
"""

from __future__ import annotations

from typing import Any, Generator

from ..ostruct import isa

#: The single version id used by I-structure fills.
FILL_VERSION = 1


class IStructure:
    """A write-once dataflow cell."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def write(self, value: Any) -> tuple:
        """Fill the cell; a second write faults (VersionExistsError)."""
        return isa.store_version(self.addr, FILL_VERSION, value)

    def read(self) -> tuple:
        """Read the cell; blocks until filled."""
        return isa.load_version(self.addr, FILL_VERSION)


class MStructure:
    """A take/put mutable dataflow cell.

    One ``take``/``put`` pair per task id; version ids must rise across
    puts (use the task id, per GC rule 1).

    Like Barth's original M-structures, concurrent takes are *racy*: a
    later-id task that reaches the cell first may take the older value
    (takes serialize on the lock, not on task order).  Programs needing
    deterministic task-ordered hand-off should use the exact-version
    baton pattern of Figure 1 instead (``lock_load_version(tid)`` /
    ``unlock_version(tid, next_tid)``) — that is precisely the extra
    power O-structures add over M-structures (Section V-A: M-structures
    "do not provide total ordering between an arbitrary number of
    producers and consumers").
    """

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def initialize(self, value: Any) -> tuple:
        """Create the initial (version 0) value; part of construction."""
        return isa.store_version(self.addr, 0, value)

    def take(self, tid: int) -> Generator:
        """Empty the cell: returns ``(taken_version, value)``.

        Blocks while another task holds the cell (its version is locked).
        """
        version, value = yield isa.lock_load_latest(self.addr, tid)
        return version, value

    def put(self, tid: int, taken_version: int, value: Any) -> Generator:
        """Refill the cell with ``value`` and release it.

        The new value becomes version ``tid``; the taken version is
        unlocked afterwards so blocked takers re-run their LOAD-LATEST
        and pick up the refill.
        """
        yield isa.store_version(self.addr, tid, value)
        yield isa.unlock_version(self.addr, taken_version, None)

    def read(self, tid: int) -> Generator:
        """Non-destructive read of the current value (blocks if taken)."""
        _, value = yield isa.load_latest(self.addr, tid)
        return value


def new_istructure(machine) -> IStructure:
    """Allocate an I-structure on a machine's versioned heap."""
    return IStructure(machine.heap.alloc_versioned(1))


def new_mstructure(machine, initial: Any) -> MStructure:
    """Allocate and initialise an M-structure (initial value = version 0)."""
    m = MStructure(machine.heap.alloc_versioned(1))
    machine.manager.store_version(0, m.addr, 0, initial)
    return m
