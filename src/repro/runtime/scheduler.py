"""Static task-to-core assignment (paper, Section IV-A).

"The task scheduler was implemented in software and used a static
assignment of tasks to cores.  This policy imposes a minimal runtime
overhead, but neglects load imbalance."

Round-robin by task index is the canonical static policy and is what the
pipelined workloads want: consecutive task ids land on different cores, so
the hand-over-hand pipeline actually overlaps.  A block policy (contiguous
chunks per core) is provided for comparison/ablation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigError
from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.core import Core


class StaticScheduler:
    """Distributes a task list over the cores before the run starts."""

    POLICIES = ("round_robin", "block")

    def __init__(self, policy: str = "round_robin"):
        if policy not in self.POLICIES:
            raise ConfigError(f"unknown scheduling policy {policy!r}")
        self.policy = policy

    def assign(self, tasks: Sequence[Task], cores: Sequence["Core"]) -> None:
        """Enqueue every task on its statically chosen core."""
        n = len(cores)
        if n == 0:
            raise ConfigError("no cores to schedule on")
        if self.policy == "round_robin":
            for i, task in enumerate(tasks):
                cores[i % n].enqueue(task)
        else:  # block
            per = (len(tasks) + n - 1) // n
            for i, task in enumerate(tasks):
                cores[min(i // per, n - 1) if per else 0].enqueue(task)

    def plan(self, num_tasks: int, num_cores: int) -> list[int]:
        """Core index for each task (introspection/tests)."""
        if self.policy == "round_robin":
            return [i % num_cores for i in range(num_tasks)]
        per = (num_tasks + num_cores - 1) // num_cores
        return [min(i // per, num_cores - 1) if per else 0 for i in range(num_tasks)]
