"""Simulated heap: address-space management for workloads.

Workload data structures live at synthetic addresses so the cache model
sees realistic layouts (nodes spread over cache lines, arrays contiguous).
The heap is a simple bump allocator over two regions: a conventional
region and a versioned region whose pages carry the page-table bit.  A
third, disjoint region backs the version-block free list.

Freed node memory is intentionally *not* recycled during a run: Section
III-C recommends programs delay recycling of freed versioned memory to
quiescent points, and the workloads follow that rule.
"""

from __future__ import annotations

from ..errors import AllocationError
from ..ostruct.page_table import PageTable

#: Region bases (well separated; the simulated address space is 2^48).
CONVENTIONAL_BASE = 0x1000_0000
VERSIONED_BASE = 0x4000_0000
VERSION_BLOCK_BASE = 0x8000_0000

_REGION_LIMIT = 0x3000_0000  # bytes per region


class SimHeap:
    """Bump allocator over the simulated address space."""

    def __init__(self, page_table: PageTable):
        self._page_table = page_table
        self._conv_next = CONVENTIONAL_BASE
        self._vers_next = VERSIONED_BASE

    @staticmethod
    def _align(addr: int, align: int) -> int:
        return (addr + align - 1) & ~(align - 1)

    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Allocate conventional memory; returns its base address."""
        if nbytes <= 0:
            raise AllocationError("allocation size must be positive")
        addr = self._align(self._conv_next, align)
        if addr + nbytes > CONVENTIONAL_BASE + _REGION_LIMIT:
            raise AllocationError("conventional region exhausted")
        self._conv_next = addr + nbytes
        return addr

    def alloc_versioned(self, nwords: int, word_bytes: int = 4, align: int = 8) -> int:
        """Allocate ``nwords`` O-structure addresses (versioned pages).

        Each word is an independent O-structure root; the page-table bit
        is set for the whole range so conventional access faults.
        """
        if nwords <= 0:
            raise AllocationError("allocation size must be positive")
        nbytes = nwords * word_bytes
        addr = self._align(self._vers_next, align)
        if addr + nbytes > VERSIONED_BASE + _REGION_LIMIT:
            raise AllocationError("versioned region exhausted")
        self._vers_next = addr + nbytes
        self._page_table.mark_versioned(addr, nbytes)
        return addr

    @property
    def conventional_used(self) -> int:
        return self._conv_next - CONVENTIONAL_BASE

    @property
    def versioned_used(self) -> int:
        return self._vers_next - VERSIONED_BASE
