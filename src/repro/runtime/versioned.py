"""The high-level versioned-handle API of Figure 1 (library column).

A :class:`Versioned` wraps one O-structure address and provides the
``versioned<T>`` methods the paper's library API exposes —
``load_ver`` / ``load_last`` / ``store_ver`` / ``lock_load_ver`` /
``lock_load_last`` / ``unlock_ver``.  Task bodies are generators, so each
method *returns a micro-op tuple* which the body yields to the core::

    def insert_end(tid, root):
        ver, cur = yield root.lock_load_last(tid)
        ...
        yield root.unlock_ver(tid, tid + 1)

This is the same relationship the paper draws between its library API and
the low-level instructions (cf. OpenMP over pthreads): the handle is sugar
over :mod:`repro.ostruct.isa`.
"""

from __future__ import annotations

from typing import Any

from ..ostruct import isa


class Versioned:
    """Handle over one versioned memory word (an O-structure root)."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def load_ver(self, version: int) -> tuple:
        """Exact-version load; yields the value."""
        return isa.load_version(self.addr, version)

    def load_last(self, cap: int) -> tuple:
        """Capped load; yields ``(version, value)``."""
        return isa.load_latest(self.addr, cap)

    def store_ver(self, version: int, value: Any) -> tuple:
        """Create a new version."""
        return isa.store_version(self.addr, version, value)

    def lock_load_ver(self, version: int) -> tuple:
        """Exact-version load + lock; yields the value."""
        return isa.lock_load_version(self.addr, version)

    def lock_load_last(self, cap: int) -> tuple:
        """Capped load + lock; yields ``(version, value)``."""
        return isa.lock_load_latest(self.addr, cap)

    def unlock_ver(self, version: int, new_version: int | None = None) -> tuple:
        """Unlock; optionally rename the value to ``new_version``."""
        return isa.unlock_version(self.addr, version, new_version)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Versioned @0x{self.addr:x}>"
