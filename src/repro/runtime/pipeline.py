"""Task-spawning conveniences matching Figure 1's outer loop.

The paper's library-API example ends with::

    for (int i = 0; i < N; ++i)
        create_task(i, insert_end, new node_t{i});

:func:`parallel_for` is that loop: it numbers tasks consecutively (ids
are versions, GC rule 1), builds them from one body, and optionally
submits them to a machine.  :func:`spawn_tasks` is the general form for
heterogeneous bodies, including out-of-order id assignment — rule 3
permits spawning above the lowest live id in any order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from ..errors import ConfigError
from .task import Task, TaskBody


def parallel_for(
    n: int,
    body: TaskBody,
    *args: Any,
    start_id: int = 1,
    machine=None,
    label: str = "",
) -> list[Task]:
    """Create ``n`` tasks ``body(tid, i, *args)`` with consecutive ids.

    The loop index is passed as the first body argument after the task
    id.  When ``machine`` is given the tasks are submitted immediately
    (round-robin static assignment); otherwise the caller submits.
    """
    if n <= 0:
        raise ConfigError("parallel_for needs at least one iteration")
    tasks = [
        Task(start_id + i, body, i, *args, label=label or f"pfor-{i}")
        for i in range(n)
    ]
    if machine is not None:
        machine.submit(tasks)
    return tasks


def spawn_tasks(
    specs: Iterable[tuple[int, TaskBody, Sequence[Any]]],
    machine=None,
) -> list[Task]:
    """Create tasks from ``(task_id, body, args)`` specs.

    Ids may arrive in any order (out-of-order spawning); duplicates are
    rejected here, and rule 3 (no id below the lowest live task) is
    enforced by the tracker at submission.
    """
    tasks = []
    seen: set[int] = set()
    for task_id, body, args in specs:
        if task_id in seen:
            raise ConfigError(f"duplicate task id {task_id}")
        seen.add(task_id)
        tasks.append(Task(task_id, body, *args))
    if machine is not None:
        machine.submit(tasks)
    return tasks
