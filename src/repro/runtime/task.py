"""Tasks and the GC progress-tracking contract (Section III-B).

The garbage collector expects the runtime to obey three rules:

1. tasks access versions using their task id, so version order matches
   sequential program order;
2. the memory system learns of task begin/end (TASK-BEGIN / TASK-END);
3. no task is ever created with an id lower than the lowest active id
   (out-of-order spawning above that bound is fine).

:class:`TaskTracker` enforces rules 2 and 3 and exposes the oldest/youngest
active ids the collector needs.  Rule 1 is a programming-model convention
that the workloads follow (their version arguments are task ids).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError

#: Cycles charged for TASK-BEGIN / TASK-END bookkeeping (the paper's static
#: scheduler "imposes a minimal runtime overhead").
TASK_BEGIN_CYCLES = 20
TASK_END_CYCLES = 20

TaskBody = Callable[..., Generator[tuple, Any, Any]]


class OpTrace:
    """A pre-compiled micro-op sequence usable as a task body.

    Wraps a static op tuple — e.g. one recorded from a previous run or
    emitted by a compiler pass — as a replayable task body: each
    :meth:`__call__` returns a fresh generator over the same ops, so
    abort-and-retry restarts work exactly as with generator functions.
    Op results are discarded (a static trace cannot branch on them);
    the task's return value is ``None``.
    """

    __slots__ = ("ops",)
    __name__ = "optrace"

    def __init__(self, ops: Iterable[tuple]):
        self.ops = tuple(ops)

    def __call__(self, task_id: int, *args: Any) -> Generator[tuple, Any, Any]:
        for op in self.ops:
            yield op

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<OpTrace {len(self.ops)} ops>"


class Task:
    """One unit of parallel work: an id plus a generator factory.

    ``body(task_id, *args)`` must return a generator that yields micro-ops
    (see :mod:`repro.ostruct.isa`).  The generator's return value is kept
    as ``task.result`` for validation against sequential references.
    A non-callable ``body`` is taken as a static op sequence and wrapped
    in an :class:`OpTrace` (compiled op-trace replay).
    """

    __slots__ = ("task_id", "body", "args", "label", "result", "finished")

    def __init__(self, task_id: int, body: TaskBody, *args: Any, label: str = ""):
        if task_id < 0:
            raise SimulationError("task ids must be non-negative")
        if not callable(body):
            body = OpTrace(body)
        self.task_id = task_id
        self.body = body
        self.args = args
        self.label = label or body.__name__
        self.result: Any = None
        self.finished = False

    def make_generator(self) -> Generator[tuple, Any, Any]:
        return self.body(self.task_id, *self.args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.task_id} {self.label}>"


class TaskTracker:
    """Live-task window used by the garbage collector.

    A task is *live* from creation (registration at submit time, which is
    when the paper's runtime creates tasks in program order) until its
    TASK-END.  Rule 3 is enforced at creation: no task may be created
    below the lowest live id.  The GC's finalization bound uses the
    lowest *live* id — a queued-but-unstarted task may still read old
    versions, so it must hold back reclamation exactly like a running one.
    """

    def __init__(self) -> None:
        self._live: set[int] = set()
        self._started: set[int] = set()
        self.max_seen: int = -1
        self.begun: int = 0
        self.ended: int = 0
        #: Callbacks fired with the task id after a task ends (GC hooks in).
        self.on_end: list[Callable[[int], None]] = []

    @property
    def active_ids(self) -> frozenset[int]:
        """Tasks currently executing (begun, not ended)."""
        return frozenset(self._started)

    @property
    def live_ids(self) -> frozenset[int]:
        """Tasks created and not yet ended (includes queued ones)."""
        return frozenset(self._live)

    def register(self, task_id: int) -> None:
        """Task creation (rule 3 checkpoint)."""
        if task_id < 0:
            raise SimulationError("task ids must be non-negative")
        if task_id in self._live:
            raise SimulationError(f"task {task_id} already live")
        if self._live and task_id < min(self._live):
            raise SimulationError(
                f"rule 3 violation: task {task_id} created below the "
                f"lowest live task {min(self._live)}"
            )
        self._live.add(task_id)

    def lowest_active(self) -> int | None:
        """Lowest live id (the GC's finalization bound)."""
        return min(self._live) if self._live else None

    def highest_active(self) -> int | None:
        """Highest id that has begun executing and not ended."""
        return max(self._started) if self._started else None

    def begin(self, task_id: int) -> None:
        """TASK-BEGIN: the task starts executing.

        Auto-registers tasks that were not created via :meth:`register`
        (direct ISA use), which applies the rule 3 check here instead.
        """
        if task_id not in self._live:
            self.register(task_id)
        if task_id in self._started:
            raise SimulationError(f"task {task_id} already active")
        self._started.add(task_id)
        self.max_seen = max(self.max_seen, task_id)
        self.begun += 1

    def end(self, task_id: int) -> None:
        """TASK-END: removes the task and fires GC hooks."""
        if task_id not in self._started:
            raise SimulationError(f"task {task_id} ended but was not active")
        self._started.discard(task_id)
        self._live.discard(task_id)
        self.ended += 1
        for fn in self.on_end:
            fn(task_id)


def make_tasks(
    bodies: Iterable[tuple[TaskBody, tuple]],
    start_id: int = 0,
    stride: int = 1,
) -> list[Task]:
    """Number a sequence of ``(body, args)`` pairs with consecutive ids."""
    tasks = []
    tid = start_id
    for body, args in bodies:
        tasks.append(Task(tid, body, *args))
        tid += stride
    return tasks
