"""Macro-op fusion: a fast-path interpreter for non-stalling op runs.

The per-op execution pipeline costs one full engine round trip per
micro-op: ``schedule`` the core's resume, pop it from the wheel, re-enter
``Core._advance``, ``gen.send`` one op, dispatch, ``schedule`` again.
For the dominant op classes — ``compute`` and conventional ``load`` /
``store`` — nothing in that round trip can observably differ from just
*keeping going*: these ops never stall, never wake a waiter, and never
touch O-structure state.  :func:`run_block` therefore drains a run of
them in a single engine event, advancing the clock inline between ops
via :meth:`~repro.sim.engine.Simulator.try_advance`.

Byte-identity is by construction, not by approximation:

- every op still dispatches at its exact unfused cycle — the inline
  advance is granted only when *no* pending event anywhere in the kernel
  could fire first, i.e. precisely when the kernel would have popped our
  own resume with nothing in between.  Whenever another core, a GC
  phase, a fault event or a watchdog tick is due, the interpreter falls
  back to the ordinary ``schedule``-a-resume tail and the block ends.
- every op is dispatched through the same state mutations in the same
  order: stats counters, page-table checks, functional memory, hierarchy
  access, trace hooks.  Versioned / lock / task ops are never fused —
  they are handed back to ``Core._execute`` untouched, so stalls,
  aborts, fault injection, the sanitizer and checkpoint markers all
  observe them per-op exactly as before.
- conventional accesses that hit in the L1 are charged through an
  inlined copy of ``access``'s hit branch (lookup + recency bump + hit
  counter + exclusive acquisition on writes).  A missed ``lookup``
  mutates nothing, so probing first and falling back to the full
  hierarchy walk is byte-identical to always walking.

Fusion is controlled by ``MachineConfig.fused`` (default on) and can be
globally disabled — e.g. to bisect a suspected fusion bug without
touching config hashes — with ``REPRO_FUSED=0``.  Fusion telemetry lives
in :class:`FuseStats` on the machine, deliberately *outside*
``SimStats``: simulation statistics must stay byte-identical between
tiers, and these counters by construction differ.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Generator

from ..ostruct import isa

if TYPE_CHECKING:  # pragma: no cover
    from .core import Core

_COMPUTE = isa.COMPUTE
_LOAD = isa.LOAD
_STORE = isa.STORE

#: The op kinds the interpreter may retire inline: never stall, never
#: wake a waiter, never touch O-structure or lock state.  The core
#: consults this before entering the interpreter, so a lone versioned op
#: between two stalls pays nothing for the fusion machinery.
FUSIBLE = frozenset({_COMPUTE, _LOAD, _STORE})

#: Fusible entries a core skips after a block that fused nothing.  On a
#: busy multi-core machine the neighbours' events land inside almost
#: every op latency, so advances are refused and the interpreter's
#: entry/exit cost is pure overhead; the cooldown backs a congested core
#: off to the per-op path and re-probes every ``COOLDOWN + 1``-th
#: opportunity.  Purely a host-time heuristic: fusing or not fusing any
#: given op cannot change simulated behaviour, and the cooldown state
#: itself is a deterministic function of the (deterministic) schedule.
COOLDOWN = 31


def env_enabled() -> bool:
    """False when ``REPRO_FUSED`` globally disables fusion (debugging)."""
    return os.environ.get("REPRO_FUSED", "").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


class FuseStats:
    """Host-side fusion telemetry, kept off ``SimStats`` on purpose."""

    __slots__ = ("blocks", "ops", "fused_ops", "event_breaks", "op_breaks")

    def __init__(self) -> None:
        #: Fused blocks executed (interpreter entries; the core only
        #: enters it when the op stream is at a fusible op).
        self.blocks = 0
        #: Fusible ops retired by the interpreter.
        self.ops = 0
        #: Granted inline clock advances — each one is a schedule/pop
        #: engine round trip that was actually elided.
        self.fused_ops = 0
        #: Blocks ended because another pending event had to fire first.
        self.event_breaks = 0
        #: Blocks ended by a non-fusible (versioned / lock / task) op.
        self.op_breaks = 0

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FuseStats {self.as_dict()}>"


def make_interpreter(core: "Core"):
    """Build ``core``'s fused-block interpreter.

    The interpreter is entered once per engine event on the core's
    advance path, so its prologue is on the critical path even for runs
    that fuse nothing (a lone versioned op between two stalls).  All
    machine-lifetime-stable state — caches, directory, stats objects,
    config scalars, the page table, functional memory — is therefore
    captured in closure cells *once*, at machine build time; a call
    binds only what can legitimately differ per block (the trace hook
    and the current task id).

    The returned ``run_block(gen, send_value)`` drives ``gen`` through
    one fused block and returns the op that ended it: ``None`` when the
    continuation is already arranged (resume scheduled, or the task
    finished), else the pending non-fusible op — not yet dispatched —
    for the caller's ordinary per-op path.
    """
    m = core.machine
    stats = m.stats
    fstats = m.fuse_stats
    hierarchy = m.hierarchy
    cid = core.core_id
    l1_lookup = hierarchy.l1s[cid].lookup
    l1_mark_dirty = hierarchy.l1s[cid].mark_dirty
    acquire_exclusive = hierarchy.directory.acquire_exclusive
    hit_latency = m.config.l1.hit_latency
    issue_width = m.config.issue_width
    check_conventional = m.page_table.check_conventional
    mem = m.mem
    mem_get = mem.get
    sim = core.sim
    try_advance = sim.try_advance
    access = hierarchy.access
    schedule_resume = core._schedule_resume

    def run_block(
        gen: Generator[tuple, Any, Any], first_op: tuple
    ) -> tuple | None:
        # Stable for the whole block: hooks can only be (de)attached by
        # an event, and an unbroken fused run fires none.
        hook = m.trace_hook
        tid = core.current.task_id if hook is not None else 0  # type: ignore[union-attr]
        send = gen.send
        op = first_op
        # Counter deltas batched in locals and flushed once per block:
        # nothing can observe the machine mid-block (no event fires
        # inside an unbroken run, and no hierarchy/trace callback reads
        # these counters), so one RMW per block replaces one per op.
        n_ops = 0
        d_compute = 0
        d_loads = 0
        d_stores = 0
        d_hits = 0
        d_busy = 0
        # True only on the refused-advance exit, where the final op's
        # round trip was *not* elided (n_fused = n_ops - 1; every other
        # exit follows a granted advance, so n_fused = n_ops).
        event_break = False
        try:
            while True:
                kind = op[0]
                if kind == _COMPUTE:
                    n = op[1]
                    d_compute += n
                    latency = -(-n // issue_width)  # ceil division
                    result = None
                elif kind == _LOAD:
                    addr = op[1]
                    check_conventional(addr)
                    d_loads += 1
                    block = addr >> 6
                    if l1_lookup(block):
                        # access()'s L1-hit branch, inlined: lookup has
                        # already bumped recency exactly as access would,
                        # and a missed lookup mutates nothing, so falling
                        # back to the full walk is byte-identical.
                        d_hits += 1
                        latency = hit_latency
                    else:
                        latency = access(cid, addr)
                    result = mem_get(addr, 0)
                elif kind == _STORE:
                    addr = op[1]
                    check_conventional(addr)
                    d_stores += 1
                    mem[addr] = op[2]
                    block = addr >> 6
                    if l1_lookup(block):
                        d_hits += 1
                        latency = hit_latency + acquire_exclusive(cid, block)
                        l1_mark_dirty(block)
                    else:
                        latency = access(cid, addr, write=True)
                    result = None
                else:
                    fstats.op_breaks += 1
                    return op
                n_ops += 1
                d_busy += latency
                if hook is not None:
                    hook(cid, tid, op, latency, False)
                if sim._inline and not (
                    sim._count or sim._over or sim._solo_fn is not None
                ):
                    # Nothing is pending anywhere in the kernel, so the
                    # drain loop's next pop could only be our own resume:
                    # jump the clock without the full occupancy scan.
                    # This is the steady state of a sequential run.
                    sim.now += latency
                elif not try_advance(latency):
                    # Some pending event is due at or before our retire
                    # time (or the drain is bounded): yield to the kernel
                    # exactly like the per-op path does.  A block that
                    # fused nothing puts the core on cooldown — under
                    # multi-core congestion almost every advance is
                    # refused, and probing every entry is pure overhead.
                    event_break = True
                    fstats.event_breaks += 1
                    if n_ops == 1:
                        core._fuse_cooldown = COOLDOWN
                    core._resume_value = result
                    schedule_resume(latency)
                    return None
                try:
                    op = send(result)
                except StopIteration as stop:
                    core._finish_task(stop.value)
                    return None
        finally:
            fstats.blocks += 1
            fstats.ops += n_ops
            fstats.fused_ops += n_ops - 1 if event_break else n_ops
            if n_ops:
                m.retired_ops += n_ops
                core.busy_cycles += d_busy
                if d_compute:
                    stats.compute_ops += d_compute
                if d_loads:
                    stats.loads += d_loads
                if d_stores:
                    stats.stores += d_stores
                if d_hits:
                    stats.l1_hits += d_hits

    return run_block
