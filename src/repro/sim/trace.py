"""Execution tracing: per-op event capture for debugging and analysis.

A :class:`Tracer` attached to a machine records one event per retired
micro-op — cycle, core, task, opcode, operands, latency, result — into a
bounded ring buffer.  Filters keep the volume down (by opcode class, by
address range, by core).  This is the moral equivalent of gem5's
``--debug-flags`` tracing and exists for the same reason: when a
protocol deadlocks or produces the wrong answer, the interleaving *is*
the bug report.

Usage::

    machine = Machine(config)
    tracer = Tracer(machine, capacity=10_000, only_versioned=True)
    ...
    machine.run()
    for ev in tracer.events():
        print(ev)
    print(tracer.summary())
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from ..ostruct import isa

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One retired micro-op."""

    cycle: int
    core: int
    task: int | None
    op: str
    addr: int | None
    detail: tuple
    latency: int
    stalled: bool

    def __str__(self) -> str:
        addr = f" @0x{self.addr:x}" if self.addr is not None else ""
        stall = " STALLED" if self.stalled else ""
        task = f" t{self.task}" if self.task is not None else ""
        return (
            f"[{self.cycle:>8}] c{self.core}{task} {self.op}{addr} "
            f"lat={self.latency}{stall}"
        )


#: Ops that carry an address as their second element.
_ADDRESSED = frozenset(
    {
        isa.LOAD,
        isa.STORE,
        isa.LOAD_VERSION,
        isa.LOAD_LATEST,
        isa.STORE_VERSION,
        isa.LOCK_LOAD_VERSION,
        isa.LOCK_LOAD_LATEST,
        isa.UNLOCK_VERSION,
    }
)


class Tracer:
    """Bounded ring-buffer trace of a machine's retired micro-ops.

    Accounting invariant: every event that passes the filters counts
    toward ``recorded``; once the ring is full each further event evicts
    the oldest one and counts toward ``dropped``.  Hence at all times::

        recorded == buffered + dropped

    where ``buffered`` (``len(tracer)``) is what ``events()`` can still
    replay.  ``dropped`` therefore counts *evicted-from-the-buffer*
    events, not filtered-out ones — filtered events appear in no counter.
    """

    __slots__ = (
        "machine",
        "_buf",
        "only_versioned",
        "cores",
        "addr_range",
        "dropped",
        "recorded",
        "_op_counts",
        "_hook",
    )

    def __init__(
        self,
        machine: "Machine",
        capacity: int = 65536,
        *,
        only_versioned: bool = False,
        cores: set[int] | None = None,
        addr_range: tuple[int, int] | None = None,
    ):
        self.machine = machine
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self.only_versioned = only_versioned
        self.cores = cores
        self.addr_range = addr_range
        self.dropped = 0
        self.recorded = 0
        self._op_counts: Counter[str] = Counter()
        self._hook = self._record  # stable bound-method object for detach()
        machine.add_trace_hook(self._hook)

    # -- filtering ------------------------------------------------------------

    def _wants(self, core: int, op: str, addr: int | None) -> bool:
        if self.only_versioned and op not in isa.VERSIONED_OPS:
            return False
        if self.cores is not None and core not in self.cores:
            return False
        if self.addr_range is not None:
            if addr is None:
                return False
            lo, hi = self.addr_range
            if not lo <= addr < hi:
                return False
        return True

    # -- recording (called by the core) -----------------------------------------

    def _record(
        self,
        core: int,
        task: int | None,
        op_tuple: tuple,
        latency: int,
        stalled: bool,
    ) -> None:
        op = op_tuple[0]
        addr = op_tuple[1] if op in _ADDRESSED else None
        if not self._wants(core, op, addr):
            return
        if len(self._buf) == self._buf.maxlen:
            self.dropped += 1
        self.recorded += 1
        self._op_counts[op] += 1
        self._buf.append(
            TraceEvent(
                cycle=self.machine.sim.now,
                core=core,
                task=task,
                op=op,
                addr=addr,
                detail=tuple(op_tuple[1:]),
                latency=latency,
                stalled=stalled,
            )
        )

    # -- inspection -------------------------------------------------------------

    def events(self) -> Iterator[TraceEvent]:
        return iter(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def last(self, n: int) -> list[TraceEvent]:
        """The most recent ``n`` events (deadlock post-mortems)."""
        buf = list(self._buf)
        return buf[-n:]

    def for_address(self, addr: int) -> list[TraceEvent]:
        """Every recorded event touching ``addr`` — one location's history."""
        return [e for e in self._buf if e.addr == addr]

    def for_task(self, task_id: int) -> list[TraceEvent]:
        return [e for e in self._buf if e.task == task_id]

    def summary(self) -> dict[str, Any]:
        """Aggregate counts and latency statistics of recorded events.

        The three counters satisfy ``recorded == buffered + dropped``
        (see the class docstring); latency/stall aggregates cover only
        the ``buffered`` events still in the ring.
        """
        lat_total = sum(e.latency for e in self._buf)
        stalls = sum(1 for e in self._buf if e.stalled)
        return {
            "recorded": self.recorded,
            "buffered": len(self._buf),
            "dropped": self.dropped,
            "op_counts": dict(self._op_counts),
            "buffered_latency_total": lat_total,
            "buffered_stalled_ops": stalls,
        }

    def detach(self) -> None:
        """Stop recording.  Idempotent; other attached hooks keep running."""
        self.machine.remove_trace_hook(self._hook)
