"""Memory hierarchy glue: per-core L1s, shared L2, DRAM, coherence.

``access`` is the single entry point used by cores and by the O-structure
manager; it returns the access latency in cycles and maintains all
residency, recency, coherence and statistics state.  The ``install``
flag implements the paper's cache-pollution avoidance: blocks fetched
while walking a version-block list are *not* installed in the caches —
only the block holding the requested version is.
"""

from __future__ import annotations

from ..config import MachineConfig
from .cache import Cache
from .coherence import Directory
from .dram import Dram
from .stats import SimStats


class MemoryHierarchy:
    """Table II memory system for ``config.num_cores`` cores."""

    __slots__ = ("config", "stats", "l1s", "l2", "dram", "directory", "_extra_hooks")

    def __init__(self, config: MachineConfig, stats: SimStats):
        self.config = config
        self.stats = stats
        self.l1s: list[Cache] = [
            Cache(config.l1, name=f"L1.{i}") for i in range(config.num_cores)
        ]
        self.l2 = Cache(config.l2, name="L2")
        self.dram = Dram(config.dram_latency_cycles, stats)
        self.directory = Directory(self.l1s, stats, config.remote_penalty)
        # Keep the directory consistent when LRU eviction drops a block.
        for i, l1 in enumerate(self.l1s):
            l1.evict_hook = self._make_evict_hook(i)
        #: Extra per-core hooks (the O-structure manager registers one per
        #: core to discard compressed version-block lines).
        self._extra_hooks: list[list] = [[] for _ in range(config.num_cores)]

    def _make_evict_hook(self, core_id: int):
        def hook(block: int) -> None:
            self.directory.note_eviction(core_id, block)
            if self.l1s[core_id].is_dirty(block):  # pragma: no cover - defensive
                self.stats.writebacks += 1
            for fn in self._extra_hooks[core_id]:
                fn(block)

        return hook

    def add_l1_evict_hook(self, core_id: int, fn) -> None:
        """Register ``fn(block)`` to fire when ``core_id``'s L1 drops a block."""
        self._extra_hooks[core_id].append(fn)

    # ------------------------------------------------------------------

    def block_of(self, addr: int) -> int:
        return addr >> 6

    def access(
        self,
        core_id: int,
        addr: int,
        *,
        write: bool = False,
        install: bool = True,
    ) -> int:
        """One memory access from ``core_id``; returns latency in cycles."""
        block = addr >> 6
        l1 = self.l1s[core_id]
        stats = self.stats
        latency = self.config.l1.hit_latency

        if l1.lookup(block):
            stats.l1_hits += 1
            if write:
                latency += self.directory.acquire_exclusive(core_id, block)
                l1.mark_dirty(block)
            return latency

        # L1 miss.
        stats.l1_misses += 1
        latency += self.config.l2_hit_latency
        if self.l2.lookup(block):
            stats.l2_hits += 1
            # A modified copy in a remote L1 adds a cache-to-cache transfer;
            # the paper notes LLC and cross-core latencies are comparable.
            if self.directory.has_remote_copy(core_id, block):
                latency += self.config.remote_penalty if write else 0
        else:
            stats.l2_misses += 1
            latency += self.dram.access()
            if install:
                self.l2.insert(block)

        if write:
            latency += self.directory.acquire_exclusive(core_id, block)

        if install:
            evicted = l1.insert(block, dirty=write)
            if evicted is not None and l1.is_dirty(evicted):  # pragma: no cover
                stats.writebacks += 1
            self.directory.note_fill(core_id, block)
        return latency

    def write_no_fetch(self, core_id: int, addr: int) -> int:
        """Write-allocate without a memory fetch.

        Used when the writer composes the *entire* block content (e.g.
        creating a fresh version block from the free list): the stale
        line need not be read, only ownership acquired.
        """
        block = addr >> 6
        l1 = self.l1s[core_id]
        latency = self.config.l1.hit_latency
        if l1.lookup(block):
            self.stats.l1_hits += 1
        else:
            l1.insert(block, dirty=True)
            self.directory.note_fill(core_id, block)
            self.l2.insert(block)
        latency += self.directory.acquire_exclusive(core_id, block)
        return latency

    def invalidate_everywhere(self, addr: int) -> None:
        """Drop a block from every cache level (used on version reclaim)."""
        block = addr >> 6
        for l1 in self.l1s:
            l1.invalidate(block)
        self.l2.invalidate(block)

    def flush_all(self) -> None:
        """Empty every cache (between experiment phases)."""
        for l1 in self.l1s:
            l1.flush()
        self.l2.flush()
