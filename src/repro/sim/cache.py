"""Set-associative cache with LRU replacement.

Used for both the per-core L1s (32 KB, 8-way) and the shared L2
(1.5 MB x cores, 16-way).  The cache tracks block residency and
recency only; data is held functionally by higher layers.  An optional
``evict_hook`` lets the O-structure manager discard compressed
version-block state whenever its backing line leaves the cache (by
eviction *or* coherence invalidation), mirroring the paper's "discard the
compressed version block on a coherence message" policy.

Storage layout: instead of one dict per set, all ways live in flat
parallel arrays (``_tags`` / ``_stamps`` / ``_dirty``) indexed by
``set * ways + way``, with ``-1`` tagging an empty way.  Way scans use
``list.index`` with explicit bounds, which runs at C speed over the
handful of ways per set; LRU state is an integer stamp per way (the
global tick counter is monotonically increasing, so stamps are unique and
the minimum-stamp way is exactly the dict kernel's least-recent entry).
This keeps the steady state allocation-free: a hit, an install and an
eviction each mutate list slots in place rather than resizing per-set
dicts and a global dirty set.
"""

from __future__ import annotations

from typing import Callable

from ..config import CacheConfig


class Cache:
    """One cache level.  Addresses are byte addresses; blocks are 64 B."""

    __slots__ = (
        "config",
        "name",
        "_tags",
        "_stamps",
        "_dirty",
        "_tick",
        "_num_sets",
        "_ways",
        "_block_shift",
        "_resident",
        "evict_hook",
    )

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._block_shift = config.block_bytes.bit_length() - 1
        n = self._num_sets * self._ways
        # Flat way arrays: tag (-1 = empty), LRU stamp, dirty flag.
        self._tags: list[int] = [-1] * n
        self._stamps: list[int] = [0] * n
        self._dirty: list[bool] = [False] * n
        self._tick = 0
        self._resident = 0
        #: Called with the block number whenever a block leaves this cache.
        self.evict_hook: Callable[[int], None] | None = None

    # -- address helpers ----------------------------------------------------

    def block_of(self, addr: int) -> int:
        """Block number containing byte address ``addr``."""
        return addr >> self._block_shift

    # -- cache operations ---------------------------------------------------

    def lookup(self, block: int) -> bool:
        """True if ``block`` is resident; updates recency on a hit."""
        base = (block % self._num_sets) * self._ways
        try:
            i = self._tags.index(block, base, base + self._ways)
        except ValueError:
            return False
        self._tick += 1
        self._stamps[i] = self._tick
        return True

    def contains(self, block: int) -> bool:
        """Residency check without touching recency."""
        base = (block % self._num_sets) * self._ways
        try:
            self._tags.index(block, base, base + self._ways)
        except ValueError:
            return False
        return True

    def insert(self, block: int, dirty: bool = False) -> int | None:
        """Install ``block``; returns the evicted block number, if any."""
        ways = self._ways
        base = (block % self._num_sets) * ways
        end = base + ways
        tags = self._tags
        self._tick += 1
        victim: int | None = None
        try:
            i = tags.index(block, base, end)
        except ValueError:
            try:
                i = tags.index(-1, base, end)
            except ValueError:
                # Set full: evict the LRU way.  Stamps are unique, so the
                # minimum-stamp way is the least recently used entry.
                stamps = self._stamps
                i = base
                best = stamps[base]
                for j in range(base + 1, end):
                    if stamps[j] < best:
                        best = stamps[j]
                        i = j
                victim = tags[i]
                tags[i] = -1
                self._dirty[i] = False
                self._resident -= 1
                if self.evict_hook is not None:
                    self.evict_hook(victim)
            tags[i] = block
            self._dirty[i] = False
            self._resident += 1
        self._stamps[i] = self._tick
        if dirty:
            self._dirty[i] = True
        return victim

    def mark_dirty(self, block: int) -> None:
        base = (block % self._num_sets) * self._ways
        try:
            i = self._tags.index(block, base, base + self._ways)
        except ValueError:
            return
        self._dirty[i] = True

    def is_dirty(self, block: int) -> bool:
        base = (block % self._num_sets) * self._ways
        try:
            i = self._tags.index(block, base, base + self._ways)
        except ValueError:
            return False
        return self._dirty[i]

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present; returns whether it was resident."""
        base = (block % self._num_sets) * self._ways
        tags = self._tags
        try:
            i = tags.index(block, base, base + self._ways)
        except ValueError:
            return False
        tags[i] = -1
        self._dirty[i] = False
        self._resident -= 1
        if self.evict_hook is not None:
            self.evict_hook(block)
        return True

    def flush(self) -> None:
        """Empty the cache (used between experiment phases)."""
        tags = self._tags
        dirty = self._dirty
        hook = self.evict_hook
        for i, block in enumerate(tags):
            if block != -1:
                tags[i] = -1
                dirty[i] = False
                self._resident -= 1
                if hook is not None:
                    hook(block)

    @property
    def resident_blocks(self) -> int:
        return self._resident

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cache {self.name} {self.config.size_bytes // 1024}KiB "
            f"{self.config.ways}-way, {self._resident} blocks resident>"
        )
