"""Set-associative cache with LRU replacement.

Used for both the per-core L1s (32 KB, 8-way) and the shared L2
(1.5 MB x cores, 16-way).  The cache tracks block residency and
recency only; data is held functionally by higher layers.  An optional
``evict_hook`` lets the O-structure manager discard compressed
version-block state whenever its backing line leaves the cache (by
eviction *or* coherence invalidation), mirroring the paper's "discard the
compressed version block on a coherence message" policy.
"""

from __future__ import annotations

from typing import Callable

from ..config import CacheConfig


class Cache:
    """One cache level.  Addresses are byte addresses; blocks are 64 B."""

    __slots__ = (
        "config",
        "name",
        "_sets",
        "_dirty",
        "_tick",
        "_num_sets",
        "_block_shift",
        "evict_hook",
    )

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self._num_sets = config.num_sets
        self._block_shift = config.block_bytes.bit_length() - 1
        # One dict per set: block_number -> last-use tick (LRU bookkeeping).
        self._sets: list[dict[int, int]] = [{} for _ in range(self._num_sets)]
        self._dirty: set[int] = set()
        self._tick = 0
        #: Called with the block number whenever a block leaves this cache.
        self.evict_hook: Callable[[int], None] | None = None

    # -- address helpers ----------------------------------------------------

    def block_of(self, addr: int) -> int:
        """Block number containing byte address ``addr``."""
        return addr >> self._block_shift

    def _set_of(self, block: int) -> dict[int, int]:
        return self._sets[block % self._num_sets]

    # -- cache operations ---------------------------------------------------

    def lookup(self, block: int) -> bool:
        """True if ``block`` is resident; updates recency on a hit."""
        s = self._set_of(block)
        if block in s:
            self._tick += 1
            s[block] = self._tick
            return True
        return False

    def contains(self, block: int) -> bool:
        """Residency check without touching recency."""
        return block in self._set_of(block)

    def insert(self, block: int, dirty: bool = False) -> int | None:
        """Install ``block``; returns the evicted block number, if any."""
        s = self._set_of(block)
        self._tick += 1
        victim: int | None = None
        if block not in s and len(s) >= self.config.ways:
            victim = min(s, key=s.__getitem__)
            del s[victim]
            self._dirty.discard(victim)
            if self.evict_hook is not None:
                self.evict_hook(victim)
        s[block] = self._tick
        if dirty:
            self._dirty.add(block)
        return victim

    def mark_dirty(self, block: int) -> None:
        if self.contains(block):
            self._dirty.add(block)

    def is_dirty(self, block: int) -> bool:
        return block in self._dirty

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present; returns whether it was resident."""
        s = self._set_of(block)
        if block in s:
            del s[block]
            self._dirty.discard(block)
            if self.evict_hook is not None:
                self.evict_hook(block)
            return True
        return False

    def flush(self) -> None:
        """Empty the cache (used between experiment phases)."""
        for s in self._sets:
            for block in list(s):
                del s[block]
                if self.evict_hook is not None:
                    self.evict_hook(block)
        self._dirty.clear()

    @property
    def resident_blocks(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cache {self.name} {self.config.size_bytes // 1024}KiB "
            f"{self.config.ways}-way, {self.resident_blocks} blocks resident>"
        )
