"""Statistics counters collected during simulation.

One :class:`SimStats` instance is shared by the whole machine; components
increment plain integer fields (cheap, no dict hashing on the hot path).
Derived ratios are provided as properties so reports never divide by zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class SimStats:
    """Aggregate counters for one simulation run."""

    # Conventional memory system.
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_accesses: int = 0
    invalidations: int = 0
    writebacks: int = 0

    # Instruction mix.
    compute_ops: int = 0
    loads: int = 0
    stores: int = 0

    # O-structure activity.
    versioned_ops: int = 0
    direct_hits: int = 0
    full_lookups: int = 0
    lookup_blocks_visited: int = 0
    versions_created: int = 0
    versions_locked: int = 0
    versions_unlocked: int = 0
    versioned_stalls: int = 0
    versioned_stall_cycles: int = 0
    root_load_stalls: int = 0
    insertion_retries: int = 0

    # Garbage collection.
    gc_phases: int = 0
    gc_reclaimed: int = 0
    shadowed_registered: int = 0
    free_list_refills: int = 0

    # Fault recovery (allocation backpressure, watchdog, fault injector).
    emergency_gc_phases: int = 0
    backpressure_stalls: int = 0
    backpressure_stall_cycles: int = 0
    watchdog_trips: int = 0
    watchdog_kicks: int = 0
    tasks_retried: int = 0
    faults_injected: int = 0
    checkpoints_reached: int = 0
    gc_pin_kept: int = 0

    # Tasks.
    tasks_started: int = 0
    tasks_finished: int = 0

    # Read-write lock baseline.
    rwlock_read_acquires: int = 0
    rwlock_write_acquires: int = 0
    rwlock_wait_cycles: int = 0

    # Final clock value, filled in by the machine when a run completes.
    cycles: int = 0

    per_core_cycles: dict[int, int] = field(default_factory=dict)

    @property
    def l1_accesses(self) -> int:
        return self.l1_hits + self.l1_misses

    @property
    def l1_hit_rate(self) -> float:
        total = self.l1_accesses
        return self.l1_hits / total if total else 0.0

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1_accesses
        return self.l1_misses / total if total else 0.0

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    @property
    def direct_hit_rate(self) -> float:
        """Fraction of versioned lookups served by the compressed L1 line."""
        total = self.direct_hits + self.full_lookups
        return self.direct_hits / total if total else 0.0

    @property
    def versioned_stall_rate(self) -> float:
        """Fraction of versioned ops that blocked at least once."""
        return self.versioned_stalls / self.versioned_ops if self.versioned_ops else 0.0

    @property
    def avg_lookup_walk(self) -> float:
        """Mean version blocks visited per full lookup."""
        return (
            self.lookup_blocks_visited / self.full_lookups
            if self.full_lookups
            else 0.0
        )

    def snapshot(self) -> dict:
        """A plain-dict copy of all counters (for reports and tests).

        ``per_core_cycles`` is copied with *string* keys so a snapshot
        survives a JSON round trip through the result cache unchanged —
        fresh and cached rows stay byte-identical.
        """
        out: dict = {}
        for f in fields(self):
            if f.name == "per_core_cycles":
                continue
            out[f.name] = getattr(self, f.name)
        out["per_core_cycles"] = {
            str(core): cycles
            for core, cycles in sorted(self.per_core_cycles.items())
        }
        out["l1_hit_rate"] = self.l1_hit_rate
        out["l1_miss_rate"] = self.l1_miss_rate
        out["l2_hit_rate"] = self.l2_hit_rate
        out["direct_hit_rate"] = self.direct_hit_rate
        out["versioned_stall_rate"] = self.versioned_stall_rate
        out["avg_lookup_walk"] = self.avg_lookup_walk
        return out
