"""Live deadlock watchdog with abort-and-retry recovery.

The post-mortem wait-graph analysis in :mod:`repro.sim.waitgraph` only
runs after the event heap drains — useless for a run that must *survive*
a deadlock.  The watchdog turns the same analysis into a recovery
mechanism: it ticks every ``cycle_budget`` cycles, and when no core has
retired an operation over a whole budget while at least one core sits
blocked, it

1. builds the wait graph and runs cycle detection live;
2. picks a victim — the youngest (highest-id) abortable task in the
   first cycle; aborting the youngest wastes the least completed work
   and, by rule 1, cannot invalidate values already read by others
   (versions below the victim's id are untouched by the rollback);
3. aborts and retries the victim via :meth:`Core.abort_and_retry`,
   backing off exponentially (``backoff_cycles * 2**(attempt-1)``) so
   repeated collisions between the same tasks are spread apart;
4. bounds recovery at ``retry_limit`` attempts per task, after which it
   stands down and lets the run fail with the usual drain-time
   :class:`~repro.errors.DeadlockError` (plus wait-graph report).

When the hang shows no lock cycle — e.g. an injected dropped wake-up —
the watchdog instead *kicks* every waiter queue (bounded by
``kick_limit`` per no-progress streak), which is exactly the lost-wakeup
repair a real runtime performs with a timed re-check.

The watchdog only reschedules its tick while the machine still has
pending events or it just acted, so an armed watchdog never keeps a
finished (or truly dead) simulation alive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import waitgraph

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine


class Watchdog:
    """Progress monitor over one machine; armed when ``watchdog_cycles > 0``."""

    __slots__ = (
        "machine",
        "cycle_budget",
        "retry_limit",
        "backoff_cycles",
        "kick_limit",
        "retries",
        "gave_up",
        "_last_retired",
        "_kicks",
        "_stopped",
        "_tick_cb",
    )

    def __init__(
        self,
        machine: "Machine",
        *,
        cycle_budget: int,
        retry_limit: int,
        backoff_cycles: int,
        kick_limit: int,
    ):
        self.machine = machine
        self.cycle_budget = cycle_budget
        self.retry_limit = retry_limit
        self.backoff_cycles = backoff_cycles
        self.kick_limit = kick_limit
        #: Abort attempts per task id (persists across trips: the retry
        #: bound is per task, not per trip).
        self.retries: dict[int, int] = {}
        #: True once recovery was attempted and exhausted; the run is
        #: left to fail with the drain-time deadlock report.
        self.gave_up = False
        self._last_retired = 0
        self._kicks = 0
        self._stopped = False
        self._tick_cb = self._tick

    def start(self) -> None:
        self._last_retired = self.machine.retired_ops
        self.machine.sim.schedule(self.cycle_budget, self._tick_cb)

    def _tick(self) -> None:
        if self._stopped:
            return
        m = self.machine
        if all(core.idle for core in m.cores):
            return  # run finished; let the heap drain
        if m.retired_ops != self._last_retired:
            # Progress: reset the lost-wakeup kick budget and re-arm.
            self._last_retired = m.retired_ops
            self._kicks = 0
            m.sim.schedule(self.cycle_budget, self._tick_cb)
            return
        blocked = [core for core in m.cores if core.blocked]
        if not blocked:
            # No retirement but nothing parked either — a long-latency
            # op (refill trap, big compute) or an injected GC pause is
            # in flight.  Not a hang; keep watching while events remain.
            if m.sim.pending_events:
                m.sim.schedule(self.cycle_budget, self._tick_cb)
            return
        m.stats.watchdog_trips += 1
        hook = m.recovery_hook
        if hook is not None:
            hook("trip", {"blocked_cores": [c.core_id for c in blocked]})
        acted = self._recover(blocked)
        if acted or m.sim.pending_events:
            m.sim.schedule(self.cycle_budget, self._tick_cb)
        else:
            self._stopped = True

    def _recover(self, blocked: list) -> bool:
        """Attempt one recovery action; returns whether anything was done."""
        m = self.machine
        cycles = waitgraph.find_cycles(m)
        if cycles:
            by_task = {
                core.current.task_id: core
                for core in m.cores
                if core.current is not None
            }
            for cycle in cycles:
                # Youngest first: cheapest rollback, values below its id
                # are untouched so no committed read is invalidated.
                for tid in sorted(cycle, reverse=True):
                    core = by_task.get(tid)
                    if core is None or not core.can_abort:
                        continue
                    if not m.manager.can_abort_task(tid):
                        continue
                    attempt = self.retries.get(tid, 0) + 1
                    if attempt > self.retry_limit:
                        self.gave_up = True
                        self._fire("gave_up", {"task": tid, "attempt": attempt})
                        return False
                    self.retries[tid] = attempt
                    delay = self.backoff_cycles * (1 << (attempt - 1))
                    core.abort_and_retry(delay)
                    self._fire(
                        "abort",
                        {
                            "task": tid,
                            "core": core.core_id,
                            "attempt": attempt,
                            "delay": delay,
                            "cycle_tasks": sorted(cycle),
                        },
                    )
                    return True
            # A cycle exists but no member is abortable (e.g. all parked
            # in rwlock queues): recovery cannot help.
            self.gave_up = True
            self._fire("gave_up", {"cycles": [sorted(c) for c in cycles]})
            return False
        # No lock cycle: the hang may be a lost wake-up (injected or
        # otherwise).  Re-notify every waiter queue, bounded so a truly
        # unresolvable wait (missing producer) cannot ping-pong forever.
        if self._kicks < self.kick_limit:
            kicked = m.manager.kick_waiters()
            if kicked:
                self._kicks += 1
                m.stats.watchdog_kicks += 1
                self._fire("kick", {"woken": kicked})
                return True
        return False

    def _fire(self, event: str, info: dict) -> None:
        hook = self.machine.recovery_hook
        if hook is not None:
            hook(event, info)
