"""Wait-for graph construction over a (possibly deadlocked) machine.

When a versioned-memory protocol deadlocks, the question is always *who
is waiting on whom*.  This module reconstructs the wait-for relation
from machine state:

- a blocked core waits on an O-structure address (its StallSignal);
- that address is "held" by whichever tasks currently lock the version
  the waiter needs; with no holder, the wait is on an uncreated version,
  which splits into two very different diagnoses: *producer pending* (a
  live task could still create it — the wait may resolve) and *missing
  producer* (no live task can — the hang is permanent);
- task → core ownership closes the cycle.

``build_wait_graph`` returns the edges; ``find_cycles`` reports circular
waits (true deadlocks), distinguishing them from missing-producer hangs.
networkx does the cycle detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import networkx as nx

from ..ostruct import isa

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: Stallable ops whose operand 2 names an exact version, and those where
#: it is a cap.  Both layouts put the version/cap in ``op[2]`` (see the
#: constructors in :mod:`repro.ostruct.isa`) — only the *meaning* of the
#: operand differs between the exact and latest families.
_EXACT_OPS = frozenset({isa.LOAD_VERSION, isa.LOCK_LOAD_VERSION, isa.UNLOCK_VERSION})
_LATEST_OPS = frozenset({isa.LOAD_LATEST, isa.LOCK_LOAD_LATEST})


@dataclass(frozen=True, slots=True)
class WaitEdge:
    """One blocked-core observation."""

    waiter_core: int
    waiter_task: int | None
    op: str
    vaddr: int
    #: Tasks holding locks on the version(s) the waiter needs; empty for
    #: a wait on an uncreated version.
    holders: frozenset[int]
    #: With no holder: live tasks that could still create the awaited
    #: version (GC rule 1 bounds producers of version ``v`` to task ids
    #: <= ``v``).  Empty means the version can never appear.
    pending_producers: frozenset[int] = field(default_factory=frozenset)
    #: The wait is on version-block *allocation* (free-list backpressure),
    #: not on any particular version of ``vaddr``.
    backpressure: bool = False

    def describe(self) -> str:
        prefix = (
            f"core {self.waiter_core} (task {self.waiter_task}) waits on "
            f"0x{self.vaddr:x} [{self.op}]"
        )
        if self.backpressure:
            return (
                f"{prefix} — free-list backpressure "
                f"(waiting for version-block reclamation)"
            )
        if self.holders:
            held = ", ".join(f"task {t}" for t in sorted(self.holders))
            return f"{prefix} held by {held}"
        if self.pending_producers:
            pending = ", ".join(
                f"task {t}" for t in sorted(self.pending_producers)
            )
            return (
                f"{prefix} — version uncreated, producer pending "
                f"({pending} still live)"
            )
        return f"{prefix} — no producer (version never created, no live task can create it)"


def _blocking_holders(machine: "Machine", vaddr: int, op: tuple) -> frozenset[int]:
    """Which tasks hold locks that block this particular operation."""
    lst = machine.manager.lists.get(vaddr)
    if lst is None or lst.head is None:
        return frozenset()
    kind = op[0]
    holders: set[int] = set()
    if kind in _EXACT_OPS:
        block, _ = lst.find_exact(op[2])
        if block is not None and block.locked_by is not None:
            holders.add(block.locked_by)
    elif kind in _LATEST_OPS:
        block, _ = lst.find_latest(op[2])
        if block is not None and block.locked_by is not None:
            holders.add(block.locked_by)
    return frozenset(holders)


def _pending_producers(
    machine: "Machine", waiter_task: int | None, op: tuple
) -> frozenset[int]:
    """Live tasks that could still create the version ``op`` waits for.

    Rule 1 (version ids are task ids; renames target the id of the next
    task in the hand-over chain) means version ``v`` can only be created
    by a task with id <= ``v``.  The waiter itself is excluded — it is
    blocked, so it will not produce anything.
    """
    if op[0] not in _EXACT_OPS and op[0] not in _LATEST_OPS:
        return frozenset()
    wanted = op[2]
    return frozenset(
        t
        for t in machine.tracker.live_ids
        if t <= wanted and t != waiter_task
    )


def build_wait_graph(machine: "Machine") -> list[WaitEdge]:
    """Observed wait edges for every currently blocked core."""
    edges = []
    for core in machine.cores:
        if not core.blocked:
            continue
        op = core._blocked_op
        assert op is not None
        vaddr = op[1]
        waiter_task = core.current.task_id if core.current else None
        if getattr(core, "_blocked_backpressure", False):
            # Parked on allocation, not on a version: no holder and no
            # producer analysis applies — reclamation is the resolver.
            edges.append(
                WaitEdge(
                    waiter_core=core.core_id,
                    waiter_task=waiter_task,
                    op=op[0],
                    vaddr=vaddr,
                    holders=frozenset(),
                    backpressure=True,
                )
            )
            continue
        holders = _blocking_holders(machine, vaddr, op)
        edges.append(
            WaitEdge(
                waiter_core=core.core_id,
                waiter_task=waiter_task,
                op=op[0],
                vaddr=vaddr,
                holders=holders,
                pending_producers=(
                    _pending_producers(machine, waiter_task, op)
                    if not holders
                    else frozenset()
                ),
            )
        )
    return edges


def cycles_from_edges(edges: list[WaitEdge]) -> list[list[int]]:
    """Simple cycles of the task-level wait-for digraph of ``edges``."""
    graph = nx.DiGraph()
    for edge in edges:
        if edge.waiter_task is None:
            continue
        for holder in edge.holders:
            graph.add_edge(edge.waiter_task, holder)
    return [sorted(c) for c in nx.simple_cycles(graph)]


def find_cycles(machine: "Machine") -> list[list[int]]:
    """Circular waits among tasks (each cycle is a list of task ids).

    Builds the task-level wait-for digraph — waiter task → holder task —
    and returns its simple cycles.  An empty result with blocked cores
    present means the hang is a missing producer, not a lock cycle.
    """
    return cycles_from_edges(build_wait_graph(machine))


def post_mortem(machine: "Machine") -> str:
    """Human-readable deadlock report (used by examples and tests)."""
    edges = build_wait_graph(machine)
    if not edges:
        return "no blocked cores"
    lines = [e.describe() for e in edges]
    cycles = cycles_from_edges(edges)
    if cycles:
        for cycle in cycles:
            lines.append(
                "LOCK CYCLE: " + " -> ".join(f"task {t}" for t in cycle)
                + f" -> task {cycle[0]}"
            )
    elif any(e.backpressure for e in edges):
        lines.append(
            "no lock cycle: core(s) stalled on version-block allocation — "
            "the free list is exhausted and reclamation has not freed a block"
        )
    elif any(not e.holders and not e.pending_producers for e in edges):
        lines.append("no lock cycle: missing producer(s) — check version wiring")
    else:
        lines.append(
            "no lock cycle: producer task(s) still pending — the waits "
            "could resolve if the producers were not themselves stuck"
        )
    return "\n".join(lines)
