"""Wait-for graph construction over a (possibly deadlocked) machine.

When a versioned-memory protocol deadlocks, the question is always *who
is waiting on whom*.  This module reconstructs the wait-for relation
from machine state:

- a blocked core waits on an O-structure address (its StallSignal);
- that address is "held" by whichever tasks currently lock the version
  the waiter needs (or by nobody, if the version simply does not exist —
  a *missing-producer* wait, which is an edge to the void);
- task → core ownership closes the cycle.

``build_wait_graph`` returns the edges; ``find_cycles`` reports circular
waits (true deadlocks), distinguishing them from missing-producer hangs.
networkx does the cycle detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine


@dataclass(frozen=True)
class WaitEdge:
    """One blocked-core observation."""

    waiter_core: int
    waiter_task: int | None
    op: str
    vaddr: int
    #: Tasks holding locks on the version(s) the waiter needs; empty for
    #: a missing-producer wait.
    holders: frozenset[int]

    def describe(self) -> str:
        if self.holders:
            held = ", ".join(f"task {t}" for t in sorted(self.holders))
            return (
                f"core {self.waiter_core} (task {self.waiter_task}) waits on "
                f"0x{self.vaddr:x} [{self.op}] held by {held}"
            )
        return (
            f"core {self.waiter_core} (task {self.waiter_task}) waits on "
            f"0x{self.vaddr:x} [{self.op}] — no producer (version never created)"
        )


def _blocking_holders(machine: "Machine", vaddr: int, op: tuple) -> frozenset[int]:
    """Which tasks hold locks that block this particular operation."""
    lst = machine.manager.lists.get(vaddr)
    if lst is None or lst.head is None:
        return frozenset()
    kind = op[0]
    holders: set[int] = set()
    if kind in ("load_version", "lock_load_version", "unlock_version"):
        block, _ = lst.find_exact(op[2])
        if block is not None and block.locked_by is not None:
            holders.add(block.locked_by)
    elif kind in ("load_latest", "lock_load_latest"):
        block, _ = lst.find_latest(op[2])
        if block is not None and block.locked_by is not None:
            holders.add(block.locked_by)
    return frozenset(holders)


def build_wait_graph(machine: "Machine") -> list[WaitEdge]:
    """Observed wait edges for every currently blocked core."""
    edges = []
    for core in machine.cores:
        if not core.blocked:
            continue
        op = core._blocked_op
        assert op is not None
        vaddr = op[1]
        edges.append(
            WaitEdge(
                waiter_core=core.core_id,
                waiter_task=core.current.task_id if core.current else None,
                op=op[0],
                vaddr=vaddr,
                holders=_blocking_holders(machine, vaddr, op),
            )
        )
    return edges


def find_cycles(machine: "Machine") -> list[list[int]]:
    """Circular waits among tasks (each cycle is a list of task ids).

    Builds the task-level wait-for digraph — waiter task → holder task —
    and returns its simple cycles.  An empty result with blocked cores
    present means the hang is a missing producer, not a lock cycle.
    """
    graph = nx.DiGraph()
    for edge in build_wait_graph(machine):
        if edge.waiter_task is None:
            continue
        for holder in edge.holders:
            graph.add_edge(edge.waiter_task, holder)
    return [sorted(c) for c in nx.simple_cycles(graph)]


def post_mortem(machine: "Machine") -> str:
    """Human-readable deadlock report (used by examples and tests)."""
    edges = build_wait_graph(machine)
    if not edges:
        return "no blocked cores"
    lines = [e.describe() for e in edges]
    cycles = find_cycles(machine)
    if cycles:
        for cycle in cycles:
            lines.append(
                "LOCK CYCLE: " + " -> ".join(f"task {t}" for t in cycle)
                + f" -> task {cycle[0]}"
            )
    else:
        lines.append("no lock cycle: missing producer(s) — check version wiring")
    return "\n".join(lines)
