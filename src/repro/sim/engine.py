"""Deterministic discrete-event simulation kernel (hierarchical timing wheel).

Everything in the simulated machine — core micro-op retirement, version
waiter wake-ups, garbage-collection phases — is an event ordered by
``(time, sequence)``.  The sequence number makes event ordering total and
therefore the whole simulation reproducible: two runs with the same inputs
execute events in the same order, and any kernel that honours the order is
byte-identical to any other (``tests/test_engine_equivalence.py`` pins the
current kernel to golden traces recorded on the original heapq kernel).

The kernel keeps that contract while getting the dominant events off the
O(log n) heap path with three tiers:

- **solo fast path** — a simulated core with one outstanding continuation
  (every sequential run, and any machine draining down to a single event
  chain) never touches a queue at all: the single pending event lives in
  three instance fields, and scheduling the next event from inside its
  callback re-captures them.
- **near-future wheel** — events within :data:`WHEEL_SLOTS` cycles (cache
  hit/miss latencies, waiter wake-ups, retire ticks — virtually every
  event a workload generates) go into a ring of per-cycle buckets.
  Scheduling is an index-and-append; finding the next occupied bucket is
  a couple of big-int bit operations on an occupancy bitmask, independent
  of how sparse the ring is.  Same-cycle events share one bucket and are
  drained in sequence order in a single pass.
- **overflow heap** — far-future events (long compute bursts, watchdog
  ticks, GC phases) stay on a conventional heap and migrate into the
  wheel as the clock approaches them.

Same-cycle ordering contract (both entry points, identical by design):
``schedule(0, fn)`` and ``schedule_at(sim.now, fn)`` from inside a
callback append ``fn`` *after* every previously scheduled event of the
current cycle — an event never preempts a same-cycle event that was
scheduled before it.  ``schedule_at`` rejects times strictly in the past
(``time < now``); ``schedule`` rejects negative delays.  The wheel cannot
diverge from the old heap kernel here because both orders are exactly
"ascending sequence number within one cycle".

**Inline advance** (:meth:`Simulator.try_advance`) is the kernel half of
the :mod:`repro.sim.fuse` fast path: a callback that knows its own
continuation would be the next event to fire may advance the clock
directly and keep running, skipping the schedule/pop round trip.  The
request is granted only when *no* pending event — solo slot, wheel, or
overflow heap — has ``time <= now + delay``, so the global
``(time, sequence)`` execution order is preserved exactly: the elided
events are precisely those the kernel would have popped with nothing in
between.  An event scheduled at exactly ``now + delay`` refuses the
advance, because its (older) sequence number entitles it to run first.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable

from ..errors import SimulationError

#: Width of the near-future wheel in cycles.  Covers every memory-system
#: latency of the Table II platform (L1 4, L2 35, DRAM 120, plus remote
#: penalties) with headroom; longer delays take the overflow heap.
WHEEL_SLOTS = 256

_MASK = WHEEL_SLOTS - 1
#: Precomputed single-bit masks (``1 << slot`` allocates a fresh big int
#: on every use; a tuple lookup does not).
_BIT = tuple(1 << i for i in range(WHEEL_SLOTS))
#: Precomputed low-bit masks for the wrapped half of an occupancy scan.
_LOW = tuple((1 << i) - 1 for i in range(WHEEL_SLOTS))


class Simulator:
    """A global-clock discrete-event scheduler.

    Time is measured in core clock cycles.  Callbacks receive no arguments;
    closures capture whatever state they need.  ``schedule`` may be called
    from inside callbacks (including for delay 0, which runs later in the
    same cycle but after all previously scheduled same-cycle events).
    """

    __slots__ = (
        "now",
        "_seq",
        "_running",
        "_inline",
        "executed_total",
        "_wheel",
        "_occ",
        "_count",
        "_over",
        "_solo_time",
        "_solo_seq",
        "_solo_fn",
    )

    def __init__(self) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._running = False
        # True only while the *unbounded* run() loop is draining: inline
        # clock advances must not overshoot an `until` bound or miscount
        # a `max_events` budget, so bounded runs and step() keep it off.
        self._inline = False
        #: Events executed over the simulator's lifetime (all run/step
        #: calls); the watchdog uses it as a liveness signal.
        self.executed_total: int = 0
        # Near-future wheel: one flat ``[seq, fn, seq, fn, ...]`` bucket
        # per cycle slot, kept ascending in seq, plus an occupancy bitmask.
        self._wheel: list[list] = [[] for _ in range(WHEEL_SLOTS)]
        self._occ: int = 0
        self._count: int = 0
        # Far-future overflow tier: a plain ``(time, seq, fn)`` heap.
        self._over: list[tuple[int, int, Callable[[], Any]]] = []
        # Solo fast path: the single pending event, when exactly one is
        # pending kernel-wide (``_solo_fn is None`` marks the slot empty).
        self._solo_time: int = 0
        self._solo_seq: int = 0
        self._solo_fn: Callable[[], Any] | None = None

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[[], Any]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now.

        ``delay=0`` is legal (also mid-callback) and runs ``fn`` later in
        the same cycle, after all previously scheduled same-cycle events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq = self._seq + 1
        time = self.now + delay
        solo = self._solo_fn
        if solo is not None:
            # A second event arrives: demote the solo event to the wheel
            # (or the overflow heap) before inserting the new one, so the
            # bucket stays ascending in seq.
            self._solo_fn = None
            self._insert(self._solo_time, self._solo_seq, solo)
        elif not (self._count or self._over):
            self._solo_time = time
            self._solo_seq = seq
            self._solo_fn = fn
            return
        if delay < WHEEL_SLOTS:
            slot = time & _MASK
            bucket = self._wheel[slot]
            if not bucket:
                self._occ |= _BIT[slot]
            bucket.append(seq)
            bucket.append(fn)
            self._count += 1
        else:
            heappush(self._over, (time, seq, fn))

    def schedule_at(self, time: int, fn: Callable[[], Any]) -> None:
        """Schedule ``fn`` at an absolute cycle count.

        ``time == self.now`` is legal (also mid-callback) and follows the
        same same-cycle contract as ``schedule(0, fn)``: ``fn`` runs after
        all previously scheduled events of the current cycle.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, already at {self.now}"
            )
        seq = self._seq = self._seq + 1
        solo = self._solo_fn
        if solo is not None:
            self._solo_fn = None
            self._insert(self._solo_time, self._solo_seq, solo)
        elif not (self._count or self._over):
            self._solo_time = time
            self._solo_seq = seq
            self._solo_fn = fn
            return
        self._insert(time, seq, fn)

    def try_advance(self, delay: int) -> bool:
        """Advance the clock by ``delay`` from inside the running callback.

        Granted — clock moved, True returned — only when no pending event
        anywhere in the kernel has ``time <= now + delay``; the caller may
        then continue executing as if its continuation had been scheduled,
        popped and fired, because that is exactly what the kernel would
        have done next.  Refused (False, clock untouched) whenever any
        event could fire first, including one at exactly ``now + delay``
        (its older sequence number wins a same-cycle tie), or when the
        kernel is not in the unbounded ``run()`` drain (bounded runs must
        observe ``until`` / ``max_events`` at every event boundary).

        The fused-block interpreter (:mod:`repro.sim.fuse`) is the
        intended caller; granting is what makes fusion *provably*
        byte-identical to per-op scheduling rather than approximately so.
        """
        if not self._inline:
            return False
        target = self.now + delay
        if self._solo_fn is not None:
            if self._solo_time <= target:
                return False
        if self._count:
            occ = self._occ
            pos = self.now & _MASK
            rot = occ >> pos
            if rot:
                nxt = self.now + ((rot & -rot).bit_length() - 1)
            else:
                low = occ & _LOW[pos]
                nxt = (
                    self.now + WHEEL_SLOTS - pos + ((low & -low).bit_length() - 1)
                )
            if nxt <= target:
                return False
        over = self._over
        if over and over[0][0] <= target:
            return False
        self.now = target
        return True

    def _insert(self, time: int, seq: int, fn: Callable[[], Any]) -> None:
        """File one event into the wheel or the overflow heap.

        Keeps wheel buckets ascending in ``seq`` even when the event is a
        demoted solo or a migrated overflow entry whose sequence number
        predates entries already in the bucket.
        """
        if time - self.now < WHEEL_SLOTS:
            slot = time & _MASK
            bucket = self._wheel[slot]
            if not bucket:
                self._occ |= _BIT[slot]
                bucket.append(seq)
                bucket.append(fn)
            elif seq > bucket[-2]:
                bucket.append(seq)
                bucket.append(fn)
            else:
                i = 0
                while bucket[i] < seq:
                    i += 2
                bucket.insert(i, fn)
                bucket.insert(i, seq)
            self._count += 1
        else:
            heappush(self._over, (time, seq, fn))

    def _migrate(self) -> None:
        """Move every overflow event inside the wheel horizon into it."""
        over = self._over
        horizon = self.now + WHEEL_SLOTS
        while over and over[0][0] < horizon:
            time, seq, fn = heappop(over)
            self._insert(time, seq, fn)

    # -- introspection ------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return (
            self._count
            + len(self._over)
            + (1 if self._solo_fn is not None else 0)
        )

    def _peek_time(self) -> int | None:
        """Time of the earliest pending event, or None.  May migrate."""
        if self._solo_fn is not None:
            return self._solo_time
        over = self._over
        if over and over[0][0] - self.now < WHEEL_SLOTS:
            self._migrate()
        if self._count:
            occ = self._occ
            pos = self.now & _MASK
            rot = occ >> pos
            if rot:
                return self.now + ((rot & -rot).bit_length() - 1)
            low = occ & _LOW[pos]
            return self.now + WHEEL_SLOTS - pos + ((low & -low).bit_length() - 1)
        if over:
            return over[0][0]
        return None

    def _pop_next(self) -> tuple[int, Callable[[], Any]] | None:
        """Remove and return the earliest event as ``(time, fn)``."""
        fn = self._solo_fn
        if fn is not None:
            self._solo_fn = None
            return self._solo_time, fn
        over = self._over
        if over and over[0][0] - self.now < WHEEL_SLOTS:
            self._migrate()
        if not self._count:
            if not over:
                return None
            # The wheel is empty and the overflow head is beyond the
            # horizon: jump the window forward and pull it in.
            self.now = over[0][0]
            self._migrate()
        occ = self._occ
        pos = self.now & _MASK
        rot = occ >> pos
        if rot:
            time = self.now + ((rot & -rot).bit_length() - 1)
        else:
            low = occ & _LOW[pos]
            time = self.now + WHEEL_SLOTS - pos + ((low & -low).bit_length() - 1)
        slot = time & _MASK
        bucket = self._wheel[slot]
        fn = bucket[1]
        del bucket[:2]
        self._count -= 1
        if not bucket:
            self._occ &= ~_BIT[slot]
        return time, fn

    # -- execution ----------------------------------------------------------

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the event queues.

        Runs until no event is pending, the clock would pass ``until``, or
        ``max_events`` events have fired.  Returns the number of events
        executed.  Re-entrant calls are rejected — callbacks must schedule,
        not recurse into the engine.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            if until is None and max_events is None:
                # Fast path: no bound checks per event.  This is the loop
                # every workload run sits in; per-event branches are
                # measurable at millions of events.  Only here may
                # callbacks use try_advance — there is no bound an inline
                # clock jump could overshoot.
                self._inline = True
                wheel = self._wheel
                over = self._over
                low_masks = _LOW
                while True:
                    fn = self._solo_fn
                    if fn is not None:
                        # Exactly one event pending anywhere: run it.  Its
                        # callback usually schedules the next one, which
                        # re-captures the solo slot without queue traffic.
                        self._solo_fn = None
                        self.now = self._solo_time
                        fn()
                        executed += 1
                        continue
                    if over and over[0][0] - self.now < WHEEL_SLOTS:
                        self._migrate()
                    if not self._count:
                        if not over:
                            break
                        self.now = over[0][0]
                        self._migrate()
                    occ = self._occ
                    now = self.now
                    pos = now & _MASK
                    rot = occ >> pos
                    if rot:
                        time = now + ((rot & -rot).bit_length() - 1)
                    else:
                        low = occ & low_masks[pos]
                        time = now + WHEEL_SLOTS - pos + (
                            (low & -low).bit_length() - 1
                        )
                    slot = time & _MASK
                    self.now = time
                    bucket = wheel[slot]
                    # Drain the whole bucket (one simulated cycle),
                    # popping each event *before* it runs so the pending
                    # bookkeeping (count, occupancy) stays truthful for
                    # try_advance: a fused callback must see exactly the
                    # events that can still fire, not itself and not
                    # already-run predecessors.  Delay-0 callbacks
                    # re-append to this same bucket (re-setting its
                    # occupancy bit) and drain in the same pass; the
                    # callback of the final pending event sees an empty
                    # kernel and can re-capture the solo slot.
                    n_done = 0
                    try:
                        while bucket:
                            fn = bucket[1]
                            del bucket[:2]
                            self._count -= 1
                            if not bucket:
                                self._occ &= ~_BIT[slot]
                            fn()
                            n_done += 1
                            if self.now != time:
                                # The callback advanced the clock inline.
                                # Anything now in this bucket belongs to a
                                # *future* cycle congruent mod the wheel
                                # width; rescan from the new now rather
                                # than firing it early.
                                break
                    finally:
                        # On an exception the raising event was consumed
                        # but is not counted (matching the heap kernel);
                        # events behind it stay queued.
                        executed += n_done
            else:
                while True:
                    time = self._peek_time()
                    if time is None:
                        break
                    if until is not None and time > until:
                        self.now = until
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    time, fn = self._pop_next()  # type: ignore[misc]
                    self.now = time
                    fn()
                    executed += 1
        finally:
            self._running = False
            self._inline = False
            self.executed_total += executed
        return executed

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if none was pending.

        Like :meth:`run`, stepping is not re-entrant: calling it from
        inside a callback would execute events out from under the active
        drain loop.
        """
        if self._running:
            raise SimulationError("Simulator.step() is not re-entrant")
        if not (self._count or self._over or self._solo_fn is not None):
            return False
        self._running = True
        try:
            time, fn = self._pop_next()  # type: ignore[misc]
            self.now = time
            fn()
            self.executed_total += 1
        finally:
            self._running = False
        return True
