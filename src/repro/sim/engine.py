"""Deterministic discrete-event simulation kernel.

Everything in the simulated machine — core micro-op retirement, version
waiter wake-ups, garbage-collection phases — is an event on one global
heap ordered by ``(time, sequence)``.  The sequence number makes event
ordering total and therefore the whole simulation reproducible: two runs
with the same inputs execute events in the same order.

The kernel is intentionally tiny and allocation-light; per the HPC guides,
the hot loop avoids attribute lookups and object churn (events are plain
tuples on a :mod:`heapq`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import SimulationError


class Simulator:
    """A global-clock discrete-event scheduler.

    Time is measured in core clock cycles.  Callbacks receive no arguments;
    closures capture whatever state they need.  ``schedule`` may be called
    from inside callbacks (including for delay 0, which runs later in the
    same cycle but after all previously scheduled same-cycle events).
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "executed_total")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Callable[[], Any]]] = []
        self._seq: int = 0
        self._running = False
        #: Events executed over the simulator's lifetime (all run/step
        #: calls); the watchdog uses it as a liveness signal.
        self.executed_total: int = 0

    def schedule(self, delay: int, fn: Callable[[], Any]) -> None:
        """Schedule ``fn`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def schedule_at(self, time: int, fn: Callable[[], Any]) -> None:
        """Schedule ``fn`` at an absolute cycle count."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, already at {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))

    @property
    def pending_events(self) -> int:
        """Number of events still queued."""
        return len(self._heap)

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Drain the event heap.

        Runs until the heap is empty, the clock would pass ``until``, or
        ``max_events`` events have fired.  Returns the number of events
        executed.  Re-entrant calls are rejected — callbacks must schedule,
        not recurse into the engine.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        try:
            if until is None and max_events is None:
                # Fast path: no bound checks per event.  This is the loop
                # every workload run sits in; the peek and the two limit
                # comparisons are measurable at millions of events.
                while heap:
                    time, _, fn = pop(heap)
                    self.now = time
                    fn()
                    executed += 1
            else:
                while heap:
                    time, _, fn = heap[0]
                    if until is not None and time > until:
                        self.now = until
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(heap)
                    self.now = time
                    fn()
                    executed += 1
        finally:
            self._running = False
            self.executed_total += executed
        return executed

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if none was pending.

        Like :meth:`run`, stepping is not re-entrant: calling it from
        inside a callback would execute events out from under the active
        drain loop.
        """
        if self._running:
            raise SimulationError("Simulator.step() is not re-entrant")
        if not self._heap:
            return False
        self._running = True
        try:
            time, _, fn = heapq.heappop(self._heap)
            self.now = time
            fn()
            self.executed_total += 1
        finally:
            self._running = False
        return True
