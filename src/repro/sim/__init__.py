"""Trace-driven multicore simulator substrate.

This subpackage is the gem5 stand-in: a deterministic discrete-event
engine (:mod:`repro.sim.engine`), a Table II memory hierarchy
(:mod:`repro.sim.cache`, :mod:`repro.sim.dram`, :mod:`repro.sim.coherence`,
:mod:`repro.sim.hierarchy`), in-order cores that execute generator-based
task programs (:mod:`repro.sim.core`), and the machine assembly with
deadlock detection (:mod:`repro.sim.machine`).
"""

from .engine import Simulator
from .stats import SimStats
from .cache import Cache
from .dram import Dram
from .coherence import Directory
from .hierarchy import MemoryHierarchy
from .core import Core
from .machine import Machine

__all__ = [
    "Simulator",
    "SimStats",
    "Cache",
    "Dram",
    "Directory",
    "MemoryHierarchy",
    "Core",
    "Machine",
]
