"""MESI-flavoured directory coherence among the private L1 caches.

The directory tracks, per block, which cores' L1s hold a copy.  A write
invalidates all other sharers (charging the remote penalty once, as the
invalidations are broadcast in parallel).  The paper extends coherence so
messages for version-block lines also carry the physical address of the
version-block list head; here that is modelled by the eviction/invalidation
hooks on the L1s, which discard the corresponding compressed version block
(Section III-A: "the simplest course of action is to discard the compressed
version block for that O-structure").
"""

from __future__ import annotations

from .cache import Cache
from .stats import SimStats


class Directory:
    """Per-block sharer tracking over the private L1s."""

    __slots__ = ("_l1s", "_sharers", "_stats", "remote_penalty")

    def __init__(self, l1s: list[Cache], stats: SimStats, remote_penalty: int):
        self._l1s = l1s
        self._sharers: dict[int, set[int]] = {}
        self._stats = stats
        self.remote_penalty = remote_penalty

    def sharers_of(self, block: int) -> frozenset[int]:
        """The set of core ids whose L1 currently shares ``block``."""
        return frozenset(self._sharers.get(block, ()))

    def note_fill(self, core_id: int, block: int) -> None:
        """Record that ``core_id``'s L1 now holds ``block``."""
        self._sharers.setdefault(block, set()).add(core_id)

    def note_eviction(self, core_id: int, block: int) -> None:
        """Record that ``core_id``'s L1 dropped ``block``."""
        s = self._sharers.get(block)
        if s is not None:
            s.discard(core_id)
            if not s:
                del self._sharers[block]

    def acquire_exclusive(self, core_id: int, block: int) -> int:
        """Invalidate all other sharers of ``block``; returns extra latency.

        Invalidation messages go out in parallel, so the latency cost is a
        single remote round-trip when at least one remote sharer existed,
        and zero otherwise.
        """
        s = self._sharers.get(block)
        if not s:
            return 0
        others = [c for c in s if c != core_id]
        if not others:
            return 0
        for c in others:
            # invalidate() fires the L1 evict hook, which already calls
            # note_eviction and may delete the sharer entry entirely.
            self._l1s[c].invalidate(block)
            self._stats.invalidations += 1
            s.discard(c)
        if not s:
            self._sharers.pop(block, None)
        return self.remote_penalty

    def has_remote_copy(self, core_id: int, block: int) -> bool:
        """True if any core other than ``core_id`` shares ``block``."""
        s = self._sharers.get(block)
        if not s:
            return False
        return any(c != core_id for c in s)
