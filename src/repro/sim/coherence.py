"""MESI-flavoured directory coherence among the private L1 caches.

The directory tracks, per block, which cores' L1s hold a copy.  A write
invalidates all other sharers (charging the remote penalty once, as the
invalidations are broadcast in parallel).  The paper extends coherence so
messages for version-block lines also carry the physical address of the
version-block list head; here that is modelled by the eviction/invalidation
hooks on the L1s, which discard the corresponding compressed version block
(Section III-A: "the simplest course of action is to discard the compressed
version block for that O-structure").

Sharer lists are integer bitmasks (bit ``c`` set = core ``c``'s L1 holds
the block) rather than per-block ``set`` objects: membership updates are
single bitwise ops with no container allocation, and "any remote sharer?"
collapses to one mask-and-test.  Iteration peels the lowest set bit, so
cores are always visited in ascending id order — a total order, where set
iteration was merely hash order.
"""

from __future__ import annotations

from .cache import Cache
from .stats import SimStats


class Directory:
    """Per-block sharer tracking over the private L1s."""

    __slots__ = ("_l1s", "_sharers", "_stats", "remote_penalty")

    def __init__(self, l1s: list[Cache], stats: SimStats, remote_penalty: int):
        self._l1s = l1s
        # block -> sharer bitmask; blocks with no sharers are removed.
        self._sharers: dict[int, int] = {}
        self._stats = stats
        self.remote_penalty = remote_penalty

    def sharers_of(self, block: int) -> frozenset[int]:
        """The set of core ids whose L1 currently shares ``block``."""
        m = self._sharers.get(block, 0)
        cores = []
        while m:
            low = m & -m
            m ^= low
            cores.append(low.bit_length() - 1)
        return frozenset(cores)

    def note_fill(self, core_id: int, block: int) -> None:
        """Record that ``core_id``'s L1 now holds ``block``."""
        sharers = self._sharers
        sharers[block] = sharers.get(block, 0) | (1 << core_id)

    def note_eviction(self, core_id: int, block: int) -> None:
        """Record that ``core_id``'s L1 dropped ``block``."""
        sharers = self._sharers
        m = sharers.get(block, 0) & ~(1 << core_id)
        if m:
            sharers[block] = m
        else:
            sharers.pop(block, None)

    def acquire_exclusive(self, core_id: int, block: int) -> int:
        """Invalidate all other sharers of ``block``; returns extra latency.

        Invalidation messages go out in parallel, so the latency cost is a
        single remote round-trip when at least one remote sharer existed,
        and zero otherwise.
        """
        sharers = self._sharers
        others = sharers.get(block, 0) & ~(1 << core_id)
        if not others:
            return 0
        l1s = self._l1s
        stats = self._stats
        rest = others
        while rest:
            low = rest & -rest
            rest ^= low
            # invalidate() fires the L1 evict hook, which already calls
            # note_eviction and may drop the sharer entry entirely; the
            # explicit clear below also covers stale sharers whose L1
            # silently lost the block.
            l1s[low.bit_length() - 1].invalidate(block)
            stats.invalidations += 1
            m = sharers.get(block, 0) & ~low
            if m:
                sharers[block] = m
            else:
                sharers.pop(block, None)
        return self.remote_penalty

    def has_remote_copy(self, core_id: int, block: int) -> bool:
        """True if any core other than ``core_id`` shares ``block``."""
        return bool(self._sharers.get(block, 0) & ~(1 << core_id))
