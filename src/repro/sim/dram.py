"""Main-memory latency model.

The paper's platform has 64 GB of DRAM with a flat 60 ns access latency
(Table II); at 2 GHz that is 120 core cycles.  Data itself is held
functionally elsewhere (the simulated heap and the version-block store),
so this model only accounts for time and traffic.
"""

from __future__ import annotations

from .stats import SimStats


class Dram:
    """Flat-latency main memory."""

    __slots__ = ("latency", "_stats")

    def __init__(self, latency_cycles: int, stats: SimStats):
        if latency_cycles < 0:
            raise ValueError("DRAM latency must be non-negative")
        self.latency = latency_cycles
        self._stats = stats

    def access(self) -> int:
        """Perform one access; returns its latency in cycles."""
        self._stats.dram_accesses += 1
        return self.latency
