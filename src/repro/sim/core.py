"""In-order core model executing generator-based task programs.

The paper's platform is a 2-way in-order ARM core (Table II).  The model:

- ``compute n`` retires ``n`` ALU instructions at ``issue_width`` per
  cycle;
- conventional loads/stores are blocking and charge the hierarchy latency;
- versioned operations go through the O-structure manager; a
  :class:`~repro.ostruct.manager.StallSignal` parks the whole core (it is
  in-order) on the address's waiter queue, and the operation retries when
  the address is notified;
- the core issues TASK-BEGIN / TASK-END around each task automatically
  (programs may also issue them explicitly for nested structuring).

Each core owns a FIFO of statically assigned tasks and runs them to
completion in order.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator

from ..errors import SimulationError
from ..ostruct import isa
from ..ostruct.manager import StallSignal
from ..runtime.task import TASK_BEGIN_CYCLES, TASK_END_CYCLES, Task
from .fuse import FUSIBLE, make_interpreter

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine


class Core:
    """One in-order core; drives task generators through the machine."""

    __slots__ = (
        "core_id",
        "machine",
        "sim",
        "queue",
        "current",
        "_gen",
        "_started",
        "_blocked_op",
        "_block_start",
        "_blocked_addr",
        "_blocked_backpressure",
        "_pending_resume",
        "_abort_pending",
        "_restart_delay",
        "_run_block",
        "_fuse_cooldown",
        "busy_cycles",
        "_resume_value",
        "_resume_cb",
        "_retry_cb",
        "_begin_next_cb",
    )

    def __init__(self, core_id: int, machine: "Machine"):
        self.core_id = core_id
        self.machine = machine
        self.sim = machine.sim
        self.queue: deque[Task] = deque()
        self.current: Task | None = None
        self._gen: Generator[tuple, Any, Any] | None = None
        self._started = False
        # Stall bookkeeping for the op currently blocking this core.
        self._blocked_op: tuple | None = None
        self._block_start: int = 0
        self._blocked_addr: int = 0  # waiter-queue key while parked
        self._blocked_backpressure = False
        # Abort-and-retry state: _pending_resume marks a scheduled
        # _resume event (the core's single outstanding continuation);
        # _abort_pending defers a restart to that stale event so it is
        # consumed instead of racing the fresh generator.
        self._pending_resume = False
        self._abort_pending = False
        self._restart_delay = 0
        # Fused-block interpreter (repro.sim.fuse), built once with all
        # machine-stable state in closure cells; None when fusion is off
        # (config knob or the REPRO_FUSED env escape hatch).
        self._run_block = make_interpreter(self) if machine.fused_enabled else None
        # Congestion backoff: when a block fuses nothing (the very first
        # advance is refused because neighbouring cores keep the event
        # queue hot), skip the next COOLDOWN fusible entries and take the
        # per-op path directly.  Timing-invariant — fusing or not fusing
        # never changes simulated behaviour, only host time.
        self._fuse_cooldown = 0
        self.busy_cycles = 0
        # Pre-bound continuations: the retire path schedules one event per
        # retired op, and allocating a fresh closure (or bound method) for
        # each is pure churn — the core is in-order, so at most one resume
        # and one retry are ever outstanding.
        self._resume_value: Any = None
        self._resume_cb = self._resume
        self._retry_cb = self._retry
        self._begin_next_cb = self._begin_next

    # -- task intake ----------------------------------------------------------

    def enqueue(self, task: Task) -> None:
        self.queue.append(task)

    def start(self) -> None:
        """Kick the core; called once by the machine at run start."""
        if self._started:
            raise SimulationError(f"core {self.core_id} already started")
        self._started = True
        if self.queue:
            self.sim.schedule(0, self._begin_next_cb)

    @property
    def idle(self) -> bool:
        return self.current is None and not self.queue

    @property
    def blocked(self) -> bool:
        return self._blocked_op is not None

    @property
    def can_abort(self) -> bool:
        """A task is in flight and its continuation is ours to cancel.

        True while the core is parked on a waiter queue or awaiting its
        scheduled resume.  Cores parked in a rwlock queue are *not*
        abortable — the lock's grant callback cannot be withdrawn.
        """
        return self.current is not None and (
            self._blocked_op is not None or self._pending_resume
        )

    def describe_block(self) -> str:
        op = self._blocked_op
        task = self.current
        suffix = " (free-list backpressure)" if self._blocked_backpressure else ""
        return (
            f"core {self.core_id} task {task.task_id if task else '?'} "
            f"blocked on {op[0]} @0x{op[1]:x} since cycle {self._block_start}"
            f"{suffix}"
            if op
            else f"core {self.core_id} not blocked"
        )

    # -- task lifecycle ---------------------------------------------------------

    def _schedule_resume(self, delay: int) -> None:
        self._pending_resume = True
        self.sim.schedule(delay, self._resume_cb)

    def _begin_next(self) -> None:
        task = self.queue.popleft()
        self.current = task
        self._gen = task.make_generator()
        self.machine.tracker.begin(task.task_id)
        self.machine.stats.tasks_started += 1
        hook = self.machine.task_hook
        if hook is not None:
            hook("begin", task.task_id, self.core_id)
        self._resume_value = None
        self._schedule_resume(TASK_BEGIN_CYCLES)

    def _finish_task(self, result: Any) -> None:
        task = self.current
        assert task is not None
        task.result = result
        task.finished = True
        self.machine.tracker.end(task.task_id)
        self.machine.stats.tasks_finished += 1
        hook = self.machine.task_hook
        if hook is not None:
            hook("end", task.task_id, self.core_id)
        self.current = None
        self._gen = None
        if self.queue:
            self.sim.schedule(TASK_END_CYCLES, self._begin_next_cb)

    # -- execution --------------------------------------------------------------

    def _resume(self) -> None:
        self._pending_resume = False
        if self._abort_pending:
            self._restart()
            return
        value = self._resume_value
        self._resume_value = None
        self._advance(value)

    def _retry(self) -> None:
        if self._abort_pending:
            self._restart()
            return
        op = self._blocked_op
        if op is None:
            # Stale wake-up: the blocked op was aborted away, or a
            # watchdog kick raced a real notification.
            return
        self._execute(op, retry=True)

    def _advance(self, send_value: Any) -> None:
        gen = self._gen
        assert gen is not None
        try:
            op = gen.send(send_value)
        except StopIteration as stop:
            self._finish_task(stop.value)
            return
        run_block = self._run_block
        if run_block is not None and op[0] in FUSIBLE:
            cd = self._fuse_cooldown
            if cd:
                self._fuse_cooldown = cd - 1
            else:
                # Fused fast path: drain the run of non-stalling ops
                # starting at ``op`` in this one engine event
                # (repro.sim.fuse).  A non-fusible op comes back
                # undispatched and takes the ordinary path below.
                op = run_block(gen, op)
                if op is None:
                    return
        self._execute(op, retry=False)

    def _execute(self, op: tuple, retry: bool) -> None:
        kind = op[0]
        if not retry and kind in isa.VERSIONED_OPS:
            self.machine.stats.versioned_ops += 1
        try:
            latency, result = self._dispatch(op)
        except StallSignal as sig:
            hook = self.machine.trace_hook
            if hook is not None:
                hook(self.core_id, self._current_tid(), op, 0, True)
            self._park(op, sig, retry)
            return
        hook = self.machine.trace_hook
        if hook is not None:
            hook(self.core_id, self._current_tid(), op, latency, False)
        if result is _RW_PARKED:
            # Queued on a rwlock; the grant callback resumes the core.
            return
        if self._blocked_op is not None:
            # A previously stalled op finally succeeded.
            stall = self.sim.now - self._block_start
            self.machine.stats.versioned_stall_cycles += stall
            metrics = self.machine.metrics
            if metrics is not None:
                metrics.lock_wait.observe(stall)
            if self._blocked_backpressure:
                self.machine.stats.backpressure_stall_cycles += stall
                self._blocked_backpressure = False
            self._blocked_op = None
        self.machine.retired_ops += 1
        self.busy_cycles += latency
        self._resume_value = result
        self._schedule_resume(latency)

    def _park(self, op: tuple, sig: StallSignal, retry: bool) -> None:
        if self._blocked_op is None:
            # First stall of this op instance.
            self.machine.stats.versioned_stalls += 1
            if sig.vaddr in self.machine.manager.roots:
                self.machine.stats.root_load_stalls += 1
            self._block_start = self.sim.now
        self._blocked_op = op
        self._blocked_addr = sig.wait_addr
        self._blocked_backpressure = sig.backpressure
        self.machine.manager.add_waiter(sig.wait_addr, self._retry_cb)

    # -- abort-and-retry (watchdog / fault-injection recovery) -----------------

    def abort_and_retry(self, delay: int = 0) -> None:
        """Abort the in-flight task and restart it from scratch.

        Rolls the task's memory effects back through the manager
        (releasing its locks, dropping its uncommitted versions), closes
        the generator, and re-runs it after ``delay`` cycles.  An
        in-order core has at most one continuation outstanding; if one
        is already in flight — a scheduled resume, or a wake-up batch
        holding our retry callback — the restart is deferred to that
        event so it is consumed instead of racing the fresh generator.
        """
        task = self.current
        if task is None or not self.can_abort:
            raise SimulationError(
                f"core {self.core_id} has no abortable task in flight"
            )
        m = self.machine
        deferred = self._pending_resume
        if self._blocked_op is not None:
            removed = m.manager.remove_waiter(self._blocked_addr, self._retry_cb)
            # Not registered => a wake-up already popped the callback
            # and will fire it shortly: defer the restart to it.
            deferred = not removed
            stall = self.sim.now - self._block_start
            m.stats.versioned_stall_cycles += stall
            if self._blocked_backpressure:
                m.stats.backpressure_stall_cycles += stall
            self._blocked_op = None
            self._blocked_backpressure = False
        if self._gen is not None:
            self._gen.close()
            self._gen = None
        m.manager.abort_task(self.core_id, task.task_id)
        m.stats.tasks_retried += 1
        hook = m.task_hook
        if hook is not None:
            hook("abort", task.task_id, self.core_id)
        self._restart_delay = delay
        self._resume_value = None
        if deferred:
            self._abort_pending = True
        else:
            self._restart()

    def _restart(self) -> None:
        """Re-arm the current task's generator after an abort."""
        self._abort_pending = False
        task = self.current
        assert task is not None
        self._gen = task.make_generator()
        hook = self.machine.task_hook
        if hook is not None:
            hook("begin", task.task_id, self.core_id)
        self._resume_value = None
        self._schedule_resume(self._restart_delay)

    # -- op dispatch --------------------------------------------------------------

    def _dispatch(self, op: tuple) -> tuple[int, Any]:
        m = self.machine
        kind = op[0]
        cid = self.core_id
        if kind == isa.COMPUTE:
            n = op[1]
            m.stats.compute_ops += n
            return -(-n // m.config.issue_width), None  # ceil division
        if kind == isa.LOAD:
            addr = op[1]
            m.page_table.check_conventional(addr)
            m.stats.loads += 1
            return m.hierarchy.access(cid, addr), m.mem.get(addr, 0)
        if kind == isa.STORE:
            addr, value = op[1], op[2]
            m.page_table.check_conventional(addr)
            m.stats.stores += 1
            m.mem[addr] = value
            return m.hierarchy.access(cid, addr, write=True), None
        if kind == isa.LOAD_VERSION:
            return m.manager.load_version(cid, op[1], op[2])
        if kind == isa.LOAD_LATEST:
            return m.manager.load_latest(cid, op[1], op[2])
        if kind == isa.STORE_VERSION:
            tid = self.current.task_id if self.current else None
            return m.manager.store_version(cid, op[1], op[2], op[3], tid)
        if kind == isa.LOCK_LOAD_VERSION:
            return m.manager.lock_load_version(cid, op[1], op[2], self._task_id())
        if kind == isa.LOCK_LOAD_LATEST:
            return m.manager.lock_load_latest(cid, op[1], op[2], self._task_id())
        if kind == isa.UNLOCK_VERSION:
            return m.manager.unlock_version(cid, op[1], op[2], self._task_id(), op[3])
        if kind == isa.TASK_BEGIN:
            m.tracker.begin(op[1])
            return TASK_BEGIN_CYCLES, None
        if kind == isa.TASK_END:
            m.tracker.end(op[1])
            return TASK_END_CYCLES, None
        if kind == isa.RW_ACQUIRE:
            return self._rw_acquire(op[1], op[2])
        if kind == isa.RW_RELEASE:
            return op[1].release(cid, op[2]), None
        raise SimulationError(f"unknown micro-op {kind!r}")

    def _task_id(self) -> int:
        if self.current is None:
            raise SimulationError("locking op outside a task context")
        return self.current.task_id

    def _current_tid(self) -> int | None:
        return self.current.task_id if self.current is not None else None

    def _rw_grant(self, lat: int) -> None:
        """Grant continuation: resume the generator ``lat`` cycles out."""
        self._resume_value = None
        self.sim.schedule(lat, self._resume_cb)

    def _rw_acquire(self, lock, mode: str) -> tuple[int, Any]:
        granted = lock.try_acquire(self.core_id, mode, self._rw_grant)
        if granted is None:
            # Parked in the lock's queue; continuation fires on grant.
            # Raising StallSignal would double-register; instead return a
            # sentinel latency of 0 with a no-op continuation suppressed.
            return 0, _RW_PARKED
        return granted, None


#: Sentinel: the rwlock queued us; the grant callback resumes the core.
_RW_PARKED = object()
