"""Machine assembly: cores + memory system + O-structure subsystem.

:class:`Machine` wires every component of the simulated platform together
and is the main entry point of the library::

    from repro import Machine, MachineConfig

    machine = Machine(MachineConfig(num_cores=8))
    machine.submit(tasks)
    stats = machine.run()

A machine is single-use: build, submit, run, inspect stats.  ``run``
drains the event heap and then checks that every task finished — if cores
are still parked on version waiter queues or rwlock queues, the run
deadlocked and a :class:`~repro.errors.DeadlockError` describes exactly
who was waiting on what.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Sequence

from ..config import MachineConfig
from ..errors import DeadlockError, FreeListExhausted, SimulationError
from ..ostruct.free_list import FreeList
from ..ostruct.gc import GarbageCollector
from ..ostruct.manager import OStructureManager
from ..ostruct.page_table import PageTable
from ..runtime.allocator import VERSION_BLOCK_BASE, SimHeap
from ..runtime.rwlock import SimRWLock
from ..runtime.scheduler import StaticScheduler
from ..runtime.task import Task, TaskTracker
from .core import Core
from .engine import Simulator
from .fuse import FuseStats, env_enabled as _fuse_env_enabled
from .hierarchy import MemoryHierarchy
from .stats import SimStats

#: Observers called with every newly built machine (see
#: :func:`add_machine_observer`).  Workloads construct their machines
#: internally, so tooling that must attach observability to *someone
#: else's* machine — the ``repro trace`` CLI — registers here.
_machine_observers: list[Callable[["Machine"], None]] = []


def add_machine_observer(fn: Callable[["Machine"], None]) -> None:
    """Call ``fn(machine)`` at the end of every ``Machine.__init__``."""
    _machine_observers.append(fn)


def remove_machine_observer(fn: Callable[["Machine"], None]) -> None:
    _machine_observers.remove(fn)


class Machine:
    """The full simulated platform of Table II plus O-structure support."""

    def __init__(
        self,
        config: MachineConfig | None = None,
        *,
        checked: bool | None = None,
        check_interval: int = 256,
    ):
        """``checked`` enables the :mod:`repro.check` sanitizer (defaults
        to ``config.checked``); ``check_interval`` is the number of
        versioned ops between structural-invariant checkpoints."""
        self.config = config or MachineConfig()
        self.sim = Simulator()
        self.stats = SimStats()
        self.hierarchy = MemoryHierarchy(self.config, self.stats)
        self.page_table = PageTable()
        self.heap = SimHeap(self.page_table)
        self.mem: dict[int, Any] = {}
        self.tracker = TaskTracker()
        self.free_list = FreeList(
            base_paddr=VERSION_BLOCK_BASE,
            initial_blocks=self.config.free_list_blocks,
            refill_blocks=self.config.refill_blocks,
            max_refills=self.config.free_list_refills,
            stats=self.stats,
            on_refill_page=self.page_table.mark_versioned,
        )
        self.gc = GarbageCollector(
            free_list=self.free_list,
            tracker=self.tracker,
            hierarchy=self.hierarchy,
            stats=self.stats,
            watermark=self.config.gc_watermark,
        )
        self.manager = OStructureManager(
            config=self.config,
            sim=self.sim,
            hierarchy=self.hierarchy,
            page_table=self.page_table,
            free_list=self.free_list,
            gc=self.gc,
            stats=self.stats,
        )
        #: Effective fusion switch the cores read at build time:
        #: ``config.fused`` unless ``REPRO_FUSED`` disables it globally.
        self.fused_enabled = self.config.fused and _fuse_env_enabled()
        #: Fusion telemetry (repro.sim.fuse) — host-side only, kept off
        #: ``SimStats`` so fused and unfused runs stay byte-identical.
        self.fuse_stats = FuseStats()
        self.cores = [Core(i, self) for i in range(self.config.num_cores)]
        #: Micro-ops retired across all cores; the watchdog's progress
        #: signal (a plain int, bumped on the core retire path).
        self.retired_ops = 0
        #: Optional ``fn(core, task, op_tuple, latency, stalled)`` called
        #: for every retired (or stalled) micro-op; see repro.sim.trace.
        #: Always the *effective* hook the cores call: ``None``, the sole
        #: registered hook, or a composed dispatcher over all of them.
        #: Attach via :meth:`add_trace_hook` — multiple consumers (a
        #: Tracer, the sanitizer, a span recorder) chain in order.
        self.trace_hook = None
        self._trace_hooks: list = []
        self._chained_trace_hook = None
        #: Optional ``fn(event, task_id, core_id)`` observing the task
        #: lifecycle; ``event`` is "begin", "end" or "abort" (repro.obs).
        self.task_hook = None
        #: Optional ``fn(event, info)`` observing watchdog recoveries;
        #: ``event`` is "trip", "abort", "kick" or "gave_up" (repro.obs).
        self.recovery_hook = None
        #: Metrics registry (repro.obs), attached when ``config.metrics``
        #: is set or via ``repro.obs.attach_metrics``.  ``None`` keeps
        #: every instrumented path to a single attribute check.
        self.metrics = None
        #: Epoch checkpointer (repro.recovery), attached externally the
        #: same way metrics are; ``None`` keeps checkpointing at zero
        #: hot-path cost (it only ever wraps ``manager._extra``).
        self.checkpointer = None
        #: Every rwlock built through :meth:`new_rwlock`, so state
        #: capture (repro.recovery) can walk them.
        self.rwlocks: list[SimRWLock] = []
        self._ran = False
        self._submitted = False
        #: Live deadlock watchdog, armed when ``watchdog_cycles > 0``.
        self.watchdog = None
        if self.config.watchdog_cycles > 0:
            from .watchdog import Watchdog

            self.watchdog = Watchdog(
                self,
                cycle_budget=self.config.watchdog_cycles,
                retry_limit=self.config.watchdog_retries,
                backoff_cycles=self.config.watchdog_backoff_cycles,
                kick_limit=self.config.watchdog_kick_limit,
            )
        #: Deterministic fault injector, armed when ``config.faults`` is
        #: non-empty.  Imported lazily — repro.faults reaches back into
        #: the sim layer.
        self.injector = None
        if self.config.faults:
            from ..faults.injector import FaultInjector

            self.injector = FaultInjector(self, self.config.faults)
        #: The repro.check sanitizer, when checked mode is on.
        self.sanitizer = None
        if self.config.checked if checked is None else checked:
            # Imported here: repro.check wraps the manager built above,
            # and importing it at module scope would be circular.
            from ..check.sanitizer import Sanitizer

            self.sanitizer = Sanitizer(self, interval=check_interval)
        if self.config.metrics:
            # Imported here: repro.obs instruments the subsystems built
            # above, and the sim layer must not depend on it statically.
            from ..obs.attach import attach_metrics

            attach_metrics(self)
        for observe in _machine_observers:
            observe(self)

    # -- trace-hook chaining ------------------------------------------------------

    def add_trace_hook(self, fn: Callable) -> None:
        """Register a per-op trace hook; hooks are called in attach order.

        Historically consumers assigned ``machine.trace_hook`` directly,
        which meant a second consumer silently displaced the first.  The
        hot path still reads the single ``trace_hook`` attribute (kept as
        ``None`` / the sole hook / a composed dispatcher), so chaining
        costs nothing when at most one consumer is attached.  A hook that
        was assigned directly is absorbed into the chain rather than
        displaced.  Attaching the same hook twice raises.
        """
        current = self.trace_hook
        if (
            current is not None
            and current is not self._chained_trace_hook
            and current not in self._trace_hooks
        ):
            # Absorb a hook installed by direct assignment (legacy API).
            self._trace_hooks.append(current)
        if fn in self._trace_hooks:
            raise SimulationError("trace hook already attached")
        self._trace_hooks.append(fn)
        self._rebuild_trace_hook()

    def remove_trace_hook(self, fn: Callable) -> bool:
        """Unregister ``fn``; True if it was attached (in any order)."""
        if fn in self._trace_hooks:
            self._trace_hooks.remove(fn)
            self._rebuild_trace_hook()
            return True
        if self.trace_hook is fn:
            # Directly assigned, never registered: clear it.
            self.trace_hook = None
            return True
        return False

    def _rebuild_trace_hook(self) -> None:
        hooks = self._trace_hooks
        if not hooks:
            self._chained_trace_hook = None
            self.trace_hook = None
        elif len(hooks) == 1:
            self._chained_trace_hook = None
            self.trace_hook = hooks[0]
        else:
            chain = tuple(hooks)

            def chained(core, task, op_tuple, latency, stalled, _chain=chain):
                for hook in _chain:
                    hook(core, task, op_tuple, latency, stalled)

            self._chained_trace_hook = chained
            self.trace_hook = chained

    # -- convenience constructors ------------------------------------------------

    def new_rwlock(self, name: str = "rwlock") -> SimRWLock:
        lock = SimRWLock(self, name)
        self.rwlocks.append(lock)
        return lock

    # -- task submission -----------------------------------------------------------

    def submit(
        self,
        tasks: Sequence[Task],
        scheduler: StaticScheduler | None = None,
    ) -> None:
        """Statically assign ``tasks`` to cores (round-robin by default).

        Registers every task with the tracker in id order — the paper's
        runtime creates tasks in program order, which is what satisfies
        GC rule 3 (no creation below the lowest live id).
        """
        for task in sorted(tasks, key=lambda t: t.task_id):
            self.tracker.register(task.task_id)
        (scheduler or StaticScheduler()).assign(tasks, self.cores)
        self._submitted = True

    def submit_main(
        self, program: Callable[[int], Generator[tuple, Any, Any]], task_id: int = 0
    ) -> Task:
        """Submit a single main-program generator on core 0.

        Used for sequential (unversioned or versioned) reference runs.
        """
        task = Task(task_id, program)
        self.tracker.register(task.task_id)
        self.cores[0].enqueue(task)
        self._submitted = True
        return task

    # -- running ----------------------------------------------------------------------

    def run(self, max_cycles: int | None = None) -> SimStats:
        """Execute to completion; returns the stats object."""
        if self._ran:
            raise SimulationError("Machine.run() may only be called once")
        if not self._submitted:
            raise SimulationError("no tasks submitted")
        self._ran = True
        for core in self.cores:
            core.start()
        if self.watchdog is not None:
            self.watchdog.start()
        try:
            self.sim.run(until=max_cycles)
        except FreeListExhausted as exc:
            # Terminal allocation failure: attach the wait graph so the
            # report shows who was parked when the last block vanished.
            try:
                from . import waitgraph

                exc.attach_post_mortem(waitgraph.post_mortem(self))
            except Exception:  # pragma: no cover - diagnosis must not mask
                pass
            raise
        self._check_completion(max_cycles)
        self.stats.cycles = self.sim.now
        for core in self.cores:
            self.stats.per_core_cycles[core.core_id] = core.busy_cycles
        if self.sanitizer is not None:
            self.sanitizer.finish()
        return self.stats

    def _check_completion(self, max_cycles: int | None) -> None:
        unfinished = [c for c in self.cores if not c.idle]
        if not unfinished:
            return
        if max_cycles is not None and self.sim.pending_events:
            return  # stopped by the cycle limit, not a deadlock
        if any(
            core._blocked_backpressure for core in unfinished if core.blocked
        ):
            # A core parked on allocation never resumed: the free list
            # stayed exhausted and emergency reclamation never produced a
            # block.  Report it as resource exhaustion, not a lock cycle.
            from . import waitgraph

            raise FreeListExhausted(
                "free-list backpressure never resolved: cores stalled on "
                "version-block allocation and reclamation freed nothing",
                post_mortem=waitgraph.post_mortem(self),
            )
        blocked = []
        for core in unfinished:
            if core.blocked:
                blocked.append(core.describe_block())
            elif core.current is not None:
                blocked.append(
                    f"core {core.core_id} task {core.current.task_id} parked "
                    f"(rwlock queue or un-woken waiter)"
                )
            else:
                blocked.append(f"core {core.core_id} has queued tasks but never ran")
        blocked.extend(self.manager.blocked_waiter_report())
        if self.watchdog is not None and self.watchdog.gave_up:
            blocked.append(
                f"watchdog recovery exhausted: "
                f"{self.config.watchdog_retries} abort-and-retry attempt(s) "
                f"per victim did not break the cycle"
            )
        raise DeadlockError(blocked)

    # -- derived results ------------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.sim.now

    def seconds(self) -> float:
        """Simulated wall-clock time at the configured frequency."""
        return self.sim.now / (self.config.clock_ghz * 1e9)


def run_tasks(
    config: MachineConfig,
    task_factory: Callable[["Machine"], Iterable[Task]],
    scheduler: StaticScheduler | None = None,
    max_cycles: int | None = None,
) -> tuple[SimStats, list[Task]]:
    """Build a machine, materialise tasks, run, return (stats, tasks).

    ``task_factory`` receives the machine (so workloads can allocate heap
    memory and register roots) and returns the task list.
    """
    machine = Machine(config)
    tasks = list(task_factory(machine))
    machine.submit(tasks, scheduler)
    stats = machine.run(max_cycles)
    return stats, tasks
