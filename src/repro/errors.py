"""Exception hierarchy for the O-structures reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family with one clause.  Faults that the paper describes as
hardware traps (protection violations, double stores, free-list exhaustion
reaching software) are modelled as dedicated exception types.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """Raised for invalid simulator or experiment configuration values."""


class SimulationError(ReproError):
    """Base class for errors raised while a simulation is running."""


class DeadlockError(SimulationError):
    """The event queue drained while tasks were still blocked.

    Carries a human-readable description of each blocked core and the
    operation it was waiting on, which makes programming-model bugs in
    workloads (e.g. a ``LOAD-VERSION`` of a version nobody stores)
    immediately diagnosable.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        detail = "; ".join(blocked) if blocked else "unknown waiters"
        super().__init__(f"simulation deadlocked: {detail}")


class ProtectionFault(SimulationError):
    """Modelled hardware protection trap (paper, Section III).

    Raised when a conventional load/store touches a version-block page,
    when an O-structure instruction touches a non-versioned page, or when
    a version-block list is entered other than through its head block.
    """


class VersionExistsError(SimulationError):
    """``STORE-VERSION`` targeted an already-created version.

    The paper states a version, once created, can be locked but not
    modified; re-creating it is a program error.
    """


class NotLockedError(SimulationError):
    """``UNLOCK-VERSION`` targeted a version the task does not hold locked."""


class FreeListExhausted(SimulationError):
    """The hardware free-list ran dry and the OS refill handler also failed.

    In the paper the hardware traps to software, which grows the free list;
    the simulator mirrors that, and only raises this error when the
    configured refill budget is exhausted.
    """


class AllocationError(SimulationError):
    """The simulated heap cannot satisfy an allocation request."""
