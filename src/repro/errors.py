"""Exception hierarchy for the O-structures reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch the whole family with one clause.  Faults that the paper describes as
hardware traps (protection violations, double stores, free-list exhaustion
reaching software) are modelled as dedicated exception types.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """Raised for invalid simulator or experiment configuration values."""


class SimulationError(ReproError):
    """Base class for errors raised while a simulation is running."""


class DeadlockError(SimulationError):
    """The event queue drained while tasks were still blocked.

    Carries a human-readable description of each blocked core and the
    operation it was waiting on, which makes programming-model bugs in
    workloads (e.g. a ``LOAD-VERSION`` of a version nobody stores)
    immediately diagnosable.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        detail = "; ".join(blocked) if blocked else "unknown waiters"
        super().__init__(f"simulation deadlocked: {detail}")


class ProtectionFault(SimulationError):
    """Modelled hardware protection trap (paper, Section III).

    Raised when a conventional load/store touches a version-block page,
    when an O-structure instruction touches a non-versioned page, or when
    a version-block list is entered other than through its head block.
    """


class VersionExistsError(SimulationError):
    """``STORE-VERSION`` targeted an already-created version.

    The paper states a version, once created, can be locked but not
    modified; re-creating it is a program error.
    """


class NotLockedError(SimulationError):
    """``UNLOCK-VERSION`` targeted a version the task does not hold locked."""


class FreeListExhausted(SimulationError):
    """Version-block reclamation provably cannot free anything.

    In the paper the hardware traps to software, which grows the free
    list; the simulator mirrors that.  With allocation backpressure
    enabled (the default) an empty free list with a spent refill budget
    first stalls the requesting core and runs an emergency collection —
    this error is only raised when no shadowed block exists that could
    ever be reclaimed (or when the stalled cores outlive every event, at
    drain time).  ``post_mortem`` then carries a wait-graph report of
    who was stalled on allocation and why nothing was reclaimable.
    """

    def __init__(self, message: str, *, post_mortem: str = ""):
        self.post_mortem = ""
        super().__init__(message)
        if post_mortem:
            self.attach_post_mortem(post_mortem)

    def attach_post_mortem(self, report: str) -> None:
        """Append a wait-graph report to the message (idempotent)."""
        if self.post_mortem or not report:
            return
        self.post_mortem = report
        self.args = (f"{self.args[0]}\nwait graph:\n{report}",)


class AllocationError(SimulationError):
    """The simulated heap cannot satisfy an allocation request."""


class MachineCrash(SimulationError):
    """An injected ``crash-machine`` fault killed the simulation.

    Models the process dying mid-run (the software analogue of a power
    failure): the machine is unusable afterwards and the only way
    forward is :class:`repro.recovery.RecoveryPolicy` — restore the
    latest epoch checkpoint and replay.  Carries the versioned-op
    ordinal at which the crash fired so recovery can report how much
    work was at risk.
    """

    def __init__(self, message: str, *, op_index: int = 0):
        self.op_index = op_index
        super().__init__(message)


class CheckpointError(ReproError):
    """A checkpoint image is unreadable, corrupt, or replay diverged.

    Raised when an image fails its magic/CRC validation (e.g. the
    ``corrupt-block`` fault flipped a byte) and by the
    :class:`repro.recovery.Checkpointer` in verify mode when a replayed
    run's state digest does not match the recorded image — the loud
    failure that protects the byte-identical-restore guarantee.
    """


class SweepFailure(ReproError):
    """A sweep RunSpec kept failing after every retry.

    Raised by :class:`repro.harness.runner.SweepRunner` when a run
    crashed its worker process or exceeded the wall-clock timeout more
    times than the retry budget allows.  Completed rows of the sweep
    were already persisted incrementally, so re-running with
    ``--resume`` only re-executes the spec(s) that failed.
    """

    def __init__(self, spec_repr: str, attempts: int, reason: str):
        self.spec_repr = spec_repr
        self.attempts = attempts
        self.reason = reason
        super().__init__(
            f"sweep run failed after {attempts} attempt(s): {reason} "
            f"[{spec_repr}]"
        )
