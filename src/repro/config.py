"""Simulation configuration, defaulting to the paper's Table II platform.

Table II (IPDPS 2018):

==============  ======================================================
Processor       2-way in-order (ARM ISA), 2 GHz
L1 I/D cache    32 KB, 8-way associative, 64 B block, 4 cycles hit
L2 cache        1.5 MB x #cores, shared, 16-way, 64 B block, 35 cycles
Memory          64 GB, 60 ns latency
==============  ======================================================

At 2 GHz, 60 ns of DRAM latency is 120 cycles.  The O-structure specific
knobs (free-list size, GC watermark, compression on/off, injected
versioned-op latency) correspond to the design options evaluated in
Sections III-IV of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

#: Cache block size used throughout the paper (bytes).
BLOCK_SIZE = 64

#: Size of one version block in bytes (Figure 3: 16-byte structure).
VERSION_BLOCK_SIZE = 16

#: Number of compressed version-block entries per 64-byte cache line.
COMPRESSED_ENTRIES_PER_LINE = 8


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigError(msg)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    ways: int
    block_bytes: int = BLOCK_SIZE
    hit_latency: int = 4

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.ways > 0, "cache associativity must be positive")
        _require(_is_pow2(self.block_bytes), "block size must be a power of two")
        _require(
            self.size_bytes % (self.ways * self.block_bytes) == 0,
            "cache size must be divisible by ways*block",
        )
        _require(self.hit_latency >= 0, "hit latency must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_bytes)


@dataclass(frozen=True)
class MachineConfig:
    """Full platform description; defaults reproduce Table II."""

    num_cores: int = 32
    issue_width: int = 2
    clock_ghz: float = 2.0

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, ways=8, hit_latency=4)
    )
    #: L2 is 1.5 MB *per core*, shared; total size scales with core count.
    l2_kib_per_core: int = 1536
    l2_ways: int = 16
    l2_hit_latency: int = 35
    dram_latency_ns: float = 60.0

    #: Latency penalty for a coherence invalidation / remote transfer.  The
    #: paper notes LLC and cross-core transfers have comparable latency, so
    #: this defaults to the L2 hit latency.
    remote_penalty: int = 35

    # --- O-structure knobs -------------------------------------------------
    #: Extra cycles injected into every versioned operation (Figure 10).
    versioned_op_extra_latency: int = 0
    #: Store compressed version blocks in L1 (Section III-A).  Disabling it
    #: forces every versioned access through a full list lookup (ablation).
    compression_enabled: bool = True
    #: Skip installing traversed blocks in the cache during full lookups
    #: ("avoiding cache pollution", Section III-A).
    pollution_avoidance: bool = True
    #: Keep version-block lists sorted (newest first).  The no-sorting
    #: configuration of Section IV-F appends instead.
    sorted_version_lists: bool = True
    #: Number of version blocks initially carved into the free list.
    free_list_blocks: int = 1 << 16
    #: GC triggers when free blocks drop below this watermark.
    gc_watermark: int = 64
    #: How many times the OS refill handler may grow the free list before
    #: the simulator declares exhaustion.  ``None`` means unlimited.
    free_list_refills: int | None = None
    #: Blocks added per OS refill trap.
    refill_blocks: int = 1 << 12
    #: Run the machine under the :mod:`repro.check` sanitizer: every
    #: versioned op is diffed against the software reference model and
    #: structural invariants are validated at checkpoints.  Purely a
    #: debugging/validation mode — simulated timing is unchanged, host
    #: time roughly doubles.
    checked: bool = False

    def __post_init__(self) -> None:
        _require(self.num_cores > 0, "need at least one core")
        _require(self.issue_width > 0, "issue width must be positive")
        _require(self.clock_ghz > 0, "clock must be positive")
        _require(self.l2_kib_per_core > 0, "L2 size must be positive")
        _require(self.l2_ways > 0, "L2 associativity must be positive")
        _require(self.l2_hit_latency >= 0, "L2 latency must be non-negative")
        _require(self.dram_latency_ns > 0, "DRAM latency must be positive")
        _require(self.remote_penalty >= 0, "remote penalty must be non-negative")
        _require(
            self.versioned_op_extra_latency >= 0,
            "injected latency must be non-negative",
        )
        _require(self.free_list_blocks > 0, "free list must start non-empty")
        _require(self.gc_watermark >= 0, "watermark must be non-negative")
        _require(self.refill_blocks > 0, "refill size must be positive")

    @property
    def l2(self) -> CacheConfig:
        """The shared L2 cache configuration (scales with core count)."""
        return CacheConfig(
            size_bytes=self.l2_kib_per_core * 1024 * self.num_cores,
            ways=self.l2_ways,
            hit_latency=self.l2_hit_latency,
        )

    @property
    def dram_latency_cycles(self) -> int:
        """DRAM latency converted to core cycles (60 ns @ 2 GHz = 120)."""
        return round(self.dram_latency_ns * self.clock_ghz)

    def with_cores(self, n: int) -> "MachineConfig":
        """A copy of this configuration with ``n`` cores."""
        return replace(self, num_cores=n)

    def with_l1_kib(self, kib: int) -> "MachineConfig":
        """A copy with a resized L1 (Figure 9 sweep)."""
        return replace(
            self,
            l1=CacheConfig(
                size_bytes=kib * 1024,
                ways=self.l1.ways,
                block_bytes=self.l1.block_bytes,
                hit_latency=self.l1.hit_latency,
            ),
        )

    def with_versioned_latency(self, cycles: int) -> "MachineConfig":
        """A copy injecting ``cycles`` into every versioned op (Figure 10)."""
        return replace(self, versioned_op_extra_latency=cycles)


#: The paper's experimental platform (Table II), 32 cores.
TABLE2 = MachineConfig()
