"""Simulation configuration, defaulting to the paper's Table II platform.

Table II (IPDPS 2018):

==============  ======================================================
Processor       2-way in-order (ARM ISA), 2 GHz
L1 I/D cache    32 KB, 8-way associative, 64 B block, 4 cycles hit
L2 cache        1.5 MB x #cores, shared, 16-way, 64 B block, 35 cycles
Memory          64 GB, 60 ns latency
==============  ======================================================

At 2 GHz, 60 ns of DRAM latency is 120 cycles.  The O-structure specific
knobs (free-list size, GC watermark, compression on/off, injected
versioned-op latency) correspond to the design options evaluated in
Sections III-IV of the paper.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from .errors import ConfigError

#: Cache block size used throughout the paper (bytes).
BLOCK_SIZE = 64

#: Size of one version block in bytes (Figure 3: 16-byte structure).
VERSION_BLOCK_SIZE = 16

#: Number of compressed version-block entries per 64-byte cache line.
COMPRESSED_ENTRIES_PER_LINE = 8


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ConfigError(msg)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _watchdog_cycles_default() -> int:
    """Watchdog period from ``REPRO_WATCHDOG_CYCLES`` (0 = disabled)."""
    raw = os.environ.get("REPRO_WATCHDOG_CYCLES", "").strip()
    if not raw:
        return 0
    try:
        cycles = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_WATCHDOG_CYCLES must be an integer, got {raw!r}"
        ) from None
    return max(0, cycles)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and hit latency of one cache level."""

    size_bytes: int
    ways: int
    block_bytes: int = BLOCK_SIZE
    hit_latency: int = 4

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.ways > 0, "cache associativity must be positive")
        _require(_is_pow2(self.block_bytes), "block size must be a power of two")
        _require(
            self.size_bytes % (self.ways * self.block_bytes) == 0,
            "cache size must be divisible by ways*block",
        )
        _require(self.hit_latency >= 0, "hit latency must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.block_bytes)


@dataclass(frozen=True)
class MachineConfig:
    """Full platform description; defaults reproduce Table II."""

    num_cores: int = 32
    issue_width: int = 2
    clock_ghz: float = 2.0

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, ways=8, hit_latency=4)
    )
    #: L2 is 1.5 MB *per core*, shared; total size scales with core count.
    l2_kib_per_core: int = 1536
    l2_ways: int = 16
    l2_hit_latency: int = 35
    dram_latency_ns: float = 60.0

    #: Latency penalty for a coherence invalidation / remote transfer.  The
    #: paper notes LLC and cross-core transfers have comparable latency, so
    #: this defaults to the L2 hit latency.
    remote_penalty: int = 35

    # --- O-structure knobs -------------------------------------------------
    #: Extra cycles injected into every versioned operation (Figure 10).
    versioned_op_extra_latency: int = 0
    #: Store compressed version blocks in L1 (Section III-A).  Disabling it
    #: forces every versioned access through a full list lookup (ablation).
    compression_enabled: bool = True
    #: Skip installing traversed blocks in the cache during full lookups
    #: ("avoiding cache pollution", Section III-A).
    pollution_avoidance: bool = True
    #: Keep version-block lists sorted (newest first).  The no-sorting
    #: configuration of Section IV-F appends instead.
    sorted_version_lists: bool = True
    #: Number of version blocks initially carved into the free list.
    free_list_blocks: int = 1 << 16
    #: GC triggers when free blocks drop below this watermark.
    gc_watermark: int = 64
    #: How many times the OS refill handler may grow the free list before
    #: the simulator declares exhaustion.  ``None`` means unlimited.
    free_list_refills: int | None = None
    #: Blocks added per OS refill trap.
    refill_blocks: int = 1 << 12
    #: On allocation pressure (free list empty, refill budget spent),
    #: stall the requesting core and run an emergency collection instead
    #: of raising :class:`FreeListExhausted`; the error is only raised
    #: when reclamation provably cannot free anything.
    allocation_backpressure: bool = True
    #: Live deadlock watchdog period in cycles (0 disables it).  When no
    #: core retires an operation for this many cycles while cores are
    #: blocked, the watchdog runs ``waitgraph.find_cycles`` and recovers
    #: by abort-and-retry of a victim task (lock cycles) or by
    #: re-delivering parked wake-ups (lost-wake hangs).  Defaults from
    #: ``REPRO_WATCHDOG_CYCLES``.
    watchdog_cycles: int = field(default_factory=_watchdog_cycles_default)
    #: Abort-and-retry attempts per task before the watchdog gives up
    #: and lets the drain-time DeadlockError report the hang.
    watchdog_retries: int = 4
    #: Restart delay of the first retry; doubles per attempt
    #: (exponential cycle backoff).
    watchdog_backoff_cycles: int = 128
    #: Wake-up re-deliveries per no-progress streak (lost-wake recovery).
    watchdog_kick_limit: int = 2
    #: Deterministic fault plan: a tuple of
    #: :class:`repro.faults.FaultSpec` armed when the machine is built.
    faults: tuple = ()
    #: Run the machine under the :mod:`repro.check` sanitizer: every
    #: versioned op is diffed against the software reference model and
    #: structural invariants are validated at checkpoints.  Purely a
    #: debugging/validation mode — simulated timing is unchanged, host
    #: time roughly doubles.
    checked: bool = False
    #: Attach a :mod:`repro.obs` metrics registry to the machine:
    #: distributional instruments (version-list walk length, compressed-
    #: line occupancy, GC reclamation lag, lock-wait time, free-list
    #: depth) sampled on the instrumented paths.  Off by default; the
    #: disabled path is a single attribute check per site, so simulated
    #: timing and (to within noise) host time are unchanged.
    metrics: bool = False
    #: Execute runs of non-stalling micro-ops (``compute`` and
    #: conventional ``load``/``store``) through the :mod:`repro.sim.fuse`
    #: fast-path interpreter, retiring a whole run in one engine event.
    #: Simulated behaviour — ``SimStats``, traces, metric snapshots — is
    #: byte-identical either way (enforced by tests/test_fuse.py); this
    #: knob only trades host time for per-op debuggability.  The
    #: ``REPRO_FUSED=0`` environment escape hatch disables fusion
    #: globally without touching config identity.
    fused: bool = True

    def __post_init__(self) -> None:
        _require(self.num_cores > 0, "need at least one core")
        _require(self.issue_width > 0, "issue width must be positive")
        _require(self.clock_ghz > 0, "clock must be positive")
        _require(self.l2_kib_per_core > 0, "L2 size must be positive")
        _require(self.l2_ways > 0, "L2 associativity must be positive")
        _require(self.l2_hit_latency >= 0, "L2 latency must be non-negative")
        _require(self.dram_latency_ns > 0, "DRAM latency must be positive")
        _require(self.remote_penalty >= 0, "remote penalty must be non-negative")
        _require(
            self.versioned_op_extra_latency >= 0,
            "injected latency must be non-negative",
        )
        _require(self.free_list_blocks > 0, "free list must start non-empty")
        _require(self.gc_watermark >= 0, "watermark must be non-negative")
        _require(self.refill_blocks > 0, "refill size must be positive")
        _require(self.watchdog_cycles >= 0, "watchdog period must be non-negative")
        _require(self.watchdog_retries >= 0, "watchdog retries must be non-negative")
        _require(
            self.watchdog_backoff_cycles >= 1,
            "watchdog backoff must be at least one cycle",
        )
        _require(
            self.watchdog_kick_limit >= 0,
            "watchdog kick limit must be non-negative",
        )
        if self.faults:
            from .faults.spec import validate_plan

            validate_plan(self.faults)

    @property
    def l2(self) -> CacheConfig:
        """The shared L2 cache configuration (scales with core count)."""
        return CacheConfig(
            size_bytes=self.l2_kib_per_core * 1024 * self.num_cores,
            ways=self.l2_ways,
            hit_latency=self.l2_hit_latency,
        )

    @property
    def dram_latency_cycles(self) -> int:
        """DRAM latency converted to core cycles (60 ns @ 2 GHz = 120)."""
        return round(self.dram_latency_ns * self.clock_ghz)

    def with_cores(self, n: int) -> "MachineConfig":
        """A copy of this configuration with ``n`` cores."""
        return replace(self, num_cores=n)

    def with_l1_kib(self, kib: int) -> "MachineConfig":
        """A copy with a resized L1 (Figure 9 sweep)."""
        return replace(
            self,
            l1=CacheConfig(
                size_bytes=kib * 1024,
                ways=self.l1.ways,
                block_bytes=self.l1.block_bytes,
                hit_latency=self.l1.hit_latency,
            ),
        )

    def with_versioned_latency(self, cycles: int) -> "MachineConfig":
        """A copy injecting ``cycles`` into every versioned op (Figure 10)."""
        return replace(self, versioned_op_extra_latency=cycles)

    def with_watchdog(self, cycles: int, **knobs: int) -> "MachineConfig":
        """A copy with the live deadlock watchdog armed at ``cycles``.

        Extra keyword arguments override the other watchdog knobs
        (``watchdog_retries``, ``watchdog_backoff_cycles``,
        ``watchdog_kick_limit``).
        """
        return replace(self, watchdog_cycles=cycles, **knobs)

    def with_faults(self, *faults) -> "MachineConfig":
        """A copy carrying the given fault plan (see :mod:`repro.faults`)."""
        return replace(self, faults=tuple(faults))

    def with_metrics(self, enabled: bool = True) -> "MachineConfig":
        """A copy with the :mod:`repro.obs` metrics registry attached."""
        return replace(self, metrics=enabled)

    def with_fused(self, enabled: bool = True) -> "MachineConfig":
        """A copy with macro-op fusion on or off (timing-invariant)."""
        return replace(self, fused=enabled)


#: The paper's experimental platform (Table II), 32 cores.
TABLE2 = MachineConfig()
