"""Chained dense matrix multiplication (Section IV-B).

The paper multiplies three dense matrices — ``R = (A @ B) @ C`` — where
the intermediate ``T = A @ B`` must not be consumed before it is produced.
Each element of ``T`` and ``R`` is written exactly once, so O-structures
act as I-structures: producers STORE-VERSION(1), consumers
LOAD-VERSION(1), which blocks until the element exists.  No renaming or
locking is needed, and the result is a dataflow pipeline between the two
multiply stages.

Tasks are matrix rows.  ``T``-row tasks and ``R``-row tasks interleave in
the submission order, so the static round-robin scheduler overlaps the
two stages: an ``R`` row starts as soon as the ``T`` elements its dot
products need exist.

Inputs ``A``, ``B``, ``C`` are conventional read-only arrays, preloaded
(their initialisation is not part of the measured region, as in the
paper).  The versioned single-thread run is ~2-3x slower than the
unversioned one purely from the versioned-operation overhead — the
Figure 6 observation.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..config import MachineConfig
from ..ostruct import isa
from ..runtime.task import Task
from ..sim.machine import Machine
from .base import FIRST_TASK_ID, WorkloadRun, run_variant
from .opgen import compute_op, load_op, store_op

#: ALU cycles per multiply-accumulate step (mul + add + index arithmetic).
MAC_COMPUTE = 4


def make_inputs(n: int, seed: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Three dense n x n integer matrices (small values, exact arithmetic)."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 16, size=(n, n))
    b = rng.integers(0, 16, size=(n, n))
    c = rng.integers(0, 16, size=(n, n))
    return a, b, c


def reference(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    return (a @ b) @ c


class MatmulWorkload:
    """Address layout and task bodies for one chained multiplication."""

    def __init__(
        self, machine: Machine, a: np.ndarray, b: np.ndarray, c: np.ndarray,
        versioned: bool,
    ):
        self.m = machine
        self.n = n = a.shape[0]
        self.versioned = versioned
        heap = machine.heap
        self.a_base = heap.alloc(4 * n * n, align=64)
        self.b_base = heap.alloc(4 * n * n, align=64)
        self.c_base = heap.alloc(4 * n * n, align=64)
        if versioned:
            self.t_base = heap.alloc_versioned(n * n)
            self.r_base = heap.alloc_versioned(n * n)
        else:
            self.t_base = heap.alloc(4 * n * n, align=64)
            self.r_base = heap.alloc(4 * n * n, align=64)
        mem = machine.mem
        for i in range(n):
            for j in range(n):
                mem[self.a_base + 4 * (i * n + j)] = int(a[i, j])
                mem[self.b_base + 4 * (i * n + j)] = int(b[i, j])
                mem[self.c_base + 4 * (i * n + j)] = int(c[i, j])

    def addr(self, base: int, i: int, j: int) -> int:
        return base + 4 * (i * self.n + j)

    # -- versioned task bodies ------------------------------------------------

    def t_row_task(self, tid: int, i: int) -> Generator:
        """Produce T[i, :] = A[i, :] @ B (store each element as version 1)."""
        n = self.n
        for j in range(n):
            acc = 0
            for k in range(n):
                av = yield load_op(self.addr(self.a_base, i, k))
                bv = yield load_op(self.addr(self.b_base, k, j))
                yield compute_op(MAC_COMPUTE)
                acc += av * bv
            yield isa.store_version(self.addr(self.t_base, i, j), 1, acc)

    def r_row_task(self, tid: int, i: int) -> Generator:
        """Produce R[i, :] = T[i, :] @ C; blocks on unproduced T elements.

        A direct translation of the sequential inner loop: T is loaded
        per use with LOAD-VERSION (the first touch of each element may
        block until the producer row stores it; later touches are direct
        compressed-line hits).
        """
        n = self.n
        for j in range(n):
            acc = 0
            for k in range(n):
                tv = yield isa.load_version(self.addr(self.t_base, i, k), 1)
                cv = yield load_op(self.addr(self.c_base, k, j))
                yield compute_op(MAC_COMPUTE)
                acc += tv * cv
            yield isa.store_version(self.addr(self.r_base, i, j), 1, acc)
        return None

    # -- unversioned program ----------------------------------------------------

    def sequential_program(self, tid: int) -> Generator:
        n = self.n
        for i in range(n):
            for j in range(n):
                acc = 0
                for k in range(n):
                    av = yield load_op(self.addr(self.a_base, i, k))
                    bv = yield load_op(self.addr(self.b_base, k, j))
                    yield compute_op(MAC_COMPUTE)
                    acc += av * bv
                yield store_op(self.addr(self.t_base, i, j), acc)
        for i in range(n):
            for j in range(n):
                acc = 0
                for k in range(n):
                    tv = yield load_op(self.addr(self.t_base, i, k))
                    cv = yield load_op(self.addr(self.c_base, k, j))
                    yield compute_op(MAC_COMPUTE)
                    acc += tv * cv
                yield store_op(self.addr(self.r_base, i, j), acc)

    # -- inspection ----------------------------------------------------------------

    def result(self) -> np.ndarray:
        n = self.n
        out = np.zeros((n, n), dtype=np.int64)
        if self.versioned:
            mgr = self.m.manager
            for i in range(n):
                for j in range(n):
                    lst = mgr.lists.get(self.addr(self.r_base, i, j))
                    block, _ = lst.find_exact(1)
                    out[i, j] = block.value
        else:
            for i in range(n):
                for j in range(n):
                    out[i, j] = self.m.mem[self.addr(self.r_base, i, j)]
        return out


def run_unversioned(config: MachineConfig, n: int, seed: int = 11) -> WorkloadRun:
    a, b, c = make_inputs(n, seed)

    def setup(machine):
        return MatmulWorkload(machine, a, b, c, versioned=False)

    def make_tasks(machine, wl):
        return [Task(0, wl.sequential_program, label="matmul-seq")]

    cfg = config.with_cores(1)
    return run_variant(
        "matmul", "unversioned", cfg, setup, make_tasks, lambda m, wl: wl.result()
    )


def run_versioned(
    config: MachineConfig, n: int, num_cores: int, seed: int = 11
) -> WorkloadRun:
    a, b, c = make_inputs(n, seed)

    def setup(machine):
        return MatmulWorkload(machine, a, b, c, versioned=True)

    def make_tasks(machine, wl):
        # Interleave T-row and R-row tasks so the stages pipeline.
        tasks = []
        tid = FIRST_TASK_ID
        for i in range(n):
            tasks.append(Task(tid, wl.t_row_task, i, label="matmul-T"))
            tid += 1
            tasks.append(Task(tid, wl.r_row_task, i, label="matmul-R"))
            tid += 1
        return tasks

    cfg = config.with_cores(num_cores)
    variant = "versioned-seq" if num_cores == 1 else f"versioned-{num_cores}c"
    return run_variant(
        "matmul", variant, cfg, setup, make_tasks, lambda m, wl: wl.result()
    )
