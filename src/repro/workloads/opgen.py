"""Deterministic operation-stream generation for the irregular workloads.

Section IV evaluates the irregular data structures by interleaving
lookups, inserts and deletes in fixed ratios on pre-populated structures,
with equal numbers of inserts and deletes so the memory footprint stays
stable.  The paper's two mixes:

- **read-intensive (4R-1W)**: 4 reads per write,
- **write-intensive (1R-1W)**: 1 read per write.

Figure 8 uses a 3:1 scan:insert mix instead.  Streams are produced with a
seeded NumPy generator, so every variant of a workload (unversioned,
versioned sequential, versioned parallel) replays the identical sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..ostruct import isa

#: Operation names used across workloads.
LOOKUP = "lookup"
INSERT = "insert"
DELETE = "delete"
SCAN = "scan"


# -- interned micro-op singletons ------------------------------------------
#
# The workload generators sit on the simulator's hottest path: every
# structure hop yields a ``compute`` burst and a handful of loads/stores,
# and building a fresh tuple per yield is pure allocator churn — the op
# shapes repeat endlessly (the same small compute counts, the same node
# field addresses).  These constructors return module-level singletons
# instead.  Interning is invisible to the simulation: the tuples are
# equal element-for-element to what :mod:`repro.ostruct.isa` builds, only
# object identity is shared.

#: Largest ``n`` with a pre-built ``(compute, n)`` singleton; covers every
#: static burst the workloads emit (hop/alloc/cell costs are all < 64).
_COMPUTE_INTERN_MAX = 64
_COMPUTE_OPS = tuple((isa.COMPUTE, n) for n in range(_COMPUTE_INTERN_MAX + 1))

#: Address-keyed intern tables for repeated load / store-of-small-int
#: shapes, bounded so pathological address streams cannot grow them
#: without limit (beyond the bound we just allocate, as before).
_ADDR_INTERN_LIMIT = 1 << 16
_LOAD_OPS: dict[int, tuple] = {}
_STORE_OPS: dict[tuple, tuple] = {}


def compute_op(n: int) -> tuple:
    """Interned ``(compute, n)``; allocates only for unusually large n."""
    if 0 <= n <= _COMPUTE_INTERN_MAX:
        return _COMPUTE_OPS[n]
    return (isa.COMPUTE, n)


def load_op(addr: int) -> tuple:
    """Interned conventional load of ``addr``."""
    op = _LOAD_OPS.get(addr)
    if op is None:
        op = (isa.LOAD, addr)
        if len(_LOAD_OPS) < _ADDR_INTERN_LIMIT:
            _LOAD_OPS[addr] = op
    return op


def store_op(addr: int, value) -> tuple:
    """Conventional store; interned when the value is a small int.

    Only exact small ``int`` values are interned (node ids, keys, null
    links) so the cached tuple carries an object equal *and identical in
    type* to the caller's value; anything else allocates as before.
    """
    if value.__class__ is int and 0 <= value < 4096:
        key = (addr, value)
        op = _STORE_OPS.get(key)
        if op is None:
            op = (isa.STORE, addr, value)
            if len(_STORE_OPS) < _ADDR_INTERN_LIMIT:
                _STORE_OPS[key] = op
        return op
    return (isa.STORE, addr, value)


@dataclass(frozen=True)
class OpMix:
    """Relative weights of read and write operations."""

    reads: int
    writes: int
    name: str

    def read_fraction(self) -> float:
        return self.reads / (self.reads + self.writes)


#: The paper's mixes (Figure 6 caption).
READ_INTENSIVE = OpMix(reads=4, writes=1, name="4R-1W")
WRITE_INTENSIVE = OpMix(reads=1, writes=1, name="1R-1W")


def initial_keys(n: int, key_space: int, seed: int) -> list[int]:
    """``n`` distinct keys drawn from ``[0, key_space)``."""
    if n > key_space:
        raise ConfigError("initial population larger than key space")
    rng = np.random.default_rng(seed)
    return [int(k) for k in rng.choice(key_space, size=n, replace=False)]


def generate_ops(
    n_ops: int,
    mix: OpMix,
    key_space: int,
    seed: int,
    *,
    read_op: str = LOOKUP,
    scan_range: int = 1,
) -> list[tuple[str, int, int]]:
    """Generate ``(op, key, extra)`` triples.

    Reads become ``read_op`` (``lookup`` or ``scan``; scans carry
    ``scan_range`` in the extra slot).  Writes alternate insert/delete so
    their counts stay equal and the structure size stays roughly stable
    (Section IV-D: "the number of insertions and deletions was set to be
    equal").
    """
    if n_ops <= 0:
        raise ConfigError("need at least one operation")
    if read_op not in (LOOKUP, SCAN):
        raise ConfigError(f"unknown read op {read_op!r}")
    rng = np.random.default_rng(seed + 1)
    keys = rng.integers(0, key_space, size=n_ops)
    is_read = rng.random(n_ops) < mix.read_fraction()
    ops: list[tuple[str, int, int]] = []
    write_toggle = False
    for i in range(n_ops):
        key = int(keys[i])
        if is_read[i]:
            ops.append((read_op, key, scan_range if read_op == SCAN else 0))
        else:
            ops.append((INSERT if not write_toggle else DELETE, key, 0))
            write_toggle = not write_toggle
    return ops


def reference_results(
    initial: list[int], ops: list[tuple[str, int, int]]
) -> tuple[list, list[int]]:
    """Sequential oracle: apply ``ops`` to a sorted-set model.

    Returns ``(per_op_results, final_contents_sorted)``.  Lookups yield
    bools, inserts/deletes yield success bools, scans yield the list of
    the first ``extra`` keys >= key.
    """
    import bisect

    contents = sorted(set(initial))
    results: list = []
    for op, key, extra in ops:
        if op == LOOKUP:
            i = bisect.bisect_left(contents, key)
            results.append(i < len(contents) and contents[i] == key)
        elif op == SCAN:
            i = bisect.bisect_left(contents, key)
            results.append(contents[i : i + extra])
        elif op == INSERT:
            i = bisect.bisect_left(contents, key)
            if i < len(contents) and contents[i] == key:
                results.append(False)
            else:
                contents.insert(i, key)
                results.append(True)
        elif op == DELETE:
            i = bisect.bisect_left(contents, key)
            if i < len(contents) and contents[i] == key:
                del contents[i]
                results.append(True)
            else:
                results.append(False)
        else:  # pragma: no cover - generate_ops never emits others
            raise ConfigError(f"unknown op {op!r}")
    return results, contents
