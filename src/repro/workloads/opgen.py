"""Deterministic operation-stream generation for the irregular workloads.

Section IV evaluates the irregular data structures by interleaving
lookups, inserts and deletes in fixed ratios on pre-populated structures,
with equal numbers of inserts and deletes so the memory footprint stays
stable.  The paper's two mixes:

- **read-intensive (4R-1W)**: 4 reads per write,
- **write-intensive (1R-1W)**: 1 read per write.

Figure 8 uses a 3:1 scan:insert mix instead.  Streams are produced with a
seeded NumPy generator, so every variant of a workload (unversioned,
versioned sequential, versioned parallel) replays the identical sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

#: Operation names used across workloads.
LOOKUP = "lookup"
INSERT = "insert"
DELETE = "delete"
SCAN = "scan"


@dataclass(frozen=True)
class OpMix:
    """Relative weights of read and write operations."""

    reads: int
    writes: int
    name: str

    def read_fraction(self) -> float:
        return self.reads / (self.reads + self.writes)


#: The paper's mixes (Figure 6 caption).
READ_INTENSIVE = OpMix(reads=4, writes=1, name="4R-1W")
WRITE_INTENSIVE = OpMix(reads=1, writes=1, name="1R-1W")


def initial_keys(n: int, key_space: int, seed: int) -> list[int]:
    """``n`` distinct keys drawn from ``[0, key_space)``."""
    if n > key_space:
        raise ConfigError("initial population larger than key space")
    rng = np.random.default_rng(seed)
    return [int(k) for k in rng.choice(key_space, size=n, replace=False)]


def generate_ops(
    n_ops: int,
    mix: OpMix,
    key_space: int,
    seed: int,
    *,
    read_op: str = LOOKUP,
    scan_range: int = 1,
) -> list[tuple[str, int, int]]:
    """Generate ``(op, key, extra)`` triples.

    Reads become ``read_op`` (``lookup`` or ``scan``; scans carry
    ``scan_range`` in the extra slot).  Writes alternate insert/delete so
    their counts stay equal and the structure size stays roughly stable
    (Section IV-D: "the number of insertions and deletions was set to be
    equal").
    """
    if n_ops <= 0:
        raise ConfigError("need at least one operation")
    if read_op not in (LOOKUP, SCAN):
        raise ConfigError(f"unknown read op {read_op!r}")
    rng = np.random.default_rng(seed + 1)
    keys = rng.integers(0, key_space, size=n_ops)
    is_read = rng.random(n_ops) < mix.read_fraction()
    ops: list[tuple[str, int, int]] = []
    write_toggle = False
    for i in range(n_ops):
        key = int(keys[i])
        if is_read[i]:
            ops.append((read_op, key, scan_range if read_op == SCAN else 0))
        else:
            ops.append((INSERT if not write_toggle else DELETE, key, 0))
            write_toggle = not write_toggle
    return ops


def reference_results(
    initial: list[int], ops: list[tuple[str, int, int]]
) -> tuple[list, list[int]]:
    """Sequential oracle: apply ``ops`` to a sorted-set model.

    Returns ``(per_op_results, final_contents_sorted)``.  Lookups yield
    bools, inserts/deletes yield success bools, scans yield the list of
    the first ``extra`` keys >= key.
    """
    import bisect

    contents = sorted(set(initial))
    results: list = []
    for op, key, extra in ops:
        if op == LOOKUP:
            i = bisect.bisect_left(contents, key)
            results.append(i < len(contents) and contents[i] == key)
        elif op == SCAN:
            i = bisect.bisect_left(contents, key)
            results.append(contents[i : i + extra])
        elif op == INSERT:
            i = bisect.bisect_left(contents, key)
            if i < len(contents) and contents[i] == key:
                results.append(False)
            else:
                contents.insert(i, key)
                results.append(True)
        elif op == DELETE:
            i = bisect.bisect_left(contents, key)
            if i < len(contents) and contents[i] == key:
                del contents[i]
                results.append(True)
            else:
                results.append(False)
        else:  # pragma: no cover - generate_ops never emits others
            raise ConfigError(f"unknown op {op!r}")
    return results, contents
