"""Chained hash table (Section IV-D).

The table root orders every operation — the paper observes this is the
bottleneck for write-intensive hash tables ("up to 85% of versioned root
loads are stalled") precisely because chains are short and diverge fast,
so entry ordering dominates.  Readers pass the baton without locking,
which is why read-heavy mixes stall far less.

Layout: ``buckets`` O-structure words at ``bucket_base + 4*b`` hold chain
heads; chain nodes use the linked-list pool layout (key conventional,
next pointer versioned).  Chains are kept sorted by key.
"""

from __future__ import annotations

from typing import Generator

from ..config import MachineConfig
from ..errors import ConfigError
from ..ostruct import isa
from ..runtime.task import Task
from ..sim.machine import Machine
from .base import (
    ENTER_LOAD,
    FIRST_TASK_ID,
    HOP_COMPUTE,
    WorkloadRun,
    plan_entries,
    run_variant,
)
from .linked_list import ALLOC_COMPUTE
from .opgen import DELETE, INSERT, LOOKUP, compute_op, load_op, store_op

#: Cycles charged for computing the hash of a key.
HASH_COMPUTE = 8


class VersionedHashTable:
    def __init__(
        self,
        machine: Machine,
        initial_keys: list[int],
        capacity: int,
        num_buckets: int,
        ticket_init_version: int = FIRST_TASK_ID,
    ):
        if num_buckets <= 0:
            raise ConfigError("need at least one bucket")
        self.m = machine
        heap = machine.heap
        self.capacity = capacity
        self.num_buckets = num_buckets
        self.key_base = heap.alloc(16 * capacity, align=64)
        self.next_base = heap.alloc_versioned(capacity)
        self.bucket_base = heap.alloc_versioned(num_buckets)
        self.ticket_addr = heap.alloc_versioned(1)
        machine.manager.register_root(self.ticket_addr)
        self.n_nodes = 1

        mgr = machine.manager
        chains: dict[int, list[int]] = {}
        for key in sorted(set(initial_keys)):
            chains.setdefault(key % num_buckets, []).append(key)
        for b in range(num_buckets):
            prev_vaddr = self.bucket_vaddr(b)
            for key in chains.get(b, ()):  # ascending within each chain
                nid = self._alloc_node_functional(key)
                mgr.store_version(0, prev_vaddr, 0, nid)
                prev_vaddr = self.next_vaddr(nid)
            mgr.store_version(0, prev_vaddr, 0, 0)
        mgr.store_version(0, self.ticket_addr, ticket_init_version, 0)

    # -- layout ----------------------------------------------------------------

    def key_addr(self, nid: int) -> int:
        return self.key_base + 16 * nid

    def next_vaddr(self, nid: int) -> int:
        return self.next_base + 4 * nid

    def bucket_vaddr(self, b: int) -> int:
        return self.bucket_base + 4 * b

    def _alloc_node_functional(self, key: int) -> int:
        nid = self.n_nodes
        if nid >= self.capacity:
            raise ConfigError("node pool exhausted")
        self.n_nodes += 1
        self.m.mem[self.key_addr(nid)] = key
        return nid

    # -- task bodies ----------------------------------------------------------------

    def lookup_task(self, tid: int, key: int, entry: tuple) -> Generator:
        if entry[0] == ENTER_LOAD:
            yield isa.load_version(self.ticket_addr, entry[1])
        yield compute_op(HASH_COMPUTE)
        _, cur = yield isa.load_latest(self.bucket_vaddr(key % self.num_buckets), tid)
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k >= key:
                return k == key
            _, cur = yield isa.load_latest(self.next_vaddr(cur), tid)
        return False

    def insert_task(self, tid: int, key: int, rename_to: int) -> Generator:
        prev_vaddr, prev_ver, cur = yield from self._enter_and_seek(tid, key, rename_to)
        k = None
        if cur:
            k = yield load_op(self.key_addr(cur))
        if cur and k == key:
            yield isa.unlock_version(prev_vaddr, prev_ver)
            return False
        yield compute_op(ALLOC_COMPUTE)
        nid = self._alloc_node_functional(key)
        yield store_op(self.key_addr(nid), key)
        yield isa.store_version(self.next_vaddr(nid), tid, cur)
        yield isa.store_version(prev_vaddr, tid, nid)
        yield isa.unlock_version(prev_vaddr, prev_ver)
        return True

    def delete_task(self, tid: int, key: int, rename_to: int) -> Generator:
        prev_vaddr, prev_ver, cur = yield from self._enter_and_seek(tid, key, rename_to)
        k = None
        if cur:
            k = yield load_op(self.key_addr(cur))
        if not cur or k != key:
            yield isa.unlock_version(prev_vaddr, prev_ver)
            return False
        nv, nxt = yield isa.lock_load_latest(self.next_vaddr(cur), tid)
        yield isa.store_version(prev_vaddr, tid, nxt)
        yield isa.unlock_version(self.next_vaddr(cur), nv)
        yield isa.unlock_version(prev_vaddr, prev_ver)
        return True

    def _enter_and_seek(self, tid: int, key: int, rename_to: int) -> Generator:
        yield isa.lock_load_version(self.ticket_addr, tid)
        yield compute_op(HASH_COMPUTE)
        bucket = self.bucket_vaddr(key % self.num_buckets)
        hv, cur = yield isa.lock_load_latest(bucket, tid)
        yield isa.unlock_version(self.ticket_addr, tid, rename_to)
        prev_vaddr, prev_ver = bucket, hv
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k >= key:
                break
            nv, nxt = yield isa.lock_load_latest(self.next_vaddr(cur), tid)
            yield isa.unlock_version(prev_vaddr, prev_ver)
            prev_vaddr, prev_ver = self.next_vaddr(cur), nv
            cur = nxt
        return prev_vaddr, prev_ver, cur

    # -- inspection -------------------------------------------------------------

    def snapshot(self, cap: int = 1 << 31) -> list[int]:
        mgr = self.m.manager
        out: list[int] = []

        def latest(vaddr: int) -> int:
            lst = mgr.lists.get(vaddr)
            if lst is None or lst.head is None:
                return 0
            block, _ = lst.find_latest(cap)
            return block.value if block else 0

        for b in range(self.num_buckets):
            cur = latest(self.bucket_vaddr(b))
            while cur:
                out.append(self.m.mem[self.key_addr(cur)])
                cur = latest(self.next_vaddr(cur))
        return sorted(out)


class UnversionedHashTable:
    """Conventional chained table: node key at +0, next at +8."""

    def __init__(
        self,
        machine: Machine,
        initial_keys: list[int],
        capacity: int,
        num_buckets: int,
    ):
        self.m = machine
        self.capacity = capacity
        self.num_buckets = num_buckets
        self.base = machine.heap.alloc(16 * capacity, align=64)
        self.bucket_base = machine.heap.alloc(8 * num_buckets, align=64)
        self.n_nodes = 1
        mem = machine.mem
        chains: dict[int, list[int]] = {}
        for key in sorted(set(initial_keys)):
            chains.setdefault(key % num_buckets, []).append(key)
        for b in range(num_buckets):
            prev = self.bucket_addr(b)
            for key in chains.get(b, ()):
                nid = self.n_nodes
                self.n_nodes += 1
                mem[self.key_addr(nid)] = key
                mem[prev] = nid
                prev = self.next_addr(nid)
            mem[prev] = 0

    def key_addr(self, nid: int) -> int:
        return self.base + 16 * nid

    def next_addr(self, nid: int) -> int:
        return self.base + 16 * nid + 8

    def bucket_addr(self, b: int) -> int:
        return self.bucket_base + 8 * b

    def program(self, ops: list[tuple[str, int, int]]) -> Generator:
        results = []
        for op, key, _ in ops:
            yield compute_op(HASH_COMPUTE)
            prev_addr = self.bucket_addr(key % self.num_buckets)
            cur = yield load_op(prev_addr)
            k = None
            while cur:
                yield compute_op(HOP_COMPUTE)
                k = yield load_op(self.key_addr(cur))
                if k >= key:
                    break
                prev_addr = self.next_addr(cur)
                cur = yield load_op(prev_addr)
            found = bool(cur) and k == key
            if op == LOOKUP:
                results.append(found)
            elif op == INSERT:
                if found:
                    results.append(False)
                else:
                    yield compute_op(ALLOC_COMPUTE)
                    nid = self.n_nodes
                    self.n_nodes += 1
                    yield store_op(self.key_addr(nid), key)
                    yield store_op(self.next_addr(nid), cur)
                    yield store_op(prev_addr, nid)
                    results.append(True)
            elif op == DELETE:
                if not found:
                    results.append(False)
                else:
                    nxt = yield load_op(self.next_addr(cur))
                    yield store_op(prev_addr, nxt)
                    results.append(True)
            else:
                raise ConfigError(f"hash table does not support {op!r}")
        return results

    def snapshot(self) -> list[int]:
        mem = self.m.mem
        out = []
        for b in range(self.num_buckets):
            cur = mem.get(self.bucket_addr(b), 0)
            while cur:
                out.append(mem[self.key_addr(cur)])
                cur = mem.get(self.next_addr(cur), 0)
        return sorted(out)


# -- variant runners ------------------------------------------------------------------


def _capacity(initial: list[int], ops: list[tuple[str, int, int]]) -> int:
    return len(initial) + sum(1 for o in ops if o[0] == INSERT) + 2


def _buckets_for(initial: list[int]) -> int:
    """Target load factor ~4 (chains a few nodes long, like the paper's)."""
    return max(4, len(initial) // 4)


def run_unversioned(
    config: MachineConfig, initial: list[int], ops: list[tuple[str, int, int]]
) -> WorkloadRun:
    def setup(machine):
        return UnversionedHashTable(
            machine, initial, _capacity(initial, ops), _buckets_for(initial)
        )

    def make_tasks(machine, table):
        def body(tid):
            return (yield from table.program(ops))

        return [Task(0, body, label="hash-seq")]

    cfg = config.with_cores(1)
    run = run_variant(
        "hash_table", "unversioned", cfg, setup, make_tasks, lambda m, t: t.snapshot()
    )
    run.results = run.results[0]
    return run


def run_versioned(
    config: MachineConfig,
    initial: list[int],
    ops: list[tuple[str, int, int]],
    num_cores: int,
) -> WorkloadRun:
    init_version, plans = plan_entries(ops)

    def setup(machine):
        return VersionedHashTable(
            machine, initial, _capacity(initial, ops), _buckets_for(initial),
            ticket_init_version=init_version,
        )

    def make_tasks(machine, table):
        tasks = []
        for i, (op, key, _) in enumerate(ops):
            tid = FIRST_TASK_ID + i
            plan = plans[i]
            if op == LOOKUP:
                tasks.append(Task(tid, table.lookup_task, key, plan, label="hash-lookup"))
            elif op == INSERT:
                tasks.append(Task(tid, table.insert_task, key, plan[2], label="hash-insert"))
            else:
                tasks.append(Task(tid, table.delete_task, key, plan[2], label="hash-delete"))
        return tasks

    cfg = config.with_cores(num_cores)
    variant = "versioned-seq" if num_cores == 1 else f"versioned-{num_cores}c"
    return run_variant(
        "hash_table", variant, cfg, setup, make_tasks, lambda m, t: t.snapshot()
    )
