"""Red-black tree (Section IV-D's hardest case).

The paper: "The red-black tree benchmark is an attempt to handle balanced
data structures, which are harder to parallelize due to the rebalancing
procedure.  Our implementation allows a single writer, and readers might
see a slightly unbalanced tree.  This severely limits parallelism,
forcing the root to heavily throttle traversals."

Reproduced design:

- **Single writer**: a mutating task holds the entry ticket for its whole
  operation and renames it (``UNLOCK-VERSION(ticket, t, t+1)``) only after
  committing, so writers fully serialize and no reader admitted after
  writer ``t`` can start until ``t`` is done — the root-throttling the
  paper measures.
- **Write overlay**: rebalancing may touch the same pointer twice (e.g.
  two rotations around one node), but a version is immutable once created.
  The writer therefore buffers pointer writes in an overlay and commits
  each touched pointer once, as version ``t``, at the end.  Readers never
  see partial rebalances: concurrent readers (admitted before ``t``) read
  versions ``< t``, and later readers wait at the ticket.
- **Writer-private metadata**: node colors and parent pointers are only
  ever used by the (single) writer, so they live in writer-private state
  charged as ALU work, not versioned memory.  Keys are immutable — CLRS
  deletion *transplants* nodes instead of copying keys, which is what
  keeps concurrent snapshots consistent.
- Readers are identical to the binary-tree readers: baton at the ticket,
  snapshot LOAD-LATEST traversal.

The CLRS insert/delete/fixup logic is written once against a memory
adapter; the unversioned sequential variant reuses it with conventional
loads and stores.
"""

from __future__ import annotations

from typing import Generator

from ..config import MachineConfig
from ..errors import ConfigError
from ..ostruct import isa
from ..runtime.task import Task
from ..sim.machine import Machine
from .base import (
    ENTER_LOAD,
    FIRST_TASK_ID,
    HOP_COMPUTE,
    WorkloadRun,
    plan_entries,
    run_variant,
)
from .linked_list import ALLOC_COMPUTE
from .opgen import DELETE, INSERT, LOOKUP, compute_op, load_op, store_op

RED = True
BLACK = False

#: ALU cycles for a writer-private color/parent update.
META_COMPUTE = 2


class _RBEngine:
    """CLRS red-black algorithms over an abstract pointer memory.

    Subclasses provide ``_read(field)``, ``_write(field, value)`` and
    ``_alloc(key)`` as generators; fields are ``(nid, 'l'|'r')`` pairs or
    the string ``'root'``.  Colors and parents are Python-side state.
    """

    def __init__(self) -> None:
        self.color: dict[int, bool] = {0: BLACK}
        self.parent: dict[int, int] = {0: 0}

    # -- memory interface (overridden) ------------------------------------

    def _read(self, field) -> Generator:
        raise NotImplementedError

    def _write(self, field, value: int) -> Generator:
        raise NotImplementedError

    def _alloc(self, key: int) -> Generator:
        raise NotImplementedError

    def _key(self, nid: int) -> Generator:
        raise NotImplementedError

    # -- helpers --------------------------------------------------------------

    def _child_field(self, nid: int, go_right: bool):
        return (nid, "r" if go_right else "l")

    def _replace_child(self, parent: int, old: int, new: int) -> Generator:
        if parent == 0:
            yield from self._write("root", new)
        else:
            left = yield from self._read((parent, "l"))
            yield from self._write((parent, "l" if left == old else "r"), new)

    def _rotate(self, x: int, to_left: bool) -> Generator:
        """Rotate around ``x``; ``to_left`` picks the direction."""
        a, b = ("r", "l") if to_left else ("l", "r")
        y = yield from self._read((x, a))
        beta = yield from self._read((y, b))
        yield from self._write((x, a), beta)
        yield compute_op(META_COMPUTE)
        if beta:
            self.parent[beta] = x
        yield from self._replace_child(self.parent[x], x, y)
        self.parent[y] = self.parent[x]
        yield from self._write((y, b), x)
        self.parent[x] = y

    # -- insert ------------------------------------------------------------------

    def insert(self, key: int) -> Generator:
        """Returns True if inserted, False if the key already existed."""
        parent = 0
        cur = yield from self._read("root")
        go_right = False
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield from self._key(cur)
            if k == key:
                return False
            parent = cur
            go_right = key > k
            cur = yield from self._read(self._child_field(cur, go_right))
        z = yield from self._alloc(key)
        self.color[z] = RED
        self.parent[z] = parent
        if parent == 0:
            yield from self._write("root", z)
        else:
            yield from self._write(self._child_field(parent, go_right), z)
        yield from self._insert_fixup(z)
        return True

    def _insert_fixup(self, z: int) -> Generator:
        while self.color[self.parent[z]] is RED:
            yield compute_op(META_COMPUTE)
            p = self.parent[z]
            g = self.parent[p]
            p_is_left = (yield from self._read((g, "l"))) == p
            uncle = yield from self._read((g, "r" if p_is_left else "l"))
            if self.color[uncle] is RED:
                self.color[p] = BLACK
                self.color[uncle] = BLACK
                self.color[g] = RED
                z = g
            else:
                z_is_inner = ((yield from self._read((p, "r" if p_is_left else "l"))) == z)
                if z_is_inner:
                    z = p
                    yield from self._rotate(z, to_left=p_is_left)
                    p = self.parent[z]
                    g = self.parent[p]
                self.color[p] = BLACK
                self.color[g] = RED
                yield from self._rotate(g, to_left=not p_is_left)
        root = yield from self._read("root")
        self.color[root] = BLACK

    # -- delete -------------------------------------------------------------------

    def delete(self, key: int) -> Generator:
        """Returns True if the key was found and removed."""
        z = yield from self._read("root")
        while z:
            yield compute_op(HOP_COMPUTE)
            k = yield from self._key(z)
            if k == key:
                break
            z = yield from self._read(self._child_field(z, key > k))
        if not z:
            return False

        y = z
        y_was_black = self.color[y] is BLACK
        zl = yield from self._read((z, "l"))
        zr = yield from self._read((z, "r"))
        if zl == 0:
            x = zr
            yield from self._transplant(z, zr)
        elif zr == 0:
            x = zl
            yield from self._transplant(z, zl)
        else:
            # Successor: minimum of the right subtree.
            y = zr
            while True:
                nxt = yield from self._read((y, "l"))
                yield compute_op(HOP_COMPUTE)
                if nxt == 0:
                    break
                y = nxt
            y_was_black = self.color[y] is BLACK
            x = yield from self._read((y, "r"))
            if self.parent[y] == z:
                self.parent[x] = y
            else:
                yield from self._transplant(y, x)
                yield from self._write((y, "r"), zr)
                self.parent[zr] = y
            yield from self._transplant(z, y)
            yield from self._write((y, "l"), zl)
            self.parent[zl] = y
            self.color[y] = self.color[z]
        if y_was_black:
            yield from self._delete_fixup(x)
        return True

    def _transplant(self, u: int, v: int) -> Generator:
        yield from self._replace_child(self.parent[u], u, v)
        self.parent[v] = self.parent[u]

    def _delete_fixup(self, x: int) -> Generator:
        root = yield from self._read("root")
        while x != root and self.color[x] is BLACK:
            yield compute_op(META_COMPUTE)
            p = self.parent[x]
            x_is_left = (yield from self._read((p, "l"))) == x
            a = "r" if x_is_left else "l"  # sibling side
            w = yield from self._read((p, a))
            if self.color[w] is RED:
                self.color[w] = BLACK
                self.color[p] = RED
                yield from self._rotate(p, to_left=x_is_left)
                w = yield from self._read((p, a))
            w_near = yield from self._read((w, "l" if x_is_left else "r"))
            w_far = yield from self._read((w, a))
            if self.color[w_near] is BLACK and self.color[w_far] is BLACK:
                self.color[w] = RED
                x = p
            else:
                if self.color[w_far] is BLACK:
                    self.color[w_near] = BLACK
                    self.color[w] = RED
                    yield from self._rotate(w, to_left=not x_is_left)
                    w = yield from self._read((p, a))
                    w_far = yield from self._read((w, a))
                self.color[w] = self.color[p]
                self.color[p] = BLACK
                self.color[w_far] = BLACK
                yield from self._rotate(p, to_left=x_is_left)
                x = yield from self._read("root")
                root = x
        self.color[x] = BLACK

    # -- invariant checking (tests) --------------------------------------------

    def check_rb_invariants(self, root: int, left_of, right_of) -> int:
        """Verify red-black properties; returns the black height."""

        def walk(nid: int) -> int:
            if nid == 0:
                return 1
            l, r = left_of(nid), right_of(nid)
            if self.color[nid] is RED:
                if self.color.get(l, BLACK) is RED or self.color.get(r, BLACK) is RED:
                    raise AssertionError(f"red node {nid} has a red child")
            lh = walk(l)
            rh = walk(r)
            if lh != rh:
                raise AssertionError(f"black-height mismatch at {nid}")
            return lh + (1 if self.color[nid] is BLACK else 0)

        if root and self.color[root] is not BLACK:
            raise AssertionError("root is not black")
        return walk(root)


class VersionedRBTree(_RBEngine):
    """Versioned RB tree: overlay-buffered writer + snapshot readers."""

    def __init__(
        self,
        machine: Machine,
        initial_keys: list[int],
        capacity: int,
        ticket_init_version: int = FIRST_TASK_ID,
    ):
        super().__init__()
        self.m = machine
        heap = machine.heap
        self.capacity = capacity
        self.key_base = heap.alloc(16 * capacity, align=64)
        self.child_base = heap.alloc_versioned(2 * capacity)
        self.root_addr = heap.alloc_versioned(1)
        self.ticket_addr = heap.alloc_versioned(1)
        machine.manager.register_root(self.ticket_addr)
        self.n_nodes = 1
        # Writer-task context (valid only between _begin_write/_commit).
        self._overlay: dict[int, int] | None = None
        self._tid = 0

        # Pre-populate functionally: build a balanced tree, color it so RB
        # invariants hold (all-black perfect levels; deepest level red).
        mgr = machine.manager
        keys = sorted(set(initial_keys))
        import math

        depth_limit = int(math.log2(len(keys) + 1)) if keys else 0

        def build(lo: int, hi: int, depth: int, parent: int) -> int:
            if lo >= hi:
                return 0
            mid = (lo + hi) // 2
            nid = self._alloc_node_functional(keys[mid])
            self.color[nid] = RED if depth >= depth_limit else BLACK
            self.parent[nid] = parent
            mgr.store_version(0, self.left_vaddr(nid), 0, build(lo, mid, depth + 1, nid))
            mgr.store_version(0, self.right_vaddr(nid), 0, build(mid + 1, hi, depth + 1, nid))
            return nid

        root = build(0, len(keys), 0, 0)
        if root:
            self.color[root] = BLACK
        mgr.store_version(0, self.root_addr, 0, root)
        mgr.store_version(0, self.ticket_addr, ticket_init_version, 0)

    # -- layout ------------------------------------------------------------

    def key_addr(self, nid: int) -> int:
        return self.key_base + 16 * nid

    def left_vaddr(self, nid: int) -> int:
        return self.child_base + 8 * nid

    def right_vaddr(self, nid: int) -> int:
        return self.child_base + 8 * nid + 4

    def _field_vaddr(self, field) -> int:
        if field == "root":
            return self.root_addr
        nid, side = field
        return self.left_vaddr(nid) if side == "l" else self.right_vaddr(nid)

    def _alloc_node_functional(self, key: int) -> int:
        nid = self.n_nodes
        if nid >= self.capacity:
            raise ConfigError("node pool exhausted")
        self.n_nodes += 1
        self.m.mem[self.key_addr(nid)] = key
        return nid

    # -- adapter (writer) -----------------------------------------------------

    def _read(self, field) -> Generator:
        vaddr = self._field_vaddr(field)
        if self._overlay is not None and vaddr in self._overlay:
            yield compute_op(META_COMPUTE)  # store-buffer forwarding
            return self._overlay[vaddr]
        _, value = yield isa.load_latest(vaddr, self._tid)
        return value

    def _write(self, field, value: int) -> Generator:
        assert self._overlay is not None, "writes only inside a writer task"
        yield compute_op(META_COMPUTE)
        self._overlay[self._field_vaddr(field)] = value

    def _alloc(self, key: int) -> Generator:
        yield compute_op(ALLOC_COMPUTE)
        nid = self._alloc_node_functional(key)
        yield store_op(self.key_addr(nid), key)
        # Fresh children start null; commit writes them as version tid.
        self._overlay[self.left_vaddr(nid)] = 0
        self._overlay[self.right_vaddr(nid)] = 0
        return nid

    def _key(self, nid: int) -> Generator:
        k = yield load_op(self.key_addr(nid))
        return k

    # -- writer tasks -------------------------------------------------------------

    def _writer_task(self, tid: int, key: int, is_insert: bool, rename_to: int) -> Generator:
        yield isa.lock_load_version(self.ticket_addr, tid)
        self._overlay = {}
        self._tid = tid
        try:
            if is_insert:
                result = yield from self.insert(key)
            else:
                result = yield from self.delete(key)
            for vaddr, value in self._overlay.items():
                yield isa.store_version(vaddr, tid, value)
        finally:
            self._overlay = None
        yield isa.unlock_version(self.ticket_addr, tid, rename_to)
        return result

    def insert_task(self, tid: int, key: int, rename_to: int) -> Generator:
        return self._writer_task(tid, key, is_insert=True, rename_to=rename_to)

    def delete_task(self, tid: int, key: int, rename_to: int) -> Generator:
        return self._writer_task(tid, key, is_insert=False, rename_to=rename_to)

    # -- reader task ------------------------------------------------------------

    def lookup_task(self, tid: int, key: int, entry: tuple) -> Generator:
        if entry[0] == ENTER_LOAD:
            yield isa.load_version(self.ticket_addr, entry[1])
        _, cur = yield isa.load_latest(self.root_addr, tid)
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k == key:
                return True
            vaddr = self.right_vaddr(cur) if key > k else self.left_vaddr(cur)
            _, cur = yield isa.load_latest(vaddr, tid)
        return False

    # -- inspection ----------------------------------------------------------------

    def _latest(self, vaddr: int, cap: int = 1 << 31) -> int:
        lst = self.m.manager.lists.get(vaddr)
        if lst is None or lst.head is None:
            return 0
        block, _ = lst.find_latest(cap)
        return block.value if block else 0

    def snapshot(self, cap: int = 1 << 31) -> list[int]:
        out: list[int] = []

        def walk(nid: int) -> None:
            if not nid:
                return
            walk(self._latest(self.left_vaddr(nid), cap))
            out.append(self.m.mem[self.key_addr(nid)])
            walk(self._latest(self.right_vaddr(nid), cap))

        walk(self._latest(self.root_addr, cap))
        return out

    def check_invariants(self) -> int:
        return self.check_rb_invariants(
            self._latest(self.root_addr),
            lambda n: self._latest(self.left_vaddr(n)),
            lambda n: self._latest(self.right_vaddr(n)),
        )


class UnversionedRBTree(_RBEngine):
    """Conventional-memory RB tree reusing the same CLRS engine."""

    def __init__(self, machine: Machine, initial_keys: list[int], capacity: int):
        super().__init__()
        self.m = machine
        self.capacity = capacity
        self.base = machine.heap.alloc(16 * capacity, align=64)
        self.root_addr = machine.heap.alloc(8, align=8)
        self.n_nodes = 1
        mem = machine.mem
        keys = sorted(set(initial_keys))
        import math

        depth_limit = int(math.log2(len(keys) + 1)) if keys else 0

        def build(lo: int, hi: int, depth: int, parent: int) -> int:
            if lo >= hi:
                return 0
            mid = (lo + hi) // 2
            nid = self.n_nodes
            self.n_nodes += 1
            mem[self.key_addr(nid)] = keys[mid]
            self.color[nid] = RED if depth >= depth_limit else BLACK
            self.parent[nid] = parent
            mem[self.left_addr(nid)] = build(lo, mid, depth + 1, nid)
            mem[self.right_addr(nid)] = build(mid + 1, hi, depth + 1, nid)
            return nid

        root = build(0, len(keys), 0, 0)
        if root:
            self.color[root] = BLACK
        mem[self.root_addr] = root

    def key_addr(self, nid: int) -> int:
        return self.base + 16 * nid

    def left_addr(self, nid: int) -> int:
        return self.base + 16 * nid + 8

    def right_addr(self, nid: int) -> int:
        return self.base + 16 * nid + 12

    def _field_addr(self, field) -> int:
        if field == "root":
            return self.root_addr
        nid, side = field
        return self.left_addr(nid) if side == "l" else self.right_addr(nid)

    def _read(self, field) -> Generator:
        value = yield load_op(self._field_addr(field))
        return value

    def _write(self, field, value: int) -> Generator:
        yield store_op(self._field_addr(field), value)

    def _alloc(self, key: int) -> Generator:
        yield compute_op(ALLOC_COMPUTE)
        nid = self.n_nodes
        if nid >= self.capacity:
            raise ConfigError("node pool exhausted")
        self.n_nodes += 1
        yield store_op(self.key_addr(nid), key)
        yield store_op(self.left_addr(nid), 0)
        yield store_op(self.right_addr(nid), 0)
        return nid

    def _key(self, nid: int) -> Generator:
        k = yield load_op(self.key_addr(nid))
        return k

    def lookup(self, key: int) -> Generator:
        cur = yield load_op(self.root_addr)
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k == key:
                return True
            cur = yield load_op(self.right_addr(cur) if key > k else self.left_addr(cur))
        return False

    def program(self, ops: list[tuple[str, int, int]]) -> Generator:
        results = []
        for op, key, _ in ops:
            if op == LOOKUP:
                results.append((yield from self.lookup(key)))
            elif op == INSERT:
                results.append((yield from self.insert(key)))
            elif op == DELETE:
                results.append((yield from self.delete(key)))
            else:
                raise ConfigError(f"red-black tree does not support {op!r}")
        return results

    def snapshot(self) -> list[int]:
        mem = self.m.mem
        out: list[int] = []

        def walk(nid: int) -> None:
            if not nid:
                return
            walk(mem.get(self.left_addr(nid), 0))
            out.append(mem[self.key_addr(nid)])
            walk(mem.get(self.right_addr(nid), 0))

        walk(mem.get(self.root_addr, 0))
        return out

    def check_invariants(self) -> int:
        mem = self.m.mem
        return self.check_rb_invariants(
            mem.get(self.root_addr, 0),
            lambda n: mem.get(self.left_addr(n), 0),
            lambda n: mem.get(self.right_addr(n), 0),
        )


# -- variant runners ------------------------------------------------------------------


def _capacity(initial: list[int], ops: list[tuple[str, int, int]]) -> int:
    return len(initial) + sum(1 for o in ops if o[0] == INSERT) + 2


def run_unversioned(
    config: MachineConfig, initial: list[int], ops: list[tuple[str, int, int]]
) -> WorkloadRun:
    def setup(machine):
        return UnversionedRBTree(machine, initial, _capacity(initial, ops))

    def make_tasks(machine, tree):
        def body(tid):
            return (yield from tree.program(ops))

        return [Task(0, body, label="rb-seq")]

    cfg = config.with_cores(1)
    run = run_variant(
        "rb_tree", "unversioned", cfg, setup, make_tasks, lambda m, t: t.snapshot()
    )
    run.results = run.results[0]
    return run


def run_versioned(
    config: MachineConfig,
    initial: list[int],
    ops: list[tuple[str, int, int]],
    num_cores: int,
) -> WorkloadRun:
    init_version, plans = plan_entries(ops)

    def setup(machine):
        return VersionedRBTree(
            machine, initial, _capacity(initial, ops),
            ticket_init_version=init_version,
        )

    def make_tasks(machine, tree):
        tasks = []
        for i, (op, key, _) in enumerate(ops):
            tid = FIRST_TASK_ID + i
            plan = plans[i]
            if op == LOOKUP:
                tasks.append(Task(tid, tree.lookup_task, key, plan, label="rb-lookup"))
            elif op == INSERT:
                tasks.append(Task(tid, tree.insert_task, key, plan[2], label="rb-insert"))
            elif op == DELETE:
                tasks.append(Task(tid, tree.delete_task, key, plan[2], label="rb-delete"))
            else:
                raise ConfigError(f"red-black tree does not support {op!r}")
        return tasks

    cfg = config.with_cores(num_cores)
    variant = "versioned-seq" if num_cores == 1 else f"versioned-{num_cores}c"
    return run_variant(
        "rb_tree", variant, cfg, setup, make_tasks, lambda m, t: t.snapshot()
    )
