"""Unversioned binary tree under a read-write lock (Figure 8 baseline).

The paper's comparison point for snapshot isolation: "an unversioned
binary tree using a read-write lock", where isolation comes from
*separating* reads and writes — readers share the lock, writers exclude
everyone.  Each operation is one task; tasks acquire the rwlock in the
required mode, run the conventional BST operation, and release.

Because writers are fully exclusive, in-place mutation (including the
successor-key copy on two-children deletes) is safe, which is exactly the
programming-effort equivalence the paper notes between rwlock use and
O-structure versioning.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import ConfigError
from ..ostruct import isa
from ..runtime.task import Task
from ..sim.machine import Machine
from .base import FIRST_TASK_ID, WorkloadRun, run_variant
from .binary_tree import UnversionedBinaryTree, _capacity
from .opgen import DELETE, INSERT, LOOKUP, SCAN

#: Which lock mode each operation needs.
_MODE = {LOOKUP: "r", SCAN: "r", INSERT: "w", DELETE: "w"}


def _make_task(tree: UnversionedBinaryTree, lock, op: str, key: int, extra: int):
    mode = _MODE.get(op)
    if mode is None:
        raise ConfigError(f"rwlock tree does not support {op!r}")

    def body(tid):
        yield isa.rw_acquire(lock, mode)
        if op == LOOKUP:
            result = yield from tree.lookup_op(key)
        elif op == SCAN:
            result = yield from tree.scan_op(key, extra)
        elif op == INSERT:
            result = yield from tree.insert_op(key)
        else:
            result = yield from tree.delete_op(key)
        yield isa.rw_release(lock, mode)
        return result

    return body


def run_rwlock(
    config: MachineConfig,
    initial: list[int],
    ops: list[tuple[str, int, int]],
    num_cores: int,
) -> WorkloadRun:
    """Task-per-operation run of the rwlock-protected unversioned tree.

    Note: with tasks statically assigned and the rwlock enforcing mutual
    exclusion, operations may *complete* in a different order than their
    task ids; the rwlock baseline therefore guarantees linearizability,
    not sequential-order equivalence.  (The versioned tree does guarantee
    sequential order — that is the point of the comparison.)
    """

    def setup(machine: Machine):
        tree = UnversionedBinaryTree(machine, initial, _capacity(initial, ops))
        lock = machine.new_rwlock("tree-rwlock")
        return (tree, lock)

    def make_tasks(machine, state):
        tree, lock = state
        return [
            Task(FIRST_TASK_ID + i, _make_task(tree, lock, op, key, extra),
                 label=f"rwlock-{op}")
            for i, (op, key, extra) in enumerate(ops)
        ]

    def finalize(machine, state):
        return state[0].snapshot()

    cfg = config.with_cores(num_cores)
    variant = "rwlock-seq" if num_cores == 1 else f"rwlock-{num_cores}c"
    return run_variant("rwlock_tree", variant, cfg, setup, make_tasks, finalize)
