"""The six evaluation workloads of Section IV.

Regular (versioning only, I-structure style):

- :mod:`repro.workloads.matmul` — chained dense matrix multiplication,
- :mod:`repro.workloads.levenshtein` — edit-distance dynamic program.

Irregular (versioning + renaming + locking, task-based execution):

- :mod:`repro.workloads.linked_list` — sorted singly linked list,
- :mod:`repro.workloads.binary_tree` — unbalanced binary search tree
  (also provides the range scans of Figure 8),
- :mod:`repro.workloads.hash_table` — chained hash table,
- :mod:`repro.workloads.rb_tree` — red-black tree (single writer).

Baselines:

- :mod:`repro.workloads.rwlock_tree` — unversioned BST under a read-write
  lock (Figure 8's comparison point).

Every workload offers three execution variants with identical operation
streams: ``sequential_unversioned`` (one conventional-memory program),
``sequential/parallel versioned`` (task-per-operation on 1..N cores), and
a pure-Python ``reference`` used to validate results.
"""

from . import (
    binary_tree,
    hash_table,
    levenshtein,
    linked_list,
    matmul,
    rb_tree,
    rwlock_tree,
)
from .base import WorkloadRun, plan_entries, run_variant, speedup
from .opgen import OpMix, generate_ops, READ_INTENSIVE, WRITE_INTENSIVE

__all__ = [
    "WorkloadRun",
    "run_variant",
    "speedup",
    "plan_entries",
    "OpMix",
    "generate_ops",
    "READ_INTENSIVE",
    "WRITE_INTENSIVE",
    "binary_tree",
    "hash_table",
    "levenshtein",
    "linked_list",
    "matmul",
    "rb_tree",
    "rwlock_tree",
]
