"""Shared workload machinery.

Every workload exposes variant runners that build a fresh machine, run the
identical operation stream, and return a :class:`WorkloadRun` carrying the
cycle count, the stats, and per-operation results for validation.

Conventions shared by the irregular structures:

- **node layout**: immutable fields (the key) live in conventional memory;
  mutable pointers are O-structure words from the versioned region.
- **ordered entry** ("root ordering", Section IV-D): a dedicated ticket
  O-structure orders tasks into the structure.  Mutating task ``t`` does
  ``LOCK-LOAD-VERSION(ticket, t)`` and, once past the root, renames with
  ``UNLOCK-VERSION(ticket, t, t+1)``.  Read-only task ``t`` does
  ``LOAD-VERSION(ticket, t)`` and immediately re-stores the baton as
  version ``t+1`` — readers never lock the root, which is why
  read-intensive mixes stall far less (the paper's hash-table analysis).
- **task ids are versions** (GC rule 1): task ``t`` writes version ``t``
  and reads with cap ``t``.  Task ids start at 1; structure initialisation
  writes version 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from ..config import MachineConfig
from ..errors import ConfigError
from ..runtime.scheduler import StaticScheduler
from ..runtime.task import Task
from ..sim.machine import Machine
from ..sim.stats import SimStats

#: First task id used by workload operations (version 0 = initial state).
FIRST_TASK_ID = 1

#: Cycles of ALU work charged per pointer hop (compare + branch + address
#: arithmetic; keeps loads ~25% of instructions as the paper observes).
HOP_COMPUTE = 6


@dataclass
class WorkloadRun:
    """Outcome of one workload variant execution."""

    name: str
    variant: str
    cycles: int
    stats: SimStats
    results: list = field(default_factory=list)
    final_state: Any = None
    #: :meth:`repro.obs.MetricsRegistry.snapshot` of the run, when the
    #: machine was built with ``config.metrics`` enabled; else ``None``.
    metrics: dict | None = None

    @property
    def seconds(self) -> float:
        return self.cycles / 2e9  # Table II: 2 GHz


def run_variant(
    name: str,
    variant: str,
    config: MachineConfig,
    setup: Callable[[Machine], Any],
    make_tasks: Callable[[Machine, Any], Iterable[Task]],
    finalize: Callable[[Machine, Any], Any] | None = None,
) -> WorkloadRun:
    """Build a machine, set up the structure, run the tasks, collect results."""
    machine = Machine(config)
    state = setup(machine)
    tasks = list(make_tasks(machine, state))
    if not tasks:
        raise ConfigError("workload produced no tasks")
    machine.submit(tasks, StaticScheduler("round_robin"))
    stats = machine.run()
    results = [t.result for t in tasks]
    final = finalize(machine, state) if finalize is not None else None
    return WorkloadRun(
        name=name,
        variant=variant,
        cycles=stats.cycles,
        stats=stats,
        results=results,
        final_state=final,
        metrics=machine.metrics.snapshot() if machine.metrics is not None else None,
    )


def speedup(baseline: WorkloadRun, other: WorkloadRun) -> float:
    """How much faster ``other`` is than ``baseline``."""
    if other.cycles == 0:
        raise ConfigError("zero-cycle run")
    return baseline.cycles / other.cycles


#: Operations that mutate structure state (need ordered, locked entry).
MUTATING_OPS = frozenset({"insert", "delete"})

#: Entry-plan tags.
ENTER_LOCK = "lock"
ENTER_LOAD = "load"
ENTER_SKIP = "skip"


def plan_entries(
    ops: Sequence[tuple[str, int, int]], first_tid: int = FIRST_TASK_ID
) -> tuple[int, list[tuple]]:
    """Static entry plan for ordered access through a ticket O-structure.

    The paper's root-ordering protocol (Section IV-D): mutating tasks
    enter with LOCK-LOAD-VERSION and, once past the root, rename the
    ticket; read-only tasks enter with LOAD-VERSION and never lock or
    store — "readers do not lock the root".  For that to work, the
    runtime (which generated the tasks from the sequential program and
    therefore knows which operations mutate) wires the version numbers:

    - the ticket is initialised to the *first mutator's* id;
    - mutator ``m`` exact-locks version ``m`` and renames it to the next
      mutator's id (or a final sentinel);
    - a reader waits for evidence that the last mutator *before* it has
      entered the structure — which is exactly the existence of the next
      mutator's ticket version — via an exact LOAD-VERSION;
    - a reader with no preceding mutator skips the ticket entirely (every
      earlier task is read-only, so there is nothing to order against).

    Returns ``(ticket_init_version, plans)`` where ``plans[i]`` is
    ``(ENTER_LOCK, tid, rename_to)`` for mutators, ``(ENTER_LOAD, ver)``
    for ordered readers, or ``(ENTER_SKIP,)``.
    """
    n = len(ops)
    sentinel = first_tid + n  # one past every task id
    mutator_ids = [
        first_tid + i for i, (op, _, _) in enumerate(ops) if op in MUTATING_OPS
    ]
    init_version = mutator_ids[0] if mutator_ids else sentinel

    plans: list[tuple] = []
    import bisect

    for i, (op, _, _) in enumerate(ops):
        tid = first_tid + i
        if op in MUTATING_OPS:
            j = bisect.bisect_right(mutator_ids, tid)
            rename_to = mutator_ids[j] if j < len(mutator_ids) else sentinel
            plans.append((ENTER_LOCK, tid, rename_to))
        else:
            j = bisect.bisect_left(mutator_ids, tid)
            if j == 0:
                plans.append((ENTER_SKIP,))
            else:
                nxt = mutator_ids[j] if j < len(mutator_ids) else sentinel
                plans.append((ENTER_LOAD, nxt))
    return init_version, plans
