"""Sorted singly linked list (Section IV-D's canonical irregular workload).

Three variants over one node pool layout:

- ``unversioned``: conventional pointers, one sequential program;
- ``versioned``: task-per-operation with the paper's protocol —
  ordered entry through a ticket O-structure, hand-over-hand
  LOCK-LOAD-LATEST traversal for mutators, snapshot LOAD-LATEST traversal
  for readers, pointer renaming via STORE-VERSION on mutation;
- the versioned variant runs on 1 core (self-baseline) or N cores.

Node pool: node ``i`` has its key at ``key_base + 16*i`` (conventional)
and its next pointer at ``next_base + 4*i`` (an O-structure word).  Node
id 0 is the null pointer.  Deleted nodes are not recycled during a run
(Section III-C's quiescence rule), which is also what preserves snapshot
isolation for concurrent readers mid-traversal.
"""

from __future__ import annotations

from typing import Generator

from ..config import MachineConfig
from ..errors import ConfigError
from ..ostruct import isa
from ..runtime.task import Task
from ..sim.machine import Machine
from .base import (
    ENTER_LOAD,
    FIRST_TASK_ID,
    HOP_COMPUTE,
    WorkloadRun,
    plan_entries,
    run_variant,
)
from .opgen import DELETE, INSERT, LOOKUP, compute_op, load_op, store_op

#: Cycles charged for a node allocation from the (software) pool.
ALLOC_COMPUTE = 20


class VersionedLinkedList:
    """The versioned list structure and its task bodies."""

    def __init__(
        self,
        machine: Machine,
        initial_keys: list[int],
        capacity: int,
        ticket_init_version: int = FIRST_TASK_ID,
    ):
        if capacity < len(initial_keys) + 1:
            raise ConfigError("capacity too small for initial population")
        self.m = machine
        heap = machine.heap
        self.capacity = capacity
        self.key_base = heap.alloc(16 * capacity, align=64)
        self.next_base = heap.alloc_versioned(capacity)
        self.head_addr = heap.alloc_versioned(1)
        self.ticket_addr = heap.alloc_versioned(1)
        machine.manager.register_root(self.ticket_addr)
        self.n_nodes = 1  # id 0 reserved as null

        # Pre-populate functionally (version 0 everywhere), sorted ascending.
        mgr = machine.manager
        prev_vaddr = self.head_addr
        for key in sorted(set(initial_keys)):
            nid = self._alloc_node_functional(key)
            mgr.store_version(0, prev_vaddr, 0, nid)
            prev_vaddr = self.next_vaddr(nid)
        mgr.store_version(0, prev_vaddr, 0, 0)
        # The ticket starts at the first mutator's entry version.
        mgr.store_version(0, self.ticket_addr, ticket_init_version, 0)

    # -- layout ----------------------------------------------------------------

    def key_addr(self, nid: int) -> int:
        return self.key_base + 16 * nid

    def next_vaddr(self, nid: int) -> int:
        return self.next_base + 4 * nid

    def _alloc_node_functional(self, key: int) -> int:
        nid = self.n_nodes
        if nid >= self.capacity:
            raise ConfigError("node pool exhausted")
        self.n_nodes += 1
        self.m.mem[self.key_addr(nid)] = key
        return nid

    # -- task bodies -------------------------------------------------------------

    def lookup_task(self, tid: int, key: int, entry: tuple) -> Generator:
        """Read-only: ordered entry (no lock), then a snapshot traversal."""
        yield from self._reader_enter(entry)
        _, cur = yield isa.load_latest(self.head_addr, tid)
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k >= key:
                return k == key
            _, cur = yield isa.load_latest(self.next_vaddr(cur), tid)
        return False

    def _reader_enter(self, entry: tuple) -> Generator:
        """Wait for the preceding mutator's entry evidence (Section IV-D).

        Readers never lock or store at the root — they exact-load the
        ticket version the last preceding mutator creates on entry, and
        tasks with no preceding mutator skip the ticket entirely.
        """
        if entry[0] == ENTER_LOAD:
            yield isa.load_version(self.ticket_addr, entry[1])

    def insert_task(self, tid: int, key: int, rename_to: int) -> Generator:
        prev_vaddr, prev_ver, cur = yield from self._enter_and_seek(tid, key, rename_to)
        k = None
        if cur:
            k = yield load_op(self.key_addr(cur))
        if cur and k == key:
            yield isa.unlock_version(prev_vaddr, prev_ver)
            return False
        yield compute_op(ALLOC_COMPUTE)
        nid = self._alloc_node_functional(key)
        yield store_op(self.key_addr(nid), key)
        yield isa.store_version(self.next_vaddr(nid), tid, cur)
        yield isa.store_version(prev_vaddr, tid, nid)  # rename: shadows old
        yield isa.unlock_version(prev_vaddr, prev_ver)
        return True

    def delete_task(self, tid: int, key: int, rename_to: int) -> Generator:
        prev_vaddr, prev_ver, cur = yield from self._enter_and_seek(tid, key, rename_to)
        k = None
        if cur:
            k = yield load_op(self.key_addr(cur))
        if not cur or k != key:
            yield isa.unlock_version(prev_vaddr, prev_ver)
            return False
        nv, nxt = yield isa.lock_load_latest(self.next_vaddr(cur), tid)
        yield isa.store_version(prev_vaddr, tid, nxt)  # splice out
        yield isa.unlock_version(self.next_vaddr(cur), nv)
        yield isa.unlock_version(prev_vaddr, prev_ver)
        return True

    def _enter_and_seek(self, tid: int, key: int, rename_to: int) -> Generator:
        """Ordered entry + hand-over-hand walk to the insertion point.

        Returns ``(locked_vaddr, locked_version, node_at_or_after_key)``;
        the returned pointer is still locked by this task.
        """
        yield isa.lock_load_version(self.ticket_addr, tid)
        hv, cur = yield isa.lock_load_latest(self.head_addr, tid)
        yield isa.unlock_version(self.ticket_addr, tid, rename_to)
        prev_vaddr, prev_ver = self.head_addr, hv
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k >= key:
                break
            nv, nxt = yield isa.lock_load_latest(self.next_vaddr(cur), tid)
            yield isa.unlock_version(prev_vaddr, prev_ver)
            prev_vaddr, prev_ver = self.next_vaddr(cur), nv
            cur = nxt
        return prev_vaddr, prev_ver, cur

    # -- inspection ------------------------------------------------------------------

    def snapshot(self, cap: int = 1 << 31) -> list[int]:
        """Functional walk of the latest-version chain (for validation)."""
        mgr = self.m.manager
        out = []
        lst = mgr.lists.get(self.head_addr)
        cur = lst.find_latest(cap)[0].value if lst and lst.head else 0
        while cur:
            out.append(self.m.mem[self.key_addr(cur)])
            nxt_list = mgr.lists.get(self.next_vaddr(cur))
            cur = nxt_list.find_latest(cap)[0].value if nxt_list else 0
        return out


class UnversionedLinkedList:
    """Conventional-pointer list: node ``i`` has key at +0, next at +8."""

    def __init__(self, machine: Machine, initial_keys: list[int], capacity: int):
        self.m = machine
        self.capacity = capacity
        self.base = machine.heap.alloc(16 * capacity, align=64)
        self.head_addr = machine.heap.alloc(8, align=8)
        self.n_nodes = 1
        mem = machine.mem
        prev_addr = self.head_addr
        for key in sorted(set(initial_keys)):
            nid = self.n_nodes
            self.n_nodes += 1
            mem[self.key_addr(nid)] = key
            mem[prev_addr] = nid
            prev_addr = self.next_addr(nid)
        mem[prev_addr] = 0

    def key_addr(self, nid: int) -> int:
        return self.base + 16 * nid

    def next_addr(self, nid: int) -> int:
        return self.base + 16 * nid + 8

    def program(self, ops: list[tuple[str, int, int]]) -> Generator:
        """One sequential program applying every operation."""
        results = []
        for op, key, _ in ops:
            prev_addr = self.head_addr
            cur = yield load_op(prev_addr)
            k = None
            while cur:
                yield compute_op(HOP_COMPUTE)
                k = yield load_op(self.key_addr(cur))
                if k >= key:
                    break
                prev_addr = self.next_addr(cur)
                cur = yield load_op(prev_addr)
            found = bool(cur) and k == key
            if op == LOOKUP:
                results.append(found)
            elif op == INSERT:
                if found:
                    results.append(False)
                else:
                    yield compute_op(ALLOC_COMPUTE)
                    nid = self.n_nodes
                    self.n_nodes += 1
                    yield store_op(self.key_addr(nid), key)
                    yield store_op(self.next_addr(nid), cur)
                    yield store_op(prev_addr, nid)
                    results.append(True)
            elif op == DELETE:
                if not found:
                    results.append(False)
                else:
                    nxt = yield load_op(self.next_addr(cur))
                    yield store_op(prev_addr, nxt)
                    results.append(True)
            else:
                raise ConfigError(f"linked list does not support {op!r}")
        return results

    def snapshot(self) -> list[int]:
        out = []
        cur = self.m.mem.get(self.head_addr, 0)
        while cur:
            out.append(self.m.mem[self.key_addr(cur)])
            cur = self.m.mem.get(self.next_addr(cur), 0)
        return out


# -- variant runners ------------------------------------------------------------------


def _capacity(initial: list[int], ops: list[tuple[str, int, int]]) -> int:
    return len(initial) + sum(1 for o in ops if o[0] == INSERT) + 2


def run_unversioned(
    config: MachineConfig, initial: list[int], ops: list[tuple[str, int, int]]
) -> WorkloadRun:
    """Sequential conventional-memory run (the Figure 6 baseline)."""

    def setup(machine):
        return UnversionedLinkedList(machine, initial, _capacity(initial, ops))

    def make_tasks(machine, lst):
        def body(tid):
            return (yield from lst.program(ops))

        return [Task(0, body, label="linkedlist-seq")]

    def finalize(machine, lst):
        return lst.snapshot()

    cfg = config.with_cores(1)
    run = run_variant("linked_list", "unversioned", cfg, setup, make_tasks, finalize)
    run.results = run.results[0]
    return run


def run_versioned(
    config: MachineConfig,
    initial: list[int],
    ops: list[tuple[str, int, int]],
    num_cores: int,
) -> WorkloadRun:
    """Task-per-operation versioned run on ``num_cores`` cores."""

    init_version, plans = plan_entries(ops)

    def setup(machine):
        return VersionedLinkedList(
            machine, initial, _capacity(initial, ops),
            ticket_init_version=init_version,
        )

    def make_tasks(machine, lst):
        tasks = []
        for i, (op, key, _) in enumerate(ops):
            tid = FIRST_TASK_ID + i
            plan = plans[i]
            if op == LOOKUP:
                tasks.append(Task(tid, lst.lookup_task, key, plan, label="ll-lookup"))
            elif op == INSERT:
                tasks.append(Task(tid, lst.insert_task, key, plan[2], label="ll-insert"))
            else:
                tasks.append(Task(tid, lst.delete_task, key, plan[2], label="ll-delete"))
        return tasks

    def finalize(machine, lst):
        return lst.snapshot()

    cfg = config.with_cores(num_cores)
    variant = "versioned-seq" if num_cores == 1 else f"versioned-{num_cores}c"
    return run_variant("linked_list", variant, cfg, setup, make_tasks, finalize)
