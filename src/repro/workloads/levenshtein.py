"""Levenshtein edit distance (Section IV-B).

The classic dynamic program: cell ``(i, j)`` depends on ``(i-1, j)``,
``(i, j-1)`` and ``(i-1, j-1)``.  Each cell is written once, so the DP
matrix is an array of I-structures: row tasks store their cells as
version 1 and LOAD-VERSION(1) on the previous row blocks until the
producer catches up — a wavefront pipeline across rows with no explicit
synchronisation.

Within a row the left neighbour is carried in a register (no memory op),
matching how the sequential code is "directly translated... augmented
with versioning to allow parallel execution".
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..config import MachineConfig
from ..ostruct import isa
from ..runtime.task import Task
from ..sim.machine import Machine
from .base import FIRST_TASK_ID, WorkloadRun, run_variant
from .opgen import compute_op, load_op, store_op

#: ALU cycles per DP cell (two compares, min of three, add).
CELL_COMPUTE = 6

_ALPHABET = 8


def make_strings(n: int, seed: int) -> tuple[list[int], list[int]]:
    rng = np.random.default_rng(seed)
    return (
        [int(x) for x in rng.integers(0, _ALPHABET, size=n)],
        [int(x) for x in rng.integers(0, _ALPHABET, size=n)],
    )


def reference(s1: list[int], s2: list[int]) -> int:
    """NumPy rolling-row oracle."""
    prev = np.arange(len(s2) + 1)
    for i, ch in enumerate(s1, start=1):
        cur = np.empty_like(prev)
        cur[0] = i
        for j in range(1, len(s2) + 1):
            cost = 0 if ch == s2[j - 1] else 1
            cur[j] = min(prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost)
        prev = cur
    return int(prev[-1])


class LevenshteinWorkload:
    """DP matrix layout and task bodies."""

    def __init__(self, machine: Machine, s1: list[int], s2: list[int], versioned: bool):
        self.m = machine
        self.s1, self.s2 = s1, s2
        self.rows = len(s1) + 1
        self.cols = len(s2) + 1
        self.versioned = versioned
        heap = machine.heap
        self.s1_base = heap.alloc(4 * len(s1), align=64)
        self.s2_base = heap.alloc(4 * len(s2), align=64)
        if versioned:
            self.dp_base = heap.alloc_versioned(self.rows * self.cols)
        else:
            self.dp_base = heap.alloc(4 * self.rows * self.cols, align=64)
        mem = machine.mem
        for i, ch in enumerate(s1):
            mem[self.s1_base + 4 * i] = ch
        for j, ch in enumerate(s2):
            mem[self.s2_base + 4 * j] = ch

    def dp_addr(self, i: int, j: int) -> int:
        return self.dp_base + 4 * (i * self.cols + j)

    # -- versioned row task -----------------------------------------------------

    def row_task(self, tid: int, i: int) -> Generator:
        """Compute DP row ``i``; row 0 is the base case."""
        cols = self.cols
        if i == 0:
            for j in range(cols):
                yield isa.store_version(self.dp_addr(0, j), 1, j)
            return None
        ch = yield load_op(self.s1_base + 4 * (i - 1))
        yield isa.store_version(self.dp_addr(i, 0), 1, i)
        left = i
        # The (i-1, j-1) value is carried across iterations: each step
        # loads only (i-1, j) and the s2 character.
        diag = yield isa.load_version(self.dp_addr(i - 1, 0), 1)
        for j in range(1, cols):
            up = yield isa.load_version(self.dp_addr(i - 1, j), 1)
            c2 = yield load_op(self.s2_base + 4 * (j - 1))
            yield compute_op(CELL_COMPUTE)
            cost = 0 if ch == c2 else 1
            val = min(up + 1, left + 1, diag + cost)
            yield isa.store_version(self.dp_addr(i, j), 1, val)
            diag = up
            left = val
        return left if i == self.rows - 1 else None

    # -- unversioned program -------------------------------------------------------

    def sequential_program(self, tid: int) -> Generator:
        cols = self.cols
        for j in range(cols):
            yield store_op(self.dp_addr(0, j), j)
        result = 0
        for i in range(1, self.rows):
            ch = yield load_op(self.s1_base + 4 * (i - 1))
            yield store_op(self.dp_addr(i, 0), i)
            left = i
            diag = yield load_op(self.dp_addr(i - 1, 0))
            for j in range(1, cols):
                up = yield load_op(self.dp_addr(i - 1, j))
                c2 = yield load_op(self.s2_base + 4 * (j - 1))
                yield compute_op(CELL_COMPUTE)
                cost = 0 if ch == c2 else 1
                val = min(up + 1, left + 1, diag + cost)
                yield store_op(self.dp_addr(i, j), val)
                diag = up
                left = val
            result = left
        return result


def run_unversioned(config: MachineConfig, n: int, seed: int = 13) -> WorkloadRun:
    s1, s2 = make_strings(n, seed)

    def setup(machine):
        return LevenshteinWorkload(machine, s1, s2, versioned=False)

    def make_tasks(machine, wl):
        return [Task(0, wl.sequential_program, label="lev-seq")]

    cfg = config.with_cores(1)
    run = run_variant("levenshtein", "unversioned", cfg, setup, make_tasks)
    run.final_state = run.results[0]
    return run


def run_versioned(
    config: MachineConfig, n: int, num_cores: int, seed: int = 13
) -> WorkloadRun:
    s1, s2 = make_strings(n, seed)

    def setup(machine):
        return LevenshteinWorkload(machine, s1, s2, versioned=True)

    def make_tasks(machine, wl):
        return [
            Task(FIRST_TASK_ID + i, wl.row_task, i, label=f"lev-row{i}")
            for i in range(wl.rows)
        ]

    cfg = config.with_cores(num_cores)
    variant = "versioned-seq" if num_cores == 1 else f"versioned-{num_cores}c"
    run = run_variant("levenshtein", variant, cfg, setup, make_tasks)
    run.final_state = run.results[-1]
    return run
