"""Unbalanced binary search tree (Sections IV-C and IV-D).

The versioned tree supports concurrent mutators and snapshot readers:

- mutators enter in task order through the ticket, then descend with
  hand-over-hand LOCK-LOAD-LATEST, renaming the parent pointer with
  STORE-VERSION at the mutation point;
- readers (lookups and the range scans of Figure 8) pass the entry baton
  without locking and traverse a consistent snapshot via LOAD-LATEST —
  renaming gives them snapshot isolation: a concurrent delete replaces
  nodes rather than mutating them, so an in-flight scan keeps seeing the
  version of the tree that existed when it entered.

Deletion of a node with two children builds a *replacement node* carrying
the successor's key (instead of overwriting the key in place, which would
tear concurrent snapshots): the successor is spliced out of the right
subtree under locks, and the parent pointer is renamed to the replacement.

Node pool layout: key at ``key_base + 16*i`` (conventional); left and
right child pointers at ``child_base + 8*i`` and ``child_base + 8*i + 4``
(O-structure words).  Node id 0 is null.
"""

from __future__ import annotations

from typing import Generator

from ..config import MachineConfig
from ..errors import ConfigError
from ..ostruct import isa
from ..runtime.task import Task
from ..sim.machine import Machine
from .base import (
    ENTER_LOAD,
    FIRST_TASK_ID,
    HOP_COMPUTE,
    WorkloadRun,
    plan_entries,
    run_variant,
)
from .linked_list import ALLOC_COMPUTE
from .opgen import DELETE, INSERT, LOOKUP, SCAN, compute_op, load_op, store_op


class VersionedBinaryTree:
    """Versioned BST structure and task bodies."""

    def __init__(
        self,
        machine: Machine,
        initial_keys: list[int],
        capacity: int,
        ticket_init_version: int = FIRST_TASK_ID,
    ):
        if capacity < 2 * len(initial_keys) + 1:
            raise ConfigError("capacity too small (deletes allocate replacements)")
        self.m = machine
        heap = machine.heap
        self.capacity = capacity
        self.key_base = heap.alloc(16 * capacity, align=64)
        self.child_base = heap.alloc_versioned(2 * capacity)
        self.root_addr = heap.alloc_versioned(1)
        self.ticket_addr = heap.alloc_versioned(1)
        machine.manager.register_root(self.ticket_addr)
        self.n_nodes = 1

        mgr = machine.manager
        # Pre-populate with a balanced shape (sorted keys, recursive median)
        # so initial depth is log2(n), as a warmed-up tree would be.
        keys = sorted(set(initial_keys))

        def build(lo: int, hi: int) -> int:
            if lo >= hi:
                return 0
            mid = (lo + hi) // 2
            nid = self._alloc_node_functional(keys[mid])
            mgr.store_version(0, self.left_vaddr(nid), 0, build(lo, mid))
            mgr.store_version(0, self.right_vaddr(nid), 0, build(mid + 1, hi))
            return nid

        mgr.store_version(0, self.root_addr, 0, build(0, len(keys)))
        mgr.store_version(0, self.ticket_addr, ticket_init_version, 0)

    # -- layout -------------------------------------------------------------

    def key_addr(self, nid: int) -> int:
        return self.key_base + 16 * nid

    def left_vaddr(self, nid: int) -> int:
        return self.child_base + 8 * nid

    def right_vaddr(self, nid: int) -> int:
        return self.child_base + 8 * nid + 4

    def _child_vaddr(self, nid: int, go_right: bool) -> int:
        return self.right_vaddr(nid) if go_right else self.left_vaddr(nid)

    def _alloc_node_functional(self, key: int) -> int:
        nid = self.n_nodes
        if nid >= self.capacity:
            raise ConfigError("node pool exhausted")
        self.n_nodes += 1
        self.m.mem[self.key_addr(nid)] = key
        return nid

    def _new_node(self, tid: int, key: int, left: int = 0, right: int = 0) -> Generator:
        """Simulated allocation + field initialisation of a fresh node.

        Children are written once with version ``tid`` (a version is
        immutable once created, so callers pass the final values).
        """
        yield compute_op(ALLOC_COMPUTE)
        nid = self._alloc_node_functional(key)
        yield store_op(self.key_addr(nid), key)
        yield isa.store_version(self.left_vaddr(nid), tid, left)
        yield isa.store_version(self.right_vaddr(nid), tid, right)
        return nid

    # -- read-only tasks ------------------------------------------------------

    def _reader_enter(self, entry: tuple) -> Generator:
        """Readers wait for the preceding mutator's entry evidence only."""
        if entry[0] == ENTER_LOAD:
            yield isa.load_version(self.ticket_addr, entry[1])

    def lookup_task(self, tid: int, key: int, entry: tuple) -> Generator:
        yield from self._reader_enter(entry)
        _, cur = yield isa.load_latest(self.root_addr, tid)
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k == key:
                return True
            _, cur = yield isa.load_latest(self._child_vaddr(cur, key > k), tid)
        return False

    def scan_task(self, tid: int, key: int, count: int, entry: tuple) -> Generator:
        """Collect the first ``count`` keys >= ``key``, in order (Figure 8).

        An explicit-stack in-order traversal pruned below ``key``; every
        pointer read is a snapshot LOAD-LATEST capped at this task's id,
        so the result is serializable against concurrent inserts.
        """
        yield from self._reader_enter(entry)
        out: list[int] = []
        stack: list[int] = []
        _, cur = yield isa.load_latest(self.root_addr, tid)
        while (cur or stack) and len(out) < count:
            while cur:
                yield compute_op(HOP_COMPUTE)
                k = yield load_op(self.key_addr(cur))
                if k >= key:
                    stack.append(cur)
                    _, cur = yield isa.load_latest(self.left_vaddr(cur), tid)
                else:
                    _, cur = yield isa.load_latest(self.right_vaddr(cur), tid)
            if not stack:
                break
            node = stack.pop()
            k = yield load_op(self.key_addr(node))
            out.append(k)
            _, cur = yield isa.load_latest(self.right_vaddr(node), tid)
        return out

    # -- mutating tasks -----------------------------------------------------------

    def insert_task(self, tid: int, key: int, rename_to: int) -> Generator:
        yield isa.lock_load_version(self.ticket_addr, tid)
        rv, cur = yield isa.lock_load_latest(self.root_addr, tid)
        yield isa.unlock_version(self.ticket_addr, tid, rename_to)
        prev_vaddr, prev_ver = self.root_addr, rv
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k == key:
                yield isa.unlock_version(prev_vaddr, prev_ver)
                return False
            child_vaddr = self._child_vaddr(cur, key > k)
            cv, child = yield isa.lock_load_latest(child_vaddr, tid)
            yield isa.unlock_version(prev_vaddr, prev_ver)
            prev_vaddr, prev_ver = child_vaddr, cv
            cur = child
        nid = yield from self._new_node(tid, key)
        yield isa.store_version(prev_vaddr, tid, nid)
        yield isa.unlock_version(prev_vaddr, prev_ver)
        return True

    def delete_task(self, tid: int, key: int, rename_to: int) -> Generator:
        yield isa.lock_load_version(self.ticket_addr, tid)
        rv, cur = yield isa.lock_load_latest(self.root_addr, tid)
        yield isa.unlock_version(self.ticket_addr, tid, rename_to)
        prev_vaddr, prev_ver = self.root_addr, rv
        k = None
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k == key:
                break
            child_vaddr = self._child_vaddr(cur, key > k)
            cv, child = yield isa.lock_load_latest(child_vaddr, tid)
            yield isa.unlock_version(prev_vaddr, prev_ver)
            prev_vaddr, prev_ver = child_vaddr, cv
            cur = child
        if not cur:
            yield isa.unlock_version(prev_vaddr, prev_ver)
            return False

        # Children reads: LOAD-LATEST blocks if an earlier mutator still
        # holds a lock there, which is exactly the ordering we need; later
        # mutators cannot pass our lock on the parent pointer.
        _, lchild = yield isa.load_latest(self.left_vaddr(cur), tid)
        _, rchild = yield isa.load_latest(self.right_vaddr(cur), tid)
        if lchild == 0 or rchild == 0:
            yield isa.store_version(prev_vaddr, tid, lchild or rchild)
            yield isa.unlock_version(prev_vaddr, prev_ver)
            return True

        # Two children: walk to the successor (leftmost of right subtree)
        # hand-over-hand, splice it out, and rename the parent pointer to a
        # fresh replacement node carrying the successor's key.
        sp_vaddr = self.right_vaddr(cur)
        sp_ver, succ = yield isa.lock_load_latest(sp_vaddr, tid)
        while True:
            child_vaddr = self.left_vaddr(succ)
            cv, child = yield isa.lock_load_latest(child_vaddr, tid)
            if child == 0:
                yield isa.unlock_version(child_vaddr, cv)
                break
            yield isa.unlock_version(sp_vaddr, sp_ver)
            sp_vaddr, sp_ver = child_vaddr, cv
            succ = child
        _, succ_right = yield isa.load_latest(self.right_vaddr(succ), tid)
        skey = yield load_op(self.key_addr(succ))
        if sp_vaddr == self.right_vaddr(cur):
            # The successor is cur's right child: the replacement adopts
            # the successor's own right subtree; nothing to splice (the
            # pointer to the successor dies with cur).
            nid = yield from self._new_node(tid, skey, left=lchild, right=succ_right)
        else:
            # Splice the successor out of the right subtree, then build
            # the replacement around the (now successor-free) rchild.
            yield isa.store_version(sp_vaddr, tid, succ_right)
            nid = yield from self._new_node(tid, skey, left=lchild, right=rchild)
        yield isa.store_version(prev_vaddr, tid, nid)
        yield isa.unlock_version(sp_vaddr, sp_ver)
        yield isa.unlock_version(prev_vaddr, prev_ver)
        return True

    # -- inspection ---------------------------------------------------------------

    def snapshot(self, cap: int = 1 << 31) -> list[int]:
        """Sorted key list of the latest-version tree (for validation)."""
        mgr = self.m.manager

        def latest(vaddr: int) -> int:
            lst = mgr.lists.get(vaddr)
            if lst is None or lst.head is None:
                return 0
            block, _ = lst.find_latest(cap)
            return block.value if block else 0

        out: list[int] = []

        def walk(nid: int) -> None:
            if not nid:
                return
            walk(latest(self.left_vaddr(nid)))
            out.append(self.m.mem[self.key_addr(nid)])
            walk(latest(self.right_vaddr(nid)))

        walk(latest(self.root_addr))
        return out


class UnversionedBinaryTree:
    """Conventional BST: node ``i`` has key at +0, left at +8, right at +12.

    The sequential program may delete in place (copying the successor key
    into the node) because nothing runs concurrently.
    """

    def __init__(self, machine: Machine, initial_keys: list[int], capacity: int):
        self.m = machine
        self.capacity = capacity
        self.base = machine.heap.alloc(16 * capacity, align=64)
        self.root_addr = machine.heap.alloc(8, align=8)
        self.n_nodes = 1
        mem = machine.mem
        keys = sorted(set(initial_keys))

        def build(lo: int, hi: int) -> int:
            if lo >= hi:
                return 0
            mid = (lo + hi) // 2
            nid = self.n_nodes
            self.n_nodes += 1
            mem[self.key_addr(nid)] = keys[mid]
            mem[self.left_addr(nid)] = build(lo, mid)
            mem[self.right_addr(nid)] = build(mid + 1, hi)
            return nid

        mem[self.root_addr] = build(0, len(keys))

    def key_addr(self, nid: int) -> int:
        return self.base + 16 * nid

    def left_addr(self, nid: int) -> int:
        return self.base + 16 * nid + 8

    def right_addr(self, nid: int) -> int:
        return self.base + 16 * nid + 12

    def _child_addr(self, nid: int, go_right: bool) -> int:
        return self.right_addr(nid) if go_right else self.left_addr(nid)

    # -- individual operations (reused by the rwlock baseline) ---------------

    def lookup_op(self, key: int) -> Generator:
        cur = yield load_op(self.root_addr)
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k == key:
                return True
            cur = yield load_op(self._child_addr(cur, key > k))
        return False

    def scan_op(self, key: int, count: int) -> Generator:
        out: list[int] = []
        stack: list[int] = []
        cur = yield load_op(self.root_addr)
        while (cur or stack) and len(out) < count:
            while cur:
                yield compute_op(HOP_COMPUTE)
                k = yield load_op(self.key_addr(cur))
                if k >= key:
                    stack.append(cur)
                    cur = yield load_op(self.left_addr(cur))
                else:
                    cur = yield load_op(self.right_addr(cur))
            if not stack:
                break
            node = stack.pop()
            k = yield load_op(self.key_addr(node))
            out.append(k)
            cur = yield load_op(self.right_addr(node))
        return out

    def insert_op(self, key: int) -> Generator:
        prev_addr = self.root_addr
        cur = yield load_op(prev_addr)
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k == key:
                return False
            prev_addr = self._child_addr(cur, key > k)
            cur = yield load_op(prev_addr)
        yield compute_op(ALLOC_COMPUTE)
        nid = self.n_nodes
        if nid >= self.capacity:
            raise ConfigError("node pool exhausted")
        self.n_nodes += 1
        yield store_op(self.key_addr(nid), key)
        yield store_op(self.left_addr(nid), 0)
        yield store_op(self.right_addr(nid), 0)
        yield store_op(prev_addr, nid)
        return True

    def delete_op(self, key: int) -> Generator:
        prev_addr = self.root_addr
        cur = yield load_op(prev_addr)
        k = None
        while cur:
            yield compute_op(HOP_COMPUTE)
            k = yield load_op(self.key_addr(cur))
            if k == key:
                break
            prev_addr = self._child_addr(cur, key > k)
            cur = yield load_op(prev_addr)
        if not cur:
            return False
        lchild = yield load_op(self.left_addr(cur))
        rchild = yield load_op(self.right_addr(cur))
        if lchild == 0 or rchild == 0:
            yield store_op(prev_addr, lchild or rchild)
            return True
        # Two children: in-place successor copy (fine when exclusive).
        sp_addr = self.right_addr(cur)
        succ = rchild
        while True:
            child = yield load_op(self.left_addr(succ))
            yield compute_op(HOP_COMPUTE)
            if child == 0:
                break
            sp_addr = self.left_addr(succ)
            succ = child
        skey = yield load_op(self.key_addr(succ))
        succ_right = yield load_op(self.right_addr(succ))
        yield store_op(self.key_addr(cur), skey)
        yield store_op(sp_addr, succ_right)
        return True

    def program(self, ops: list[tuple[str, int, int]]) -> Generator:
        results = []
        for op, key, extra in ops:
            if op == LOOKUP:
                results.append((yield from self.lookup_op(key)))
            elif op == SCAN:
                results.append((yield from self.scan_op(key, extra)))
            elif op == INSERT:
                results.append((yield from self.insert_op(key)))
            elif op == DELETE:
                results.append((yield from self.delete_op(key)))
            else:
                raise ConfigError(f"binary tree does not support {op!r}")
        return results

    def snapshot(self) -> list[int]:
        mem = self.m.mem
        out: list[int] = []

        def walk(nid: int) -> None:
            if not nid:
                return
            walk(mem.get(self.left_addr(nid), 0))
            out.append(mem[self.key_addr(nid)])
            walk(mem.get(self.right_addr(nid), 0))

        walk(mem.get(self.root_addr, 0))
        return out


# -- variant runners ------------------------------------------------------------------


def _capacity(initial: list[int], ops: list[tuple[str, int, int]]) -> int:
    # Deletes of two-children nodes allocate replacement nodes too.
    writes = sum(1 for o in ops if o[0] in (INSERT, DELETE))
    return 2 * (len(initial) + writes) + 4


def run_unversioned(
    config: MachineConfig, initial: list[int], ops: list[tuple[str, int, int]]
) -> WorkloadRun:
    def setup(machine):
        return UnversionedBinaryTree(machine, initial, _capacity(initial, ops))

    def make_tasks(machine, tree):
        def body(tid):
            return (yield from tree.program(ops))

        return [Task(0, body, label="bst-seq")]

    cfg = config.with_cores(1)
    run = run_variant(
        "binary_tree", "unversioned", cfg, setup, make_tasks,
        lambda m, t: t.snapshot(),
    )
    run.results = run.results[0]
    return run


def run_versioned(
    config: MachineConfig,
    initial: list[int],
    ops: list[tuple[str, int, int]],
    num_cores: int,
) -> WorkloadRun:
    init_version, plans = plan_entries(ops)

    def setup(machine):
        return VersionedBinaryTree(
            machine, initial, _capacity(initial, ops),
            ticket_init_version=init_version,
        )

    def make_tasks(machine, tree):
        tasks = []
        for i, (op, key, extra) in enumerate(ops):
            tid = FIRST_TASK_ID + i
            plan = plans[i]
            if op == LOOKUP:
                tasks.append(Task(tid, tree.lookup_task, key, plan, label="bst-lookup"))
            elif op == SCAN:
                tasks.append(Task(tid, tree.scan_task, key, extra, plan, label="bst-scan"))
            elif op == INSERT:
                tasks.append(Task(tid, tree.insert_task, key, plan[2], label="bst-insert"))
            elif op == DELETE:
                tasks.append(Task(tid, tree.delete_task, key, plan[2], label="bst-delete"))
            else:
                raise ConfigError(f"binary tree does not support {op!r}")
        return tasks

    cfg = config.with_cores(num_cores)
    variant = "versioned-seq" if num_cores == 1 else f"versioned-{num_cores}c"
    return run_variant(
        "binary_tree", variant, cfg, setup, make_tasks, lambda m, t: t.snapshot()
    )
