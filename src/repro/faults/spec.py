"""Fault plans: deterministic, seeded fault specifications.

A *fault plan* is a tuple of :class:`FaultSpec` carried by
``MachineConfig(faults=...)``.  The :class:`~repro.faults.injector.
FaultInjector` arms the plan when the machine is built and fires each
fault at a deterministic point of the simulation, so a failing
(workload, seed, plan) triple reproduces exactly.

Trigger points are *ordinal*, not cycle-based: machine-tier faults
trigger on the N-th versioned operation (``starve-free-list``,
``pause-gc``, ``abort-task``) or the N-th waiter notification
(``drop-wake``, ``delay-wake``).  Ordinals survive timing changes —
the same plan hits the same protocol step even if latencies shift.

Specs are frozen dataclasses with deterministic ``repr``s, so a config
carrying a plan still works as a :class:`~repro.harness.runner.RunSpec`
cache key and pickles across the process pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ConfigError

#: Machine-tier fault kinds understood by the injector.
KINDS = frozenset(
    {
        "starve-free-list",
        "drop-wake",
        "delay-wake",
        "pause-gc",
        "abort-task",
        "crash-machine",
        "corrupt-block",
    }
)

#: Fault kinds that must be *transparent*: recovery may cost cycles but
#: the run must complete with unchanged results.  ``abort-task`` is
#: excluded — replaying a task is only safe when its body is idempotent
#: (pure generator state), which some workloads' host-side allocators
#: are not; the abort path gets dedicated deterministic tests instead.
#: The environment faults (``crash-machine``, ``corrupt-block``) are
#: also excluded: they kill or damage the run from *outside* the
#: simulated machine, and recovery happens at the
#: :class:`repro.recovery.RecoveryPolicy` tier, not inside the run.
TRANSPARENT_KINDS = ("starve-free-list", "drop-wake", "delay-wake", "pause-gc")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``kind``
        One of :data:`KINDS`.
    ``at``
        Trigger ordinal (1-based): versioned-op index for
        ``starve-free-list`` / ``pause-gc`` / ``abort-task`` /
        ``crash-machine`` / ``corrupt-block``, waiter notification
        index for the wake faults.
    ``span``
        How many consecutive notifications a wake fault covers.
    ``value``
        Kind-specific magnitude: the refill budget that *remains* after
        a starvation fault, the GC pause length in cycles, the wake
        delivery delay in cycles, the abort restart delay in cycles,
        or the byte offset (mod image size) a ``corrupt-block`` fault
        flips in the latest checkpoint image.
    ``arg``
        Kind-specific operand: free blocks left after a starvation
        drain, or the task id an ``abort-task`` fault targets.
    """

    kind: str
    at: int = 1
    span: int = 1
    value: int = 0
    arg: int = 0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from {sorted(KINDS)}"
            )
        if self.at < 1:
            raise ConfigError("fault trigger ordinal 'at' must be >= 1")
        if self.span < 1:
            raise ConfigError("fault span must be >= 1")
        if self.value < 0 or self.arg < 0:
            raise ConfigError("fault value/arg must be non-negative")


def validate_plan(faults: Iterable[object]) -> tuple[FaultSpec, ...]:
    """Check that ``faults`` is a sequence of :class:`FaultSpec`."""
    plan = tuple(faults)
    for f in plan:
        if not isinstance(f, FaultSpec):
            raise ConfigError(
                f"faults must be FaultSpec instances, got {type(f).__name__}"
            )
    return plan


def random_plan(
    seed: int,
    *,
    n_ops: int = 64,
    max_faults: int = 3,
    task_ids: Sequence[int] = (),
    kinds: Sequence[str] | None = None,
) -> tuple[FaultSpec, ...]:
    """A seeded random fault plan (the stress harness vehicle).

    Draws 1..``max_faults`` faults from ``kinds`` (default: the
    transparent kinds) with trigger ordinals in ``[1, n_ops]``.
    ``task_ids`` supplies candidate victims for ``abort-task`` faults
    when that kind is requested.  Same seed, same plan.
    """
    rng = random.Random(seed)
    pool = tuple(kinds if kinds is not None else TRANSPARENT_KINDS)
    plan: list[FaultSpec] = []
    for _ in range(rng.randint(1, max_faults)):
        kind = rng.choice(pool)
        at = rng.randint(1, max(1, n_ops))
        if kind == "starve-free-list":
            plan.append(
                FaultSpec(kind, at=at, value=rng.randint(0, 2), arg=rng.randint(0, 4))
            )
        elif kind == "pause-gc":
            plan.append(FaultSpec(kind, at=at, value=rng.randint(200, 5000)))
        elif kind == "abort-task":
            if not task_ids:
                continue
            plan.append(
                FaultSpec(
                    kind,
                    at=at,
                    value=rng.randint(1, 64),
                    arg=rng.choice(list(task_ids)),
                )
            )
        else:  # drop-wake / delay-wake
            plan.append(
                FaultSpec(
                    kind,
                    at=at,
                    span=rng.randint(1, 3),
                    value=rng.randint(2, 50),
                )
            )
    return tuple(plan)
