"""Deterministic fault injection for the O-structure machine and harness.

Two tiers:

- **Machine tier** (:mod:`repro.faults.injector`): a
  :class:`~repro.faults.spec.FaultSpec` plan carried by
  ``MachineConfig(faults=...)`` starves the version-block free list,
  drops or delays waiter wake-ups, pauses the GC, or aborts a running
  task at a deterministic point — exercising allocation backpressure,
  the emergency collector, the watchdog's kick/abort recovery, and the
  abort-and-retry rollback.
- **Harness tier** (:mod:`repro.faults.harness`): the ``chaos`` sweep
  entry crashes, hangs, or errors a *real* pool worker exactly once —
  exercising the :class:`~repro.harness.runner.SweepRunner` crash
  detection, timeouts, retry-with-backoff, and ``--resume``.

Only the spec layer is imported here; the injector is pulled in lazily
by :class:`~repro.sim.machine.Machine` (it wraps the manager the
machine builds), and the harness layer by :mod:`repro.harness.sweeps`.
"""

from .spec import KINDS, TRANSPARENT_KINDS, FaultSpec, random_plan, validate_plan

__all__ = [
    "KINDS",
    "TRANSPARENT_KINDS",
    "FaultSpec",
    "random_plan",
    "validate_plan",
]
