"""Harness-tier fault injection: chaos workers for the sweep runner.

``sim_chaos`` is a registered sweep target (``RunSpec(fn="chaos")``)
whose *process* misbehaves on command — it crashes the worker with a
raw ``os._exit``, hangs past any reasonable deadline, or raises a
deterministic error — which is exactly the class of failure the
crash-tolerant :class:`~repro.harness.runner.SweepRunner` must absorb.
Simulation-tier faults are injected with :mod:`repro.faults.injector`;
this module kills the processes *around* the simulator.

Faults fire **once per (key, mode)**: the worker drops a marker file in
``marker_dir`` before misbehaving, and any worker that finds the marker
already present completes normally.  That models the transient failures
(OOM kill, preemption, node crash) a retry is supposed to cure, and
makes runner tests deterministic: first attempt fails, retry succeeds,
and the marker file proves the fault really fired.

The success payload is a pure function of ``key``, so resumed and
clean-run sweeps produce byte-identical rows.
"""

from __future__ import annotations

import os
import time
import zlib
from pathlib import Path

from ..errors import ReproError
from ..harness.runner import RunResult, StatsView

#: Exit status used by the ``crash`` mode (distinctive in core dumps
#: and CI logs; any non-zero status breaks the pool the same way).
CRASH_EXIT_STATUS = 17

#: Supported misbehaviours.
CHAOS_MODES = ("ok", "crash", "hang", "error")


def _result_for(key: str) -> RunResult:
    """Deterministic payload standing in for a simulation's row."""
    digest = zlib.crc32(key.encode())
    return RunResult(
        cycles=digest % 100_000,
        stats=StatsView(
            {
                "workload": "chaos",
                "key": key,
                "digest": digest,
                "tasks_finished": 1,
            }
        ),
    )


def sim_chaos(
    key: str,
    mode: str = "ok",
    marker_dir: str = "",
    sleep: float = 30.0,
) -> RunResult:
    """One chaos run: misbehave per ``mode`` (once), else return a row.

    ``marker_dir`` must be a writable directory when ``mode != "ok"``;
    the marker file ``chaos-<key>-<mode>.fired`` makes the fault
    once-only.  ``sleep`` is how long the ``hang`` mode wedges the
    worker — longer than any test timeout, far shorter than CI's.
    """
    if mode not in CHAOS_MODES:
        raise ReproError(f"unknown chaos mode {mode!r}; choose from {CHAOS_MODES}")
    if mode != "ok":
        if not marker_dir:
            raise ReproError(f"chaos mode {mode!r} requires marker_dir")
        marker = Path(marker_dir) / f"chaos-{key}-{mode}.fired"
        if not marker.exists():
            # Marker first: even a crash that never returns is recorded,
            # so the retried attempt sees it and completes.
            marker.parent.mkdir(parents=True, exist_ok=True)
            marker.write_text(f"pid={os.getpid()}\n")
            if mode == "crash":
                # Raw exit, no interpreter shutdown: what SIGKILL-ing
                # the worker looks like to the parent pool.
                os._exit(CRASH_EXIT_STATUS)
            elif mode == "hang":
                time.sleep(sleep)
            elif mode == "error":
                raise ReproError(f"injected deterministic failure for {key!r}")
    return _result_for(key)
