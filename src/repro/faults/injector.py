"""Deterministic machine-tier fault injection.

The injector arms a :class:`~repro.faults.spec.FaultSpec` plan against a
live machine by wrapping two manager chokepoints:

- ``manager._extra`` — called exactly once per completed versioned
  operation — provides the *op ordinal* used to trigger op-indexed
  faults (``starve-free-list``, ``pause-gc``, ``abort-task``, and the
  environment faults ``crash-machine`` / ``corrupt-block``, which kill
  the run or damage its newest checkpoint image; see repro.recovery);
- ``manager._notify`` — the waiter wake-up path — provides the *notify
  ordinal* used by the wake faults (``drop-wake`` swallows the
  notification, ``delay-wake`` postpones delivery).  Notifications with
  no parked waiter are not counted: a plan's window always lines up
  with wake-ups that would actually have delivered something.

Both ordinals advance deterministically with the simulation, so a given
``(workload, seed, plan)`` triple always injects the same faults at the
same points — a failed chaos run replays exactly.

Faults are injected *through public recovery surfaces* (the free list's
refill budget, the GC enable bit, the core's abort entry point), so what
is being tested is the machine's actual degradation behaviour, not
injector-private shortcuts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..ostruct.manager import ALLOC_WAIT
from .spec import FaultSpec, validate_plan

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.machine import Machine

#: Fault kinds triggered by the versioned-op ordinal.
_OP_KINDS = frozenset(
    {"starve-free-list", "pause-gc", "abort-task", "crash-machine", "corrupt-block"}
)
#: Fault kinds triggered by the waiter-notification ordinal.
_WAKE_KINDS = frozenset({"drop-wake", "delay-wake"})


class FaultInjector:
    """Arms a fault plan against one machine for one run."""

    def __init__(self, machine: "Machine", plan: tuple[FaultSpec, ...]):
        validate_plan(plan)
        self.machine = machine
        self.plan = tuple(plan)
        #: Faults actually applied, in firing order.
        self.fired: list[FaultSpec] = []
        #: Faults whose trigger matched but whose target was not
        #: applicable (e.g. an abort-task victim already finished).
        self.skipped: list[FaultSpec] = []
        self.op_index = 0
        self.notify_index = 0
        # Op-indexed faults sorted descending by (at, plan position) so
        # the next due fault sits at the end and pops in O(1).
        self._op_faults = sorted(
            (f for f in self.plan if f.kind in _OP_KINDS),
            key=lambda f: (f.at, self.plan.index(f)),
            reverse=True,
        )
        self._wake_faults = [f for f in self.plan if f.kind in _WAKE_KINDS]
        manager = machine.manager
        self._orig_extra = manager._extra
        self._orig_notify = manager._notify
        manager._extra = self._extra
        manager._notify = self._notify

    # -- wrapped chokepoints ---------------------------------------------------

    def _extra(self) -> int:
        self.op_index += 1
        while self._op_faults and self._op_faults[-1].at <= self.op_index:
            self._trigger(self._op_faults.pop())
        return self._orig_extra()

    def _notify(self, vaddr: int) -> None:
        manager = self.machine.manager
        if not manager._waiters.get(vaddr):
            return self._orig_notify(vaddr)
        self.notify_index += 1
        idx = self.notify_index
        for f in self._wake_faults:
            if f.at <= idx < f.at + f.span:
                if f.kind == "drop-wake":
                    # Swallow the wake-up; the waiters stay parked.  The
                    # watchdog's kick path is the designed recovery.
                    self._record(f)
                    return
                # delay-wake: deliver late (a normal wake is delay 1).
                cbs = manager._waiters.pop(vaddr)
                manager._schedule_wake(cbs, max(2, f.value))
                self._record(f)
                return
        return self._orig_notify(vaddr)

    # -- fault actions ---------------------------------------------------------

    def _trigger(self, f: FaultSpec) -> None:
        m = self.machine
        if f.kind == "starve-free-list":
            m.free_list.set_refill_budget(f.value)
            m.free_list.drain(leave=f.arg)
            self._record(f)
        elif f.kind == "pause-gc":
            m.gc.enabled = False
            m.sim.schedule(max(1, f.value), lambda: self._resume_gc())
            self._record(f)
        elif f.kind == "abort-task":
            # _extra runs mid-dispatch: the victim core may be the one
            # executing right now, so defer the abort to a fresh event.
            m.sim.schedule(0, lambda spec=f: self._abort(spec))
        elif f.kind == "crash-machine":
            # Deferred like the abort so the op in flight completes; the
            # raise then propagates cleanly out of ``sim.run()``.
            m.sim.schedule(
                0, lambda spec=f, idx=self.op_index: self._crash(spec, idx)
            )
        elif f.kind == "corrupt-block":
            self._corrupt(f)

    def _resume_gc(self) -> None:
        m = self.machine
        m.gc.enabled = True
        # Backpressured allocators may have been waiting out the pause.
        if m.manager._waiters.get(ALLOC_WAIT):
            m.manager._notify(ALLOC_WAIT)

    def _abort(self, f: FaultSpec) -> None:
        m = self.machine
        for core in m.cores:
            task = core.current
            if task is None or task.task_id != f.arg:
                continue
            if core.can_abort and m.manager.can_abort_task(task.task_id):
                core.abort_and_retry(max(1, f.value))
                self._record(f)
            else:
                self.skipped.append(f)
            return
        self.skipped.append(f)

    def _crash(self, f: FaultSpec, op_index: int) -> None:
        from ..errors import MachineCrash

        # Environment fault: recorded in ``fired`` but *not* in
        # ``stats.faults_injected`` — the crash kills the run from
        # outside the machine, and the recovered re-run (whose config no
        # longer carries the already-fired crash) must end with stats
        # byte-identical to an uninterrupted run.
        self.fired.append(f)
        raise MachineCrash(
            f"injected crash-machine fault at versioned op {op_index} "
            f"(cycle {self.machine.sim.now})",
            op_index=op_index,
        )

    def _corrupt(self, f: FaultSpec) -> None:
        # Damage the newest checkpoint image on disk (environment fault,
        # same stats rule as _crash: no faults_injected bump).  Recovery
        # must then fall back to the previous valid image — which is the
        # behaviour the CRC guard exists to enable.
        ckpt = getattr(self.machine, "checkpointer", None)
        if ckpt is None:
            self.skipped.append(f)
            return
        images = sorted(ckpt.directory.glob("ckpt-*.img"))
        if not images:
            self.skipped.append(f)
            return
        target = images[-1]
        raw = bytearray(target.read_bytes())
        raw[f.value % len(raw)] ^= 0xFF
        target.write_bytes(bytes(raw))
        self.fired.append(f)

    def _record(self, f: FaultSpec) -> None:
        self.fired.append(f)
        self.machine.stats.faults_injected += 1
