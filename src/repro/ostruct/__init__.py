"""O-structure microarchitecture (the paper's primary contribution).

Implements Section II semantics and the Section III microarchitecture:

- :mod:`repro.ostruct.isa` — the seven versioned-memory operations plus
  TASK-BEGIN/TASK-END, as micro-op constructors for task programs.
- :mod:`repro.ostruct.version_block` — 16-byte version blocks and sorted
  per-address version-block lists.
- :mod:`repro.ostruct.free_list` — hardware-managed free list with OS
  refill traps and the GC watermark.
- :mod:`repro.ostruct.compression` — bit-exact compressed version-block
  cache lines (18-bit base, 8 entries of data + 14-bit offsets).
- :mod:`repro.ostruct.page_table` — version-block page bit and protection
  faults.
- :mod:`repro.ostruct.manager` — the O-structure Manager: direct and full
  lookup, locking, waiter queues, insertion protocol.
- :mod:`repro.ostruct.gc` — the shadowed/pending-list garbage collector.
"""

from .isa import (
    LOAD_VERSION,
    LOAD_LATEST,
    STORE_VERSION,
    LOCK_LOAD_VERSION,
    LOCK_LOAD_LATEST,
    UNLOCK_VERSION,
)
from .version_block import VersionBlock, VersionList
from .free_list import FreeList
from .compression import CompressedLine, VERSION_OFFSET_BITS, VERSION_BASE_BITS
from .page_table import PageTable, PAGE_SIZE
from .manager import OStructureManager, StallSignal
from .gc import GarbageCollector

__all__ = [
    "LOAD_VERSION",
    "LOAD_LATEST",
    "STORE_VERSION",
    "LOCK_LOAD_VERSION",
    "LOCK_LOAD_LATEST",
    "UNLOCK_VERSION",
    "VersionBlock",
    "VersionList",
    "FreeList",
    "CompressedLine",
    "VERSION_OFFSET_BITS",
    "VERSION_BASE_BITS",
    "PageTable",
    "PAGE_SIZE",
    "OStructureManager",
    "StallSignal",
    "GarbageCollector",
]
