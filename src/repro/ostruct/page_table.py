"""Page table with the version-block protection bit (Section III).

The paper extends the page table with a bit marking pages that contain
version blocks.  Conventional loads and stores to such pages fault, and
O-structure instructions fault when their target page lacks the bit.
Together with the head-bit check on version-block lists, this keeps the
physical pointers inside version blocks unreachable from user code.

Address translation is modelled as identity (virtual == physical): the
paper's protection argument depends only on the *bit*, not on the mapping,
and an identity map keeps the hot path to a single set lookup.
"""

from __future__ import annotations

from ..errors import ProtectionFault

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class PageTable:
    """Tracks which pages hold versioned data / version blocks."""

    __slots__ = ("_versioned_pages",)

    def __init__(self) -> None:
        self._versioned_pages: set[int] = set()

    @staticmethod
    def page_of(addr: int) -> int:
        return addr >> PAGE_SHIFT

    def mark_versioned(self, addr: int, nbytes: int = PAGE_SIZE) -> None:
        """Set the version-block bit on every page overlapping the range."""
        first = addr >> PAGE_SHIFT
        last = (addr + max(nbytes, 1) - 1) >> PAGE_SHIFT
        self._versioned_pages.update(range(first, last + 1))

    def clear_versioned(self, addr: int, nbytes: int = PAGE_SIZE) -> None:
        """Clear the bit (used when converting O-structures back; III-C)."""
        first = addr >> PAGE_SHIFT
        last = (addr + max(nbytes, 1) - 1) >> PAGE_SHIFT
        self._versioned_pages.difference_update(range(first, last + 1))

    def is_versioned(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._versioned_pages

    def check_conventional(self, addr: int) -> None:
        """Fault if a conventional access touches a versioned page."""
        if (addr >> PAGE_SHIFT) in self._versioned_pages:
            raise ProtectionFault(
                f"conventional access to versioned page at 0x{addr:x}"
            )

    def check_versioned(self, addr: int) -> None:
        """Fault if an O-structure instruction touches a conventional page."""
        if (addr >> PAGE_SHIFT) not in self._versioned_pages:
            raise ProtectionFault(
                f"O-structure access to non-versioned page at 0x{addr:x}"
            )
