"""The hardware-managed free list of version blocks (Section III).

Unused version blocks live on a free list.  Allocation pops a block's
physical address; when the count drops below the GC watermark the manager
triggers a collection phase, and when the list is completely empty the
hardware traps to the OS, which carves more memory into version blocks
(``refill_blocks`` at a time) after updating the page table.  The refill
budget can be bounded to make exhaustion testable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..config import VERSION_BLOCK_SIZE
from ..errors import FreeListExhausted

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.stats import SimStats

#: Cycles charged for the OS trap that refills the free list.
REFILL_TRAP_CYCLES = 500


class FreeList:
    """Stack of free version-block physical addresses."""

    __slots__ = (
        "_stats",
        "_free",
        "_bump",
        "_refill_blocks",
        "_refills_left",
        "_on_refill_page",
    )

    def __init__(
        self,
        *,
        base_paddr: int,
        initial_blocks: int,
        refill_blocks: int,
        max_refills: int | None,
        stats: "SimStats",
        on_refill_page: Callable[[int, int], None] | None = None,
    ):
        """``on_refill_page(start_paddr, nbytes)`` lets the page table mark
        newly carved regions as version-block pages."""
        self._stats = stats
        self._free: list[int] = []
        self._bump = base_paddr
        self._refill_blocks = refill_blocks
        self._refills_left = max_refills
        self._on_refill_page = on_refill_page
        self._carve(initial_blocks, count_refill=False)

    def _carve(self, nblocks: int, count_refill: bool) -> None:
        start = self._bump
        for _ in range(nblocks):
            self._free.append(self._bump)
            self._bump += VERSION_BLOCK_SIZE
        if self._on_refill_page is not None:
            self._on_refill_page(start, nblocks * VERSION_BLOCK_SIZE)
        if count_refill:
            self._stats.free_list_refills += 1

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def refills_left(self) -> int | None:
        """Remaining OS refills (``None`` = unlimited)."""
        return self._refills_left

    def set_refill_budget(self, budget: int | None) -> None:
        """Replace the remaining refill budget (fault injection)."""
        self._refills_left = budget

    def drain(self, leave: int = 0) -> int:
        """Discard free blocks until only ``leave`` remain (starvation).

        The discarded paddrs are forgotten entirely — exactly what an OS
        reclaiming version-block pages under memory pressure looks like
        to the hardware.  Returns the number of blocks dropped.
        """
        dropped = max(0, len(self._free) - max(0, leave))
        if dropped:
            del self._free[len(self._free) - dropped :]
        return dropped

    def allocate(self) -> tuple[int, int]:
        """Pop one free block.

        Returns ``(paddr, extra_latency)``; the latency is non-zero only
        when the OS refill trap fired.  Raises :class:`FreeListExhausted`
        once the refill budget is spent.
        """
        if not self._free:
            if self._refills_left is not None and self._refills_left <= 0:
                raise FreeListExhausted(
                    "version-block free list empty and refill budget exhausted"
                )
            if self._refills_left is not None:
                self._refills_left -= 1
            self._carve(self._refill_blocks, count_refill=True)
            return self._free.pop(), REFILL_TRAP_CYCLES
        return self._free.pop(), 0

    def release(self, paddr: int) -> None:
        """Return a reclaimed block to the free list."""
        self._free.append(paddr)
