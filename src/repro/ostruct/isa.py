"""The versioned-memory instruction set (paper, Section II-A).

Task programs are Python generators that *yield* micro-ops and receive the
op's result via ``send``.  Each micro-op is a plain tuple whose first
element is one of the opcode strings below; the helper constructors build
well-formed tuples and are the recommended way to emit ops.

The seven O-structure operations all take an address, exactly as in the
paper ("in practice all operations take an address parameter"):

========================  ====================================================
``LOAD-VERSION``          value of exactly version ``v``; stalls until created
                          and unlocked (locks on other versions are ignored).
``LOAD-LATEST``           value of the highest created version <= ``v``;
                          stalls if none exists or that version is locked.
``STORE-VERSION``         creates version ``v`` holding ``value``; versions
                          are immutable once created.
``LOCK-LOAD-VERSION``     LOAD-VERSION + lock the loaded version; stalls if
                          already locked.
``LOCK-LOAD-LATEST``      LOAD-LATEST + lock the loaded version.
``UNLOCK-VERSION``        unlock ``v``; optionally create unlocked version
                          ``vn`` carrying the same value (renaming).
``TASK-BEGIN/TASK-END``   garbage-collection progress reports (Section
                          III-B); issued automatically by the core around
                          each task, but also available to programs.
========================  ====================================================

Conventional (unversioned) memory keeps its ordinary ``LOAD``/``STORE``.
"""

from __future__ import annotations

from typing import Any

# Opcode strings (tuple tag of each micro-op).
COMPUTE = "compute"
LOAD = "load"
STORE = "store"
LOAD_VERSION = "load_version"
LOAD_LATEST = "load_latest"
STORE_VERSION = "store_version"
LOCK_LOAD_VERSION = "lock_load_version"
LOCK_LOAD_LATEST = "lock_load_latest"
UNLOCK_VERSION = "unlock_version"
TASK_BEGIN = "task_begin"
TASK_END = "task_end"
RW_ACQUIRE = "rw_acquire"
RW_RELEASE = "rw_release"

#: Opcodes that go through the O-structure manager (and therefore receive
#: the injected extra latency of Figure 10).
VERSIONED_OPS = frozenset(
    {
        LOAD_VERSION,
        LOAD_LATEST,
        STORE_VERSION,
        LOCK_LOAD_VERSION,
        LOCK_LOAD_LATEST,
        UNLOCK_VERSION,
    }
)


def compute(n: int) -> tuple:
    """``n`` ALU instructions (retired ``issue_width`` per cycle)."""
    return (COMPUTE, n)


def load(addr: int) -> tuple:
    """Conventional load; yields the stored value."""
    return (LOAD, addr)


def store(addr: int, value: Any) -> tuple:
    """Conventional store."""
    return (STORE, addr, value)


def load_version(addr: int, version: int) -> tuple:
    """Exact-version load; result is the value."""
    return (LOAD_VERSION, addr, version)


def load_latest(addr: int, cap: int) -> tuple:
    """Capped load; result is a ``(version, value)`` pair."""
    return (LOAD_LATEST, addr, cap)


def store_version(addr: int, version: int, value: Any) -> tuple:
    """Create a new version."""
    return (STORE_VERSION, addr, version, value)


def lock_load_version(addr: int, version: int) -> tuple:
    """Exact-version load + lock; result is the value."""
    return (LOCK_LOAD_VERSION, addr, version)


def lock_load_latest(addr: int, cap: int) -> tuple:
    """Capped load + lock; result is a ``(version, value)`` pair."""
    return (LOCK_LOAD_LATEST, addr, cap)


def unlock_version(addr: int, version: int, new_version: int | None = None) -> tuple:
    """Unlock ``version``; optionally rename its value to ``new_version``."""
    return (UNLOCK_VERSION, addr, version, new_version)


def task_begin(task_id: int) -> tuple:
    return (TASK_BEGIN, task_id)


def task_end(task_id: int) -> tuple:
    return (TASK_END, task_id)


def rw_acquire(lock: Any, mode: str) -> tuple:
    """Acquire a simulated read-write lock; ``mode`` is ``'r'`` or ``'w'``."""
    return (RW_ACQUIRE, lock, mode)


def rw_release(lock: Any, mode: str) -> tuple:
    return (RW_RELEASE, lock, mode)
