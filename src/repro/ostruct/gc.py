"""Hardware garbage collection of version blocks (Section III-B).

A version becomes *shadowed* once a younger (higher-id) version of the
same location is created.  The collector keeps two lists:

- the **shadowed list**: blocks that may still be read by active tasks but
  will become dead at some future point;
- the **pending list**: a snapshot of the shadowed list taken when a
  collection phase begins.

When a phase starts, the shadowed list moves to the pending list and the
*youngest* task id ``Y`` the tracker has ever seen begin is recorded.
Once the *oldest* (lowest-id) live task is younger than ``Y``, every
pending block is unreachable — rule 1 means any reader of a shadowed
version has an id below the shadowing version, every pre-phase shadowing
version was created by a task that has begun (so its id is <= Y), and
rule 3 forbids spawning tasks below the lowest live id — so the pending
list drains to the free list.  Phases are triggered by the free-list
watermark.

The bound must be ``tracker.max_seen``, not the highest *currently
active* id: a high-id task that already ended may have shadowed versions
that lower-id tasks — queued but not yet begun — can still read.
Bounding by the highest active id lets the phase finalize as soon as
those older tasks are the only ones left, reclaiming versions they are
about to load (caught by the repro.check sanitizer's reclaim audit).

Newly shadowed versions registered during a phase go to the shadowed list
as usual and wait for the next phase; that is exactly what makes the
collection on-the-fly rather than stop-the-world.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .version_block import VersionBlock, VersionList

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.task import TaskTracker
    from ..sim.hierarchy import MemoryHierarchy
    from ..sim.stats import SimStats
    from .free_list import FreeList


class GarbageCollector:
    """Shadowed/pending-list collector over the version-block store."""

    def __init__(
        self,
        *,
        free_list: "FreeList",
        tracker: "TaskTracker",
        hierarchy: "MemoryHierarchy",
        stats: "SimStats",
        watermark: int,
        enabled: bool = True,
    ):
        self.free_list = free_list
        self.tracker = tracker
        self.hierarchy = hierarchy
        self.stats = stats
        self.watermark = watermark
        self.enabled = enabled
        self._shadowed: list[tuple[VersionBlock, VersionList]] = []
        self._pending: list[tuple[VersionBlock, VersionList]] = []
        self._phase_active = False
        self._recorded_youngest: int = -1
        #: Callbacks ``fn(vaddr, version)`` fired when a version is
        #: reclaimed (the manager drops compressed-line entries).
        self.reclaim_hooks: list[Callable[[int, int], None]] = []
        tracker.on_end.append(self._on_task_end)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def shadowed_count(self) -> int:
        return len(self._shadowed)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def phase_active(self) -> bool:
        return self._phase_active

    def register_shadowed(self, block: VersionBlock, vlist: VersionList) -> None:
        """Record that ``block`` is now shadowed by a younger version."""
        if block.shadowed:
            return
        block.shadowed = True
        self._shadowed.append((block, vlist))
        self.stats.shadowed_registered += 1

    def forget_address(self, vaddr: int) -> int:
        """Drop every queued (block, list) pair of ``vaddr``; returns count.

        Called when an O-structure is freed wholesale: the free path
        releases every block itself, so entries left on the shadowed or
        pending lists would double-release those paddrs in a later phase.
        """
        before = len(self._shadowed) + len(self._pending)
        self._shadowed = [it for it in self._shadowed if it[1].vaddr != vaddr]
        self._pending = [it for it in self._pending if it[1].vaddr != vaddr]
        return before - len(self._shadowed) - len(self._pending)

    # -- phases ---------------------------------------------------------------

    def maybe_trigger(self) -> None:
        """Watermark check; called by the manager on every allocation."""
        if (
            self.enabled
            and not self._phase_active
            and self._shadowed
            and self.free_list.free_count < self.watermark
        ):
            self.start_phase()

    def start_phase(self) -> None:
        """Begin a collection phase (hardware- or software-invoked)."""
        if self._phase_active or not self._shadowed:
            return
        self._phase_active = True
        self._pending = self._shadowed
        self._shadowed = []
        # Bound by the highest id that ever *began* (see module docstring):
        # every pre-phase shadowing version was created by a begun task, so
        # max_seen dominates every shadowing id, while the highest
        # currently-active id does not — an ended high-id task may have
        # shadowed versions still readable by queued lower-id tasks.
        self._recorded_youngest = self.tracker.max_seen
        self.stats.gc_phases += 1
        self._try_finalize()

    def _on_task_end(self, task_id: int) -> None:
        if self._phase_active:
            self._try_finalize()

    def _try_finalize(self) -> None:
        oldest = self.tracker.lowest_active()
        if oldest is not None and oldest <= self._recorded_youngest:
            return
        self._finalize()

    def _finalize(self) -> None:
        """Drain the pending list into the free list."""
        kept: list[tuple[VersionBlock, VersionList]] = []
        for block, vlist in self._pending:
            # Defensive checks: a locked block or a list head (the current
            # latest version) is never reclaimed; it returns to the
            # shadowed list and waits for a later phase.
            if block.locked or vlist.head is block:
                kept.append((block, vlist))
                continue
            vlist.remove(block)
            self.free_list.release(block.paddr)
            # The dead block's cache lines are left alone: they may also
            # hold live version blocks (4 per 64 B line), and a stale dead
            # block is harmless — coherence handles the line when the
            # free-list reuses the address.
            for hook in self.reclaim_hooks:
                hook(vlist.vaddr, block.version)
            self.stats.gc_reclaimed += 1
        self._pending = []
        for item in kept:
            item[0].shadowed = True
            self._shadowed.append(item)
        self._phase_active = False
