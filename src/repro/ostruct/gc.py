"""Hardware garbage collection of version blocks (Section III-B).

A version becomes *shadowed* once a younger (higher-id) version of the
same location is created.  The collector keeps two lists:

- the **shadowed list**: blocks that may still be read by active tasks but
  will become dead at some future point;
- the **pending list**: a snapshot of the shadowed list taken when a
  collection phase begins.

When a phase starts, the shadowed list moves to the pending list and a
bound ``Y`` is recorded: the *youngest* task id the tracker has ever
seen begin, or the highest *shadowing version id* among the pending
blocks, whichever is larger.  Once the *oldest* (lowest-id) live task is
younger than ``Y``, every pending block is unreachable — rule 1 means
any reader of a shadowed version has an id below the shadowing version
(<= Y by construction), and rule 3 forbids spawning tasks below the
lowest live id — so the pending list drains to the free list.  Phases
are triggered by the free-list watermark.

The task-id half of the bound must be ``tracker.max_seen``, not the
highest *currently active* id: a high-id task that already ended may
have shadowed versions that lower-id tasks — queued but not yet begun —
can still read.  The shadowing-version half matters because renaming
(UNLOCK-VERSION with a rename target) creates version ids above every
begun task — e.g. the ticket protocol naming the *next mutator* — and
readers of the version it shadows can hold any id below it.  Bounding by
``max_seen`` alone lets the phase finalize while those readers are still
queued, reclaiming versions they are about to load (both holes are
caught by the repro.check sanitizer's reclaim audit).

Newly shadowed versions registered during a phase go to the shadowed list
as usual and wait for the next phase; that is exactly what makes the
collection on-the-fly rather than stop-the-world.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .version_block import VersionBlock, VersionList

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.task import TaskTracker
    from ..sim.hierarchy import MemoryHierarchy
    from ..sim.stats import SimStats
    from .free_list import FreeList


class GarbageCollector:
    """Shadowed/pending-list collector over the version-block store."""

    def __init__(
        self,
        *,
        free_list: "FreeList",
        tracker: "TaskTracker",
        hierarchy: "MemoryHierarchy",
        stats: "SimStats",
        watermark: int,
        enabled: bool = True,
    ):
        self.free_list = free_list
        self.tracker = tracker
        self.hierarchy = hierarchy
        self.stats = stats
        self.watermark = watermark
        self.enabled = enabled
        self._shadowed: list[tuple[VersionBlock, VersionList]] = []
        self._pending: list[tuple[VersionBlock, VersionList]] = []
        self._phase_active = False
        self._recorded_youngest: int = -1
        #: Epoch pin (repro.recovery): the ``(vaddr, version)`` frontier
        #: of the latest checkpoint.  A pinned block is never reclaimed,
        #: so a restore's replay can always re-reach the checkpointed
        #: state — the same idea as the paper's §III-B reclaim bound,
        #: applied at checkpoint rather than task granularity.  ``None``
        #: (the default, when no checkpointer is attached) costs one
        #: attribute check per finalized block.
        self.epoch_pin: frozenset[tuple[int, int]] | None = None
        #: Times the pin was dropped to break allocation-pressure
        #: starvation (see :meth:`emergency_collect`).
        self.pin_drops = 0
        #: Callbacks ``fn(vaddr, version)`` fired when a version is
        #: reclaimed (the manager drops compressed-line entries).
        self.reclaim_hooks: list[Callable[[int, int], None]] = []
        #: Callbacks ``fn(vaddr, version)`` fired when a version becomes
        #: shadowed.  Pairing a shadow event with the matching reclaim
        #: event gives the reclamation-lag distribution (repro.obs).
        self.shadow_hooks: list[Callable[[int, int], None]] = []
        #: Callbacks ``fn(event)`` observing phase boundaries; ``event``
        #: is "start", "end" or "emergency" (repro.obs span recording).
        self.phase_hooks: list[Callable[[str], None]] = []
        tracker.on_end.append(self._on_task_end)

    def _fire_phase(self, event: str) -> None:
        for hook in self.phase_hooks:
            hook(event)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def shadowed_count(self) -> int:
        return len(self._shadowed)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def phase_active(self) -> bool:
        return self._phase_active

    def register_shadowed(
        self, block: VersionBlock, vlist: VersionList, by: int
    ) -> None:
        """Record that ``block`` is now shadowed by version id ``by``."""
        if block.shadowed:
            return
        block.shadowed = True
        block.shadowed_by = by
        self._shadowed.append((block, vlist))
        self.stats.shadowed_registered += 1
        if self.shadow_hooks:
            for hook in self.shadow_hooks:
                hook(vlist.vaddr, block.version)

    def forget_block(self, block: VersionBlock) -> int:
        """Drop every queued entry for exactly this block; returns count.

        Called when an aborted task's uncommitted version is rolled
        back: the abort path releases the paddr itself, so a queue entry
        left behind would double-release it in a later phase.
        """
        before = len(self._shadowed) + len(self._pending)
        self._shadowed = [it for it in self._shadowed if it[0] is not block]
        self._pending = [it for it in self._pending if it[0] is not block]
        return before - len(self._shadowed) - len(self._pending)

    def forget_address(self, vaddr: int) -> int:
        """Drop every queued (block, list) pair of ``vaddr``; returns count.

        Called when an O-structure is freed wholesale: the free path
        releases every block itself, so entries left on the shadowed or
        pending lists would double-release those paddrs in a later phase.
        """
        before = len(self._shadowed) + len(self._pending)
        self._shadowed = [it for it in self._shadowed if it[1].vaddr != vaddr]
        self._pending = [it for it in self._pending if it[1].vaddr != vaddr]
        return before - len(self._shadowed) - len(self._pending)

    # -- phases ---------------------------------------------------------------

    def maybe_trigger(self) -> None:
        """Watermark check; called by the manager on every allocation."""
        if (
            self.enabled
            and not self._phase_active
            and self._shadowed
            and self.free_list.free_count < self.watermark
        ):
            self.start_phase()

    def start_phase(self) -> None:
        """Begin a collection phase (hardware- or software-invoked)."""
        if self._phase_active or not self._shadowed:
            return
        self._phase_active = True
        self._pending = self._shadowed
        self._shadowed = []
        # Bound by the highest id that ever *began* (see module docstring)
        # — not the highest currently-active id: an ended high-id task may
        # have shadowed versions still readable by queued lower-id tasks.
        # Renaming can push a *shadowing version id* above every begun
        # task (UNLOCK-VERSION renames a location to a designated future
        # consumer's id, e.g. the ticket protocol naming the next
        # mutator), and readers of the shadowed version can hold any id
        # below the shadowing one — so the bound must also dominate every
        # pending block's ``shadowed_by``.
        self._recorded_youngest = max(
            [self.tracker.max_seen]
            + [blk.shadowed_by for blk, _ in self._pending]
        )
        self.stats.gc_phases += 1
        if self.phase_hooks:
            self._fire_phase("start")
        self._try_finalize()

    def _on_task_end(self, task_id: int) -> None:
        if self._phase_active:
            self._try_finalize()

    # -- allocation-pressure (emergency) collection ---------------------------

    def reclaim_pending(self) -> bool:
        """Is there anything a future reclaim could possibly free?

        Used by the manager's backpressure path to decide between
        stalling (a queued block may become unreachable as tasks end)
        and raising the terminal :class:`FreeListExhausted` (nothing is
        queued, so no reclaim will ever produce a block).
        """
        return bool(self._shadowed or self._pending)

    def emergency_collect(self) -> int:
        """Allocation-pressure collection; returns blocks freed.

        The watermark phases bound reclamation by task ids — a phase
        cannot finalize while any task live at its start is still live
        (see the module docstring) — which is useless under allocation
        pressure: the stalled requester is itself live, so waiting on a
        phase would self-deadlock.  Instead, reclaim per block with a
        precise reachability check.  A queued block is freed iff

        - it is not locked and not its list's head,
        - it is not the overall latest version of its address (a
          LOAD-LATEST with a high cap must still find it),
        - every live task id is *above* its version — rule 1 means a
          task only addresses versions at or above its own id, so no
          live task can exact-read it — and
        - no live task's capped LOAD-LATEST selects it.

        This is the same safety argument the watermark phase makes in
        aggregate, applied block-by-block, and it satisfies the
        sanitizer's per-reclaim audit.

        An active epoch pin (repro.recovery) additionally holds the
        checkpoint's version frontier.  A pin must bound, not starve:
        if a pass frees nothing *because* of the pin, the pin is dropped
        — forfeiting the rollback point, counted in ``pin_drops`` — and
        the pass runs once more, so allocation pressure always wins over
        recoverability (cf. space-bounded multiversion GC).  The drop is
        deterministic, hence identical in a replay.
        """
        if not self.enabled:
            return 0
        self.stats.emergency_gc_phases += 1
        if self.phase_hooks:
            self._fire_phase("emergency")
        freed, pin_kept = self._emergency_pass()
        if freed == 0 and pin_kept > 0:
            self.epoch_pin = None
            self.pin_drops += 1
            freed, _ = self._emergency_pass()
        if self._phase_active and not self._pending:
            self._phase_active = False
            if self.phase_hooks:
                self._fire_phase("end")
        return freed

    def _emergency_pass(self) -> tuple[int, int]:
        """One reachability sweep; returns ``(freed, kept-by-pin)``."""
        live = sorted(self.tracker.live_ids)
        lowest = live[0] if live else None
        pin = self.epoch_pin
        freed = 0
        pin_kept = 0
        for queue in (self._pending, self._shadowed):
            kept: list[tuple[VersionBlock, VersionList]] = []
            for block, vlist in queue:
                if self._reachable(block, vlist, live, lowest):
                    kept.append((block, vlist))
                    continue
                if pin is not None and (vlist.vaddr, block.version) in pin:
                    self.stats.gc_pin_kept += 1
                    pin_kept += 1
                    kept.append((block, vlist))
                    continue
                vlist.remove(block)
                self.free_list.release(block.paddr)
                for hook in self.reclaim_hooks:
                    hook(vlist.vaddr, block.version)
                self.stats.gc_reclaimed += 1
                freed += 1
            queue[:] = kept
        return freed, pin_kept

    def _reachable(
        self,
        block: VersionBlock,
        vlist: VersionList,
        live: list[int],
        lowest: int | None,
    ) -> bool:
        if block.locked or vlist.head is block:
            return True
        # Never reclaim the overall latest version of an address.  In
        # sorted mode the head check covers this; with unsorted lists
        # the head is merely the most recent insertion.
        latest = max((b.version for b in vlist), default=-1)
        if block.version >= latest:
            return True
        if lowest is not None and lowest <= block.version:
            return True  # exact-read safety: some live task may address it
        # Renaming safety: readers of a shadowed version always have ids
        # below the shadowing version id (which may exceed every begun
        # task's id), and future tasks never spawn below the lowest live
        # id — so the block is free only once the lowest live id reaches
        # its shadower.
        if lowest is not None and lowest < block.shadowed_by:
            return True
        for t in live:
            found, _ = vlist.find_latest(t)
            if found is block:
                return True
        return False

    def _try_finalize(self) -> None:
        if self._pending:  # an emptied pending list just closes the phase
            oldest = self.tracker.lowest_active()
            if oldest is not None and oldest <= self._recorded_youngest:
                return
        self._finalize()

    def _finalize(self) -> None:
        """Drain the pending list into the free list."""
        pin = self.epoch_pin
        kept: list[tuple[VersionBlock, VersionList]] = []
        for block, vlist in self._pending:
            # Defensive checks: a locked block or a list head (the current
            # latest version) is never reclaimed; it returns to the
            # shadowed list and waits for a later phase.
            if block.locked or vlist.head is block:
                kept.append((block, vlist))
                continue
            # Epoch pin (repro.recovery): a block on the latest
            # checkpoint's frontier waits for the next marker to advance
            # the pin past it.
            if pin is not None and (vlist.vaddr, block.version) in pin:
                self.stats.gc_pin_kept += 1
                kept.append((block, vlist))
                continue
            vlist.remove(block)
            self.free_list.release(block.paddr)
            # The dead block's cache lines are left alone: they may also
            # hold live version blocks (4 per 64 B line), and a stale dead
            # block is harmless — coherence handles the line when the
            # free-list reuses the address.
            for hook in self.reclaim_hooks:
                hook(vlist.vaddr, block.version)
            self.stats.gc_reclaimed += 1
        self._pending = []
        for item in kept:
            item[0].shadowed = True
            self._shadowed.append(item)
        self._phase_active = False
        if self.phase_hooks:
            self._fire_phase("end")
