"""The O-structure Manager: versioned-memory operations over the caches.

One manager serves the whole machine (the paper places an O-structure
manager next to each L1 plus one at the L2; a single object with per-core
compressed-line state models the same protocol while keeping the functional
version store coherent by construction).

Lookup proceeds exactly as in Section III-A:

1. **Direct access** — if the requesting core's L1 holds the compressed
   version-block line for the address and the wanted version is among its
   (up to eight) entries, the access completes in one L1 hit.
2. **Full lookup** — otherwise the version-block list is walked from its
   head.  Each visited block charges one hierarchy access; with pollution
   avoidance enabled, traversed blocks are *not* installed in the caches —
   only the block holding the requested version is, and it is also added
   to the compressed line (selective caching of versions accessed during
   full lookups).

Blocking semantics (uncreated or locked versions) are delivered to the
core as :class:`StallSignal`; the core registers a waiter and retries when
the address is notified (store or unlock).  Writes to an O-structure's
root line invalidate other cores' copies through the coherence directory,
which — via the L1 eviction hooks — discards their compressed lines, the
paper's "simplest course of action" for compressed-line coherence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..errors import (
    FreeListExhausted,
    NotLockedError,
    ProtectionFault,
    SimulationError,
    VersionExistsError,
)
from .compression import CompressedLine
from .version_block import VersionBlock, VersionList

if TYPE_CHECKING:  # pragma: no cover
    from ..config import MachineConfig
    from ..sim.engine import Simulator
    from ..sim.hierarchy import MemoryHierarchy
    from ..sim.stats import SimStats
    from .free_list import FreeList
    from .gc import GarbageCollector
    from .page_table import PageTable


#: Sentinel waiter-queue key for cores stalled on allocation pressure
#: (free-list backpressure).  Not a real address: it never names a page
#: or a version list, and the deadlock diagnostics special-case it.
ALLOC_WAIT = -1


class StallSignal(Exception):
    """An O-structure operation must block; the core registers a waiter.

    ``vaddr`` is the address the stalled operation targeted;
    ``wait_addr`` is the waiter-queue key the core must park on (it
    differs from ``vaddr`` only for allocation backpressure, which
    parks on :data:`ALLOC_WAIT`).  ``backpressure`` marks stalls caused
    by version-block allocation pressure rather than version state.
    """

    def __init__(
        self,
        vaddr: int,
        reason: str,
        *,
        wait_addr: int | None = None,
        backpressure: bool = False,
    ):
        self.vaddr = vaddr
        self.reason = reason
        self.wait_addr = vaddr if wait_addr is None else wait_addr
        self.backpressure = backpressure
        super().__init__(f"stall at 0x{vaddr:x}: {reason}")


class _DirectEntry:
    """Per-(core, address) compressed line plus the block refs it shadows."""

    __slots__ = ("line", "blocks")

    def __init__(self) -> None:
        self.line = CompressedLine()
        self.blocks: dict[int, VersionBlock] = {}

    def put(self, block: VersionBlock) -> bool:
        ok = self.line.put(block.version, block.value, block.locked_by)
        if ok:
            self.blocks[block.version] = block
            # The line may have evicted entries to honour capacity/range.
            live = set(self.line.versions())
            for v in list(self.blocks):
                if v not in live:
                    del self.blocks[v]
        return ok

    def get(self, version: int) -> VersionBlock | None:
        if self.line.get(version) is None:
            return None
        return self.blocks.get(version)

    def drop(self, version: int) -> None:
        self.line.drop(version)
        self.blocks.pop(version, None)


class _WakeBatch:
    """One scheduled event that runs a whole waiter list in order.

    Batch records (and the waiter lists they carry) are pooled on the
    manager: notifications are the highest-frequency allocation site in
    contended runs, and recycling the record plus its list makes the
    park/notify/retry cycle allocation-free in steady state.  A record is
    returned to the pool only after it fires cleanly; one abandoned by a
    propagating fault simply falls to the garbage collector.
    """

    __slots__ = ("manager", "cbs")

    def __init__(self, manager: "OStructureManager"):
        self.manager = manager
        self.cbs: list[Callable[[], None]] | None = None

    def __call__(self) -> None:
        cbs = self.cbs
        assert cbs is not None
        self.cbs = None
        for cb in cbs:
            cb()
        cbs.clear()
        manager = self.manager
        manager._list_pool.append(cbs)
        manager._batch_pool.append(self)


class OStructureManager:
    """Implements the seven versioned-memory operations of Section II-A."""

    def __init__(
        self,
        *,
        config: "MachineConfig",
        sim: "Simulator",
        hierarchy: "MemoryHierarchy",
        page_table: "PageTable",
        free_list: "FreeList",
        gc: "GarbageCollector",
        stats: "SimStats",
    ):
        self.config = config
        self.sim = sim
        self.hierarchy = hierarchy
        self.page_table = page_table
        self.free_list = free_list
        self.gc = gc
        self.stats = stats
        #: Metrics registry (repro.obs), or ``None``: every instrumented
        #: path below gates on a single attribute check so the disabled
        #: configuration adds no measurable work (the perf gate enforces
        #: this).
        self.metrics = None
        #: vaddr -> version list (the functional version store).
        self.lists: dict[int, VersionList] = {}
        #: Per-core compressed-line state: vaddr -> _DirectEntry.
        self._direct: list[dict[int, _DirectEntry]] = [
            {} for _ in range(config.num_cores)
        ]
        #: Per-core reverse index: L1 block number -> vaddrs cached there.
        self._block_index: list[dict[int, set[int]]] = [
            {} for _ in range(config.num_cores)
        ]
        #: vaddr -> callbacks waiting for a store/unlock at that address.
        self._waiters: dict[int, list[Callable[[], None]]] = {}
        # Recycled wake-batch records and waiter lists (see _WakeBatch).
        self._batch_pool: list[_WakeBatch] = []
        self._list_pool: list[list[Callable[[], None]]] = []
        #: Addresses registered as data-structure roots (stall accounting).
        self.roots: set[int] = set()
        # One-entry memo of the last (core, vaddr) -> _DirectEntry lookup.
        # The fast path touches the same compressed line several times per
        # operation (_direct_lookup then _cache_version); memoising the
        # dict probe is safe because every removal below invalidates it.
        self._memo_core: int = -1
        self._memo_vaddr: int = -1
        self._memo_entry: _DirectEntry | None = None
        #: Callbacks ``fn(vaddr, version)`` fired when an aborted task's
        #: uncommitted version is rolled back (distinct from GC reclaim
        #: hooks: the sanitizer audits the two events differently).
        self.drop_hooks: list[Callable[[int, int], None]] = []
        #: task id -> [(vaddr, version), ...] it created, in order.
        #: Tracked only when something can abort tasks (watchdog or an
        #: abort-task fault plan) — it is pure overhead otherwise.
        self._created: dict[int, list[tuple[int, int]]] = {}
        self._track_created = bool(
            config.watchdog_cycles > 0
            or any(f.kind == "abort-task" for f in config.faults)
        )
        for core_id in range(config.num_cores):
            hierarchy.add_l1_evict_hook(core_id, self._make_discard_hook(core_id))
        gc.reclaim_hooks.append(self._on_reclaim)
        gc.tracker.on_end.append(self._on_task_end)

    # ------------------------------------------------------------------
    # Compressed-line (direct access) state.
    # ------------------------------------------------------------------

    def _make_discard_hook(self, core_id: int):
        def hook(block: int) -> None:
            vaddrs = self._block_index[core_id].pop(block, None)
            if vaddrs:
                self._memo_core = -1
                for vaddr in vaddrs:
                    self._direct[core_id].pop(vaddr, None)

        return hook

    def _on_reclaim(self, vaddr: int, version: int) -> None:
        for core_direct in self._direct:
            entry = core_direct.get(vaddr)
            if entry is not None:
                entry.drop(version)
        # A reclaimed block is a free block: backpressured cores retry.
        if self._waiters.get(ALLOC_WAIT):
            self._notify(ALLOC_WAIT)

    def _on_task_end(self, task_id: int) -> None:
        self._created.pop(task_id, None)
        # A task ending raises the lowest-live bound, which may make
        # shadowed blocks reclaimable: let backpressured cores re-probe.
        if self._waiters.get(ALLOC_WAIT):
            self._notify(ALLOC_WAIT)

    def _cache_version(self, core_id: int, vaddr: int, block: VersionBlock) -> None:
        """Selectively cache one version in the core's compressed line."""
        if not self.config.compression_enabled:
            return
        if core_id == self._memo_core and vaddr == self._memo_vaddr:
            entry = self._memo_entry
            assert entry is not None
        else:
            direct = self._direct[core_id]
            entry = direct.get(vaddr)
            if entry is None:
                entry = _DirectEntry()
                direct[vaddr] = entry
                self._block_index[core_id].setdefault(vaddr >> 6, set()).add(vaddr)
            self._memo_core = core_id
            self._memo_vaddr = vaddr
            self._memo_entry = entry
        entry.put(block)
        metrics = self.metrics
        if metrics is not None:
            metrics.line_occupancy.observe(len(entry.line))

    def _direct_lookup(
        self, core_id: int, vaddr: int, version: int | None, cap: int | None
    ) -> VersionBlock | None:
        """Try the single-L1-access direct path.

        ``version`` requests an exact id.  ``cap`` requests the latest
        version <= cap, which the compressed line can only answer safely
        when it holds either version ``cap`` itself or the list's global
        head (the overall latest version) at or below the cap.
        """
        if not self.config.compression_enabled:
            return None
        if not self.hierarchy.l1s[core_id].contains(vaddr >> 6):
            return None
        if core_id == self._memo_core and vaddr == self._memo_vaddr:
            entry = self._memo_entry
        else:
            entry = self._direct[core_id].get(vaddr)
            if entry is not None:
                self._memo_core = core_id
                self._memo_vaddr = vaddr
                self._memo_entry = entry
        if entry is None:
            return None
        if version is not None:
            return entry.get(version)
        assert cap is not None
        exact = entry.get(cap)
        if exact is not None:
            return exact
        lst = self.lists.get(vaddr)
        if lst is not None and lst.head is not None and lst.head.version <= cap:
            return entry.get(lst.head.version)
        return None

    # ------------------------------------------------------------------
    # Waiter queues.
    # ------------------------------------------------------------------

    def add_waiter(self, vaddr: int, cb: Callable[[], None]) -> None:
        cbs = self._waiters.get(vaddr)
        if cbs is None:
            pool = self._list_pool
            cbs = pool.pop() if pool else []
            self._waiters[vaddr] = cbs
        cbs.append(cb)

    def remove_waiter(self, vaddr: int, cb: Callable[[], None]) -> bool:
        """Unregister one parked waiter.

        Returns False when the callback is no longer registered — a
        wake-up batch already popped it and will fire it shortly (the
        caller must then treat that in-flight event as stale).
        """
        cbs = self._waiters.get(vaddr)
        if cbs is None or cb not in cbs:
            return False
        cbs.remove(cb)
        if not cbs:
            del self._waiters[vaddr]
            self._list_pool.append(cbs)
        return True

    def waiter_count(self, vaddr: int) -> int:
        return len(self._waiters.get(vaddr, ()))

    def has_waiters(self) -> bool:
        return any(self._waiters.values())

    def kick_waiters(self) -> int:
        """Re-deliver every parked wake-up (lost-wake recovery).

        Pops every waiter list and schedules the callbacks directly,
        bypassing ``_notify`` — which a fault injector may have wrapped
        to drop wake-ups in the first place.  Harmless when the waits
        are legitimate: a premature retry that still cannot complete
        simply re-parks.  Returns the number of waiters woken.
        """
        woken = 0
        for vaddr in list(self._waiters):
            cbs = self._waiters.pop(vaddr, None)
            if not cbs:
                continue
            woken += len(cbs)
            self._schedule_wake(cbs, 1)
        return woken

    def _schedule_wake(self, cbs: list[Callable[[], None]], delay: int) -> None:
        """Schedule one event that fires a popped waiter list in order.

        ``cbs`` must already be detached from ``_waiters``; it is recycled
        into the list pool after delivery (immediately for the
        single-waiter direct path, by the batch record otherwise).
        """
        if len(cbs) == 1:
            self.sim.schedule(delay, cbs[0])
            cbs.clear()
            self._list_pool.append(cbs)
        else:
            pool = self._batch_pool
            batch = pool.pop() if pool else _WakeBatch(self)
            batch.cbs = cbs
            self.sim.schedule(delay, batch)

    def _notify(self, vaddr: int) -> None:
        """Wake every waiter on ``vaddr``; they retry next cycle.

        Wake-ups are batched into one event per notification rather than
        one event per waiter: the callbacks still run at ``now + 1`` in
        registration order (the batch fires at the sequence number the
        first waiter's event would have had, and nothing else can sneak
        events between consecutive waiter seqs), so simulated time and
        event ordering are identical to the per-waiter scheme while the
        heap churn is O(1) per notification instead of O(waiters).
        """
        cbs = self._waiters.pop(vaddr, None)
        if not cbs:
            return
        self._schedule_wake(cbs, 1)

    # ------------------------------------------------------------------
    # Shared lookup machinery.
    # ------------------------------------------------------------------

    def register_root(self, vaddr: int) -> None:
        """Mark an address as a data-structure root for stall statistics."""
        self.roots.add(vaddr)

    def _extra(self) -> int:
        """Injected latency plus GC interference.

        While a collection phase is active the collector shares the
        cache/manager ports with the program, which costs one extra cycle
        per versioned operation — the source of the paper's ~0.1%
        GC overhead (Section IV-F).
        """
        lat = self.config.versioned_op_extra_latency
        if self.gc.phase_active:
            lat += 1
        return lat

    def _get_list(self, vaddr: int, create: bool) -> VersionList | None:
        self.page_table.check_versioned(vaddr)
        lst = self.lists.get(vaddr)
        if lst is None and create:
            lst = VersionList(vaddr, sorted_insert=self.config.sorted_version_lists)
            self.lists[vaddr] = lst
        return lst

    def check_head(self, block: VersionBlock) -> None:
        """The hardware head-bit check: entering a list mid-way faults."""
        if not block.head:
            raise ProtectionFault(
                f"version block @0x{block.paddr:x} entered without head bit"
            )

    def _walk_cost(self, core_id: int, lst: VersionList, visited: int, found: VersionBlock | None) -> int:
        """Charge hierarchy accesses for a list walk of ``visited`` blocks.

        With pollution avoidance only the found block installs into the
        caches; every other traversed block is fetched without installing.
        """
        lat = 0
        avoid = self.config.pollution_avoidance
        b = lst.head
        i = 0
        while b is not None and i < visited:
            install = (b is found) or not avoid
            lat += self.hierarchy.access(core_id, b.paddr, install=install)
            b = b.next
            i += 1
        return lat

    def _full_lookup(
        self,
        core_id: int,
        vaddr: int,
        *,
        version: int | None = None,
        cap: int | None = None,
    ) -> tuple[int, VersionBlock | None]:
        """Walk the version-block list; returns (latency, block_or_None)."""
        self.stats.full_lookups += 1
        lat = self.hierarchy.access(core_id, vaddr)  # root pointer
        lst = self.lists.get(vaddr)
        if lst is None or lst.head is None:
            return lat, None
        self.check_head(lst.head)
        if version is not None:
            block, visited = lst.find_exact(version)
        else:
            assert cap is not None
            block, visited = lst.find_latest(cap)
        self.stats.lookup_blocks_visited += visited
        metrics = self.metrics
        if metrics is not None:
            metrics.walk_length.observe(visited)
        lat += self._walk_cost(core_id, lst, visited, block)
        if block is not None:
            self._cache_version(core_id, vaddr, block)
        return lat, block

    def _locate(
        self,
        core_id: int,
        vaddr: int,
        *,
        version: int | None = None,
        cap: int | None = None,
    ) -> tuple[int, VersionBlock | None, bool]:
        """Direct access with full-lookup fallback.

        Returns ``(latency, block_or_None, was_direct)``.
        """
        self.page_table.check_versioned(vaddr)
        block = self._direct_lookup(core_id, vaddr, version, cap)
        if block is not None:
            self.stats.direct_hits += 1
            lat = self.hierarchy.access(core_id, vaddr)  # guaranteed L1 hit
            return lat, block, True
        lat, block = self._full_lookup(core_id, vaddr, version=version, cap=cap)
        return lat, block, False

    # ------------------------------------------------------------------
    # The seven operations.
    # ------------------------------------------------------------------

    def load_version(self, core_id: int, vaddr: int, version: int) -> tuple[int, Any]:
        """LOAD-VERSION: exact-version read (Section II-A)."""
        lat, block, _ = self._locate(core_id, vaddr, version=version)
        if block is None:
            raise StallSignal(vaddr, f"version {version} not yet created")
        if block.locked:
            raise StallSignal(vaddr, f"version {version} locked by {block.locked_by}")
        return lat + self._extra(), block.value

    def load_latest(self, core_id: int, vaddr: int, cap: int) -> tuple[int, tuple[int, Any]]:
        """LOAD-LATEST: highest created version <= cap."""
        lat, block, _ = self._locate(core_id, vaddr, cap=cap)
        if block is None:
            raise StallSignal(vaddr, f"no version <= {cap} created yet")
        if block.locked:
            raise StallSignal(
                vaddr, f"latest version {block.version} locked by {block.locked_by}"
            )
        return lat + self._extra(), (block.version, block.value)

    def _allocate_block(self, vaddr: int) -> tuple[int, int]:
        """Allocate a version block, applying backpressure on pressure.

        When the free list and its refill budget are both spent, an
        emergency collection reclaims every provably unreachable
        shadowed block first.  If that produces nothing but blocks are
        still queued (they may become unreachable as tasks end), the
        requesting core is stalled on :data:`ALLOC_WAIT`; only when the
        queues are empty — reclamation provably cannot free anything —
        does :class:`FreeListExhausted` reach software.
        """
        metrics = self.metrics
        if metrics is not None:
            depth = self.free_list.free_count
            metrics.free_depth.observe(depth)
            metrics.free_depth_gauge.set(depth)
        try:
            return self.free_list.allocate()
        except FreeListExhausted:
            if not self.config.allocation_backpressure:
                raise
        self.gc.emergency_collect()
        if self.free_list.free_count:
            return self.free_list.allocate()
        if self.gc.reclaim_pending():
            self.stats.backpressure_stalls += 1
            raise StallSignal(
                vaddr,
                "version-block free list exhausted; stalling for reclamation",
                wait_addr=ALLOC_WAIT,
                backpressure=True,
            )
        raise FreeListExhausted(
            "version-block free list empty, refill budget spent, and no "
            "shadowed block can ever be reclaimed"
        )

    def store_version(
        self, core_id: int, vaddr: int, version: int, value: Any, task_id: int | None = None
    ) -> tuple[int, None]:
        """STORE-VERSION: create a new, immutable version."""
        lst = self._get_list(vaddr, create=True)
        assert lst is not None
        lat = self._extra()
        # Root pointer / predecessor line is modified: exclusive access,
        # which also invalidates other cores' compressed lines.
        lat += self.hierarchy.access(core_id, vaddr, write=True)
        paddr, trap_lat = self._allocate_block(vaddr)
        lat += trap_lat
        self.gc.maybe_trigger()
        block = VersionBlock(version, value, paddr)
        try:
            shadowed, visited = lst.insert(block)
        except SimulationError as exc:
            self.free_list.release(paddr)
            raise VersionExistsError(str(exc)) from exc
        # Walk to the insertion point (sorted mode), then acquire the two
        # cache lines — predecessor and new block — in address order.
        if visited:
            self.stats.lookup_blocks_visited += visited
            lat += self._walk_cost(core_id, lst, visited, None)
        # The new block is composed in full by the hardware, so its line
        # is write-allocated without fetching stale memory.
        lat += self.hierarchy.write_no_fetch(core_id, paddr)
        self.stats.versions_created += 1
        if shadowed is not None:
            self.gc.register_shadowed(shadowed, lst, block.version)
        if task_id is not None and self._track_created:
            self._created.setdefault(task_id, []).append((vaddr, version))
        self._cache_version(core_id, vaddr, block)
        self._notify(vaddr)
        return lat, None

    def lock_load_version(
        self, core_id: int, vaddr: int, version: int, task_id: int
    ) -> tuple[int, Any]:
        """LOCK-LOAD-VERSION: exact read plus lock."""
        lat, block, _ = self._locate(core_id, vaddr, version=version)
        if block is None:
            raise StallSignal(vaddr, f"version {version} not yet created")
        if block.locked:
            raise StallSignal(vaddr, f"version {version} locked by {block.locked_by}")
        return lat + self._lock(core_id, vaddr, block, task_id) + self._extra(), block.value

    def lock_load_latest(
        self, core_id: int, vaddr: int, cap: int, task_id: int
    ) -> tuple[int, tuple[int, Any]]:
        """LOCK-LOAD-LATEST: capped read plus lock."""
        lat, block, _ = self._locate(core_id, vaddr, cap=cap)
        if block is None:
            raise StallSignal(vaddr, f"no version <= {cap} created yet")
        if block.locked:
            raise StallSignal(
                vaddr, f"latest version {block.version} locked by {block.locked_by}"
            )
        lat += self._lock(core_id, vaddr, block, task_id) + self._extra()
        return lat, (block.version, block.value)

    def _lock(self, core_id: int, vaddr: int, block: VersionBlock, task_id: int) -> int:
        """Gain exclusive access to the block's line and set locked-by."""
        block.locked_by = task_id
        self.stats.versions_locked += 1
        lat = self.hierarchy.access(core_id, block.paddr, write=True)
        self._cache_version(core_id, vaddr, block)
        return lat

    def unlock_version(
        self,
        core_id: int,
        vaddr: int,
        version: int,
        task_id: int,
        new_version: int | None = None,
    ) -> tuple[int, None]:
        """UNLOCK-VERSION: release a lock, optionally renaming (Section II-A).

        When ``new_version`` is given, an unlocked version carrying the
        same value is created — the renaming step of hand-over-hand
        pipelining.
        """
        lat, block, _ = self._locate(core_id, vaddr, version=version)
        if block is None:
            raise NotLockedError(f"version {version} of 0x{vaddr:x} does not exist")
        if block.locked_by != task_id:
            raise NotLockedError(
                f"task {task_id} does not hold version {version} of 0x{vaddr:x} "
                f"(locked_by={block.locked_by})"
            )
        if new_version is not None:
            # Create the renamed copy *before* releasing the lock: the
            # allocation can stall on free-list backpressure, and the
            # op's retry must find its pre-state (the lock) intact.
            slat, _ = self.store_version(core_id, vaddr, new_version, block.value, task_id)
            lat += slat
        block.locked_by = None
        self.stats.versions_unlocked += 1
        lat += self.hierarchy.access(core_id, block.paddr, write=True)
        self._cache_version(core_id, vaddr, block)
        self._notify(vaddr)
        return lat + self._extra(), None

    # ------------------------------------------------------------------
    # Abort-and-retry rollback (watchdog / fault-injection recovery).
    # ------------------------------------------------------------------

    def can_abort_task(self, task_id: int) -> bool:
        """Is rolling back ``task_id`` safe right now?

        Unsafe when a version the task created was already locked by a
        *successor* (e.g. a renamed ticket baton the next task grabbed):
        dropping it is impossible and leaving it means the replay's
        re-store would fault on a duplicate.
        """
        for vaddr, version in self._created.get(task_id, ()):
            lst = self.lists.get(vaddr)
            if lst is None:
                continue
            block, _ = lst.find_exact(version)
            if block is not None and block.locked_by not in (None, task_id):
                return False
        return True

    def abort_task(self, core_id: int, task_id: int) -> int:
        """Roll back ``task_id``'s version-store footprint; returns drops.

        Releases every lock the task holds via UNLOCK-VERSION (waking
        the waiters that deadlocked on them) and drops the uncommitted
        versions it created, newest first.  The caller (the core's
        ``abort_and_retry``) re-runs the task generator from scratch;
        replay is value-deterministic because a task's reads are capped
        at its own id and versions at or below it are immutable.
        """
        # Release locks first: a version the task created *and* locked
        # must be unlocked before the drop below can remove it.  Going
        # through self.unlock_version keeps the sanitizer's mirror (and
        # its waiter notification) in the loop.
        for vaddr, lst in list(self.lists.items()):
            for block in list(lst):
                if block.locked_by == task_id:
                    self.unlock_version(core_id, vaddr, block.version, task_id)
        dropped = 0
        for vaddr, version in reversed(self._created.pop(task_id, [])):
            if self._drop_version(core_id, vaddr, version):
                dropped += 1
        return dropped

    def _drop_version(self, core_id: int, vaddr: int, version: int) -> bool:
        """Remove one uncommitted version (abort rollback); True if dropped."""
        lst = self.lists.get(vaddr)
        if lst is None:
            return False
        block, _ = lst.find_exact(version)
        if block is None or block.locked:
            # Already reclaimed, or handed off locked to a successor
            # (can_abort_task refuses the latter before it gets here).
            return False
        lst.remove(block)
        # Purge any GC queue entry or a later phase double-releases it.
        self.gc.forget_block(block)
        self.free_list.release(block.paddr)
        self.hierarchy.invalidate_everywhere(block.paddr)
        self._memo_core = -1
        for core_direct in self._direct:
            entry = core_direct.get(vaddr)
            if entry is not None:
                entry.drop(version)
        for hook in self.drop_hooks:
            hook(vaddr, version)
        if self._waiters.get(ALLOC_WAIT):
            self._notify(ALLOC_WAIT)
        return True

    # ------------------------------------------------------------------
    # O-structure lifecycle (Section III-C).
    # ------------------------------------------------------------------

    def versions_of(self, vaddr: int) -> list[int]:
        """All live version ids of an address (newest first if sorted)."""
        lst = self.lists.get(vaddr)
        return lst.versions() if lst is not None else []

    def free_ostructure(self, vaddr: int) -> int:
        """Release every version block of ``vaddr``; returns count freed.

        The caller must guarantee quiescence (no unfinished task touches
        the address); locked versions or parked waiters indicate a
        violation and fault.
        """
        lst = self.lists.pop(vaddr, None)
        if lst is None:
            return 0
        if self._waiters.get(vaddr):
            self.lists[vaddr] = lst
            raise ProtectionFault(
                f"freeing O-structure 0x{vaddr:x} with blocked waiters"
            )
        count = 0
        for block in lst:
            if block.locked:
                self.lists[vaddr] = lst
                raise ProtectionFault(
                    f"freeing O-structure 0x{vaddr:x} with locked version "
                    f"{block.version}"
                )
        for block in list(lst):
            lst.remove(block)
            self.free_list.release(block.paddr)
            self.hierarchy.invalidate_everywhere(block.paddr)
            count += 1
        # Shadowed blocks of this address may still sit on the GC's
        # queues; purge them or a later phase double-releases the paddrs
        # just returned to the free list.
        self.gc.forget_address(vaddr)
        self._memo_core = -1
        for core_id in range(self.config.num_cores):
            self._direct[core_id].pop(vaddr, None)
            idx = self._block_index[core_id].get(vaddr >> 6)
            if idx is not None:
                idx.discard(vaddr)
        return count

    def blocked_waiter_report(self) -> list[str]:
        """Describe parked waiters (deadlock diagnostics)."""
        out = []
        for vaddr, cbs in self._waiters.items():
            if not cbs:
                continue
            if vaddr == ALLOC_WAIT:
                out.append(
                    f"{len(cbs)} waiter(s) on version-block allocation "
                    f"(free-list backpressure)"
                )
            else:
                out.append(f"{len(cbs)} waiter(s) on 0x{vaddr:x}")
        return out
