"""Version blocks and per-address version-block lists (Figure 3).

A version block is the paper's 16-byte structure: version identifier
(32 bits), next pointer (physical address, 30 bits), locked-by field
(32 bits), head bit, and the 32-bit datum.  Here each block is a slotted
Python object carrying a simulated physical address assigned by the free
list; the ``next`` field is an object reference, with ``next_paddr``
mirroring the physical pointer the hardware would chase.

The list invariant follows the paper: blocks are kept sorted with the
*highest* version at the head ("newest in program order closer to the
head"), which lets lookups terminate early and simplifies garbage
collection.  The no-sorting configuration of Section IV-F inserts at the
head unconditionally instead.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import SimulationError

#: Field widths from Figure 3 (for documentation and range checks).
VERSION_ID_BITS = 32
NEXT_PTR_BITS = 30
LOCKED_BY_BITS = 32
DATA_BITS = 32

#: ``locked_by`` value meaning "not locked".
UNLOCKED: int | None = None


class VersionBlock:
    """One version of one memory location."""

    __slots__ = (
        "version", "value", "locked_by", "paddr", "next", "head",
        "shadowed", "shadowed_by",
    )

    def __init__(self, version: int, value: Any, paddr: int):
        if version < 0 or version >= (1 << VERSION_ID_BITS):
            raise SimulationError(f"version id {version} outside 32-bit range")
        self.version = version
        self.value = value
        self.locked_by: int | None = UNLOCKED
        self.paddr = paddr
        self.next: VersionBlock | None = None
        #: Head bit: set only on the block at the head of a list
        #: (checked by the hardware on access; Section III).
        self.head = False
        #: Set once this block has been registered with the GC's shadowed
        #: list, so a block is never registered twice.
        self.shadowed = False
        #: Version id of the first block that shadowed this one.  Readers
        #: of a shadowed version always have ids below it (whether they
        #: select by LOAD-LATEST or by the renaming protocols' exact
        #: loads), so it is the GC's per-block safety bound.
        self.shadowed_by = -1

    @property
    def next_paddr(self) -> int | None:
        """The physical pointer the hardware would store in ``next``."""
        return self.next.paddr if self.next is not None else None

    @property
    def locked(self) -> bool:
        return self.locked_by is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lock = f" locked_by={self.locked_by}" if self.locked else ""
        return f"<VB v{self.version}={self.value!r}{lock} @0x{self.paddr:x}>"


class VersionList:
    """The sorted version-block list of one O-structure address."""

    __slots__ = ("vaddr", "head", "length", "sorted")

    def __init__(self, vaddr: int, sorted_insert: bool = True):
        self.vaddr = vaddr
        self.head: VersionBlock | None = None
        self.length = 0
        self.sorted = sorted_insert

    def __iter__(self) -> Iterator[VersionBlock]:
        b = self.head
        while b is not None:
            yield b
            b = b.next

    def __len__(self) -> int:
        return self.length

    def versions(self) -> list[int]:
        """All version ids, head to tail (for tests and reports)."""
        return [b.version for b in self]

    # -- lookup --------------------------------------------------------------

    def find_exact(self, version: int) -> tuple[VersionBlock | None, int]:
        """Find version ``version``; returns ``(block_or_None, blocks_visited)``.

        On a sorted list the walk stops early once versions drop below the
        target — the paper's early-termination property.
        """
        visited = 0
        for b in self:
            visited += 1
            if b.version == version:
                return b, visited
            if self.sorted and b.version < version:
                return None, visited
        return None, visited

    def find_latest(self, cap: int) -> tuple[VersionBlock | None, int]:
        """Highest created version <= ``cap``; returns ``(block, visited)``."""
        visited = 0
        best: VersionBlock | None = None
        for b in self:
            visited += 1
            if b.version <= cap:
                if self.sorted:
                    return b, visited
                if best is None or b.version > best.version:
                    best = b
        return best, visited

    # -- mutation ------------------------------------------------------------

    def insert(self, block: VersionBlock) -> tuple[VersionBlock | None, int]:
        """Insert ``block`` into the list.

        Returns ``(shadowed_block, blocks_visited)`` where ``shadowed_block``
        is the version that the new block newly shadows (the next-lower
        version, when the new block is inserted above it), or ``None``.

        Sorted mode walks to the insertion point (the two-cache-line
        exclusive acquisition of Section III-A is charged by the manager);
        unsorted mode pushes at the head in O(1).
        """
        if block.next is not None:
            raise SimulationError("block already linked into a list")
        visited = 0
        if not self.sorted or self.head is None or block.version > self.head.version:
            # New head (common case: versions created in task order).
            if self.head is not None:
                visited = 1
                self.head.head = False
            block.next = self.head
            self.head = block
            block.head = True
            self.length += 1
            shadowed = block.next if self.sorted else self._shadow_scan(block)
            return shadowed, visited

        # Walk to the insertion point: first block with a smaller version.
        prev = self.head
        visited = 1
        while prev.next is not None and prev.next.version > block.version:
            prev = prev.next
            visited += 1
        if prev.version == block.version or (
            prev.next is not None and prev.next.version == block.version
        ):
            raise SimulationError(
                f"duplicate version {block.version} at 0x{self.vaddr:x}"
            )
        block.next = prev.next
        prev.next = block
        self.length += 1
        # The next-lower version becomes shadowed by the new block.
        return block.next, visited

    def _shadow_scan(self, block: VersionBlock) -> VersionBlock | None:
        """Unsorted-mode shadowing: highest version strictly below the new one."""
        best: VersionBlock | None = None
        for b in self:
            if b is block:
                continue
            if b.version < block.version and (best is None or b.version > best.version):
                best = b
        return best

    def remove(self, block: VersionBlock) -> bool:
        """Unlink ``block``; returns whether it was present."""
        prev: VersionBlock | None = None
        for b in self:
            if b is block:
                if prev is None:
                    self.head = b.next
                    if self.head is not None:
                        self.head.head = True
                else:
                    prev.next = b.next
                b.next = None
                b.head = False
                self.length -= 1
                return True
            prev = b
        return False

    def check_invariants(self) -> None:
        """Raise if structural invariants are violated (tests call this)."""
        seen: set[int] = set()
        count = 0
        prev_version: int | None = None
        for i, b in enumerate(self):
            count += 1
            if b.version in seen:
                raise SimulationError(f"duplicate version {b.version}")
            seen.add(b.version)
            if (b is self.head) != b.head:
                raise SimulationError("head bit inconsistent with list position")
            if self.sorted and prev_version is not None and b.version >= prev_version:
                raise SimulationError("list not sorted descending")
            prev_version = b.version
            if i > self.length:
                raise SimulationError("list longer than recorded length (cycle?)")
        if count != self.length:
            raise SimulationError(f"length {self.length} != counted {count}")
