"""Compressed version-block cache lines (Section III-A, Figure 3).

Eight version blocks compress into one 64-byte cache line:

- an 18-bit **version base** — the upper 18 bits of the lowest version in
  the line;
- a 4-bit **cache-line offset** — the offset of the list head within its
  64-byte line, when cached;
- eight entries of 60 bits each: 32-bit data, 14-bit version offset and
  14-bit lock offset relative to ``base << 14``.

Total: 18 + 4 + 8*60 = 502 bits <= 512.  The only restriction compression
imposes is on the *range* of versions and lockers within one line: all must
fall within ``[base << 14, (base << 14) + 2**14)``.

This module provides both the behavioural representation the O-structure
manager uses (:class:`CompressedLine`: up to 8 entries with internal LRU
and the range restriction) and a bit-exact :meth:`CompressedLine.encode` /
:meth:`CompressedLine.decode` pair that packs the line into a 512-bit
integer, demonstrating the layout actually fits.

Encoding conventions (the paper leaves these to the implementation):
offset ``0x3FFF`` in the version-offset field marks an invalid (empty)
entry, and ``0x3FFF`` in the lock-offset field means "unlocked"; both
sentinels shrink the representable offset range to ``[0, 2**14 - 2]``.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..errors import SimulationError

VERSION_BASE_BITS = 18
LINE_OFFSET_BITS = 4
VERSION_OFFSET_BITS = 14
LOCK_OFFSET_BITS = 14
DATA_BITS = 32
ENTRIES_PER_LINE = 8
ENTRY_BITS = DATA_BITS + VERSION_OFFSET_BITS + LOCK_OFFSET_BITS  # 60
LINE_BITS = VERSION_BASE_BITS + LINE_OFFSET_BITS + ENTRIES_PER_LINE * ENTRY_BITS

#: Sentinel offsets (see module docstring).
INVALID_OFFSET = (1 << VERSION_OFFSET_BITS) - 1
UNLOCKED_OFFSET = (1 << LOCK_OFFSET_BITS) - 1

#: Largest offset a valid entry may carry.
MAX_OFFSET = INVALID_OFFSET - 1

#: Window size covered by one base value.
RANGE = 1 << VERSION_OFFSET_BITS


class CompressedLine:
    """Behavioural model of one compressed version-block line.

    Holds up to :data:`ENTRIES_PER_LINE` ``version -> (value, locked_by)``
    entries subject to the base-range restriction.  ``value`` must fit the
    32-bit data field for :meth:`encode`; the behavioural model accepts any
    value (the manager stores simulated pointers, which fit).
    """

    __slots__ = ("base", "line_offset", "_entries", "_lru", "_tick")

    def __init__(self, line_offset: int = 0):
        if not 0 <= line_offset < (1 << LINE_OFFSET_BITS):
            raise SimulationError("line offset must fit 4 bits")
        self.base = 0
        self.line_offset = line_offset
        self._entries: dict[int, tuple[Any, int | None]] = {}
        self._lru: dict[int, int] = {}
        self._tick = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, version: int) -> bool:
        return version in self._entries

    def versions(self) -> list[int]:
        return sorted(self._entries)

    @property
    def window_start(self) -> int:
        return self.base << VERSION_OFFSET_BITS

    def _fits_window(self, versions: Iterable[int], lockers: Iterable[int]) -> bool:
        vals = list(versions) + list(lockers)
        if not vals:
            return True
        lo, hi = min(vals), max(vals)
        # The base is the *upper 18 bits* of the lowest value, so offsets
        # are relative to the quantized window start, not to the minimum.
        window_start = (lo >> VERSION_OFFSET_BITS) << VERSION_OFFSET_BITS
        return hi - window_start <= MAX_OFFSET and (lo >> VERSION_OFFSET_BITS) < (
            1 << VERSION_BASE_BITS
        )

    def _rebase(self) -> None:
        """Recompute base from the lowest version/locker present."""
        vals = list(self._entries)
        for _, locked_by in self._entries.values():
            if locked_by is not None:
                vals.append(locked_by)
        if vals:
            self.base = min(vals) >> VERSION_OFFSET_BITS
            lo = self.base << VERSION_OFFSET_BITS
            # The base's window must still reach the highest offset.
            if max(vals) - lo > MAX_OFFSET:
                raise SimulationError("rebase failed: window overflow")

    def get(self, version: int) -> tuple[Any, int | None] | None:
        """Direct-access hit check; refreshes internal LRU on a hit."""
        e = self._entries.get(version)
        if e is not None:
            self._tick += 1
            self._lru[version] = self._tick
        return e

    def put(self, version: int, value: Any, locked_by: int | None) -> bool:
        """Insert or update an entry; returns False if it cannot be cached.

        Evicts least-recently-used entries when the line is full or when
        the new entry cannot share a window with the residents.  An entry
        whose own version/locker pair does not fit any window (locker more
        than ``MAX_OFFSET`` away from the version) is rejected outright.
        """
        own = [version] + ([locked_by] if locked_by is not None else [])
        if not self._fits_window(own, []):
            return False

        if version in self._entries:
            self._entries[version] = (value, locked_by)
            # A new lock value may break the window; evict others if needed.
            self._evict_until_fits(keep=version)
            self._tick += 1
            self._lru[version] = self._tick
            self._rebase()
            return True

        while len(self._entries) >= ENTRIES_PER_LINE:
            self._evict_lru()
        self._entries[version] = (value, locked_by)
        self._tick += 1
        self._lru[version] = self._tick
        self._evict_until_fits(keep=version)
        self._rebase()
        return True

    def _window_values(self) -> list[int]:
        vals = list(self._entries)
        for _, locked_by in self._entries.values():
            if locked_by is not None:
                vals.append(locked_by)
        return vals

    def _evict_until_fits(self, keep: int) -> None:
        while not self._fits_window(self._window_values(), []):
            victims = [v for v in self._entries if v != keep]
            if not victims:  # pragma: no cover - guarded by put()'s own check
                raise SimulationError("single entry cannot fit its own window")
            victim = min(victims, key=lambda v: self._lru[v])
            del self._entries[victim]
            del self._lru[victim]

    def _evict_lru(self) -> None:
        victim = min(self._lru, key=self._lru.__getitem__)
        del self._entries[victim]
        del self._lru[victim]

    def drop(self, version: int) -> None:
        """Remove one entry (e.g. its version block was reclaimed)."""
        self._entries.pop(version, None)
        self._lru.pop(version, None)
        if self._entries:
            self._rebase()

    # -- bit-exact packing ----------------------------------------------------

    def encode(self) -> int:
        """Pack into a 512-bit line image (an int), Figure 3 layout.

        Layout, LSB first: base (18) | line offset (4) | entry0 .. entry7,
        each data (32) | version offset (14) | lock offset (14).  Empty
        slots carry the invalid sentinel.  Values must fit 32 bits.
        """
        self._rebase()
        lo = self.window_start
        word = self.base | (self.line_offset << VERSION_BASE_BITS)
        shift = VERSION_BASE_BITS + LINE_OFFSET_BITS
        slots = sorted(self._entries.items())[:ENTRIES_PER_LINE]
        for i in range(ENTRIES_PER_LINE):
            if i < len(slots):
                version, (value, locked_by) = slots[i]
                if not isinstance(value, int) or not 0 <= value < (1 << DATA_BITS):
                    raise SimulationError(
                        f"value {value!r} does not fit the 32-bit data field"
                    )
                voff = version - lo
                loff = UNLOCKED_OFFSET if locked_by is None else locked_by - lo
                if not 0 <= voff <= MAX_OFFSET or not 0 <= loff <= UNLOCKED_OFFSET:
                    raise SimulationError("offset outside compressed window")
            else:
                value, voff, loff = 0, INVALID_OFFSET, UNLOCKED_OFFSET
            entry = value | (voff << DATA_BITS) | (
                loff << (DATA_BITS + VERSION_OFFSET_BITS)
            )
            word |= entry << shift
            shift += ENTRY_BITS
        return word

    @classmethod
    def decode(cls, word: int) -> "CompressedLine":
        """Inverse of :meth:`encode`."""
        mask = lambda bits: (1 << bits) - 1  # noqa: E731
        line = cls(line_offset=(word >> VERSION_BASE_BITS) & mask(LINE_OFFSET_BITS))
        line.base = word & mask(VERSION_BASE_BITS)
        lo = line.base << VERSION_OFFSET_BITS
        shift = VERSION_BASE_BITS + LINE_OFFSET_BITS
        for _ in range(ENTRIES_PER_LINE):
            entry = (word >> shift) & mask(ENTRY_BITS)
            shift += ENTRY_BITS
            value = entry & mask(DATA_BITS)
            voff = (entry >> DATA_BITS) & mask(VERSION_OFFSET_BITS)
            loff = (entry >> (DATA_BITS + VERSION_OFFSET_BITS)) & mask(LOCK_OFFSET_BITS)
            if voff == INVALID_OFFSET:
                continue
            locked_by = None if loff == UNLOCKED_OFFSET else lo + loff
            line._entries[lo + voff] = (value, locked_by)
            line._tick += 1
            line._lru[lo + voff] = line._tick
        return line
