"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro table2
    python -m repro fig6 [--scale quick|paper] [--jobs N] [--no-cache]
    python -m repro fig7 fig8 fig9 fig10 gc
    python -m repro all --scale quick

Sweeps fan out over a process pool (``--jobs`` / ``REPRO_JOBS``, default:
all host cores) and memoise finished runs under ``.repro_cache/`` so a
re-run only simulates what changed (``--no-cache`` / ``REPRO_CACHE=0`` to
disable).
"""

from __future__ import annotations

import argparse
import sys
import time

from .errors import ConfigError
from .harness import experiments
from .harness.presets import get_scale
from .harness.runner import SweepRunner

EXPERIMENTS = {
    "table2": lambda scale, runner: experiments.table2_platform(),
    "fig6": lambda scale, runner: experiments.fig6_speedup(scale, runner=runner),
    "fig7": lambda scale, runner: experiments.fig7_scalability(scale, runner=runner),
    "fig8": lambda scale, runner: experiments.fig8_snapshot_isolation(scale, runner=runner),
    "fig9": lambda scale, runner: experiments.fig9_l1_size(scale, runner=runner),
    "fig10": lambda scale, runner: experiments.fig10_latency(scale, runner=runner),
    "gc": lambda scale, runner: experiments.gc_overhead(scale, runner=runner),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the IPDPS 2018 O-structures evaluation.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help=f"experiments to run: {', '.join(EXPERIMENTS)}, 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=("quick", "paper"),
        help="workload scale (paper sizes take hours on a Python simulator)",
    )
    parser.add_argument(
        "-j", "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel simulation workers (default: REPRO_JOBS or all host cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always simulate; do not read or write .repro_cache/",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: REPRO_CACHE_DIR or .repro_cache/)",
    )
    args = parser.parse_args(argv)

    if args.targets == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0

    targets = list(EXPERIMENTS) if "all" in args.targets else args.targets
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    scale = get_scale(args.scale)
    try:
        runner = SweepRunner(
            jobs=args.jobs,
            use_cache=False if args.no_cache else None,
            cache_dir=args.cache_dir,
        )
    except ConfigError as exc:
        parser.error(str(exc))
    for name in targets:
        before = runner.stats.snapshot()
        start = time.perf_counter()
        result = EXPERIMENTS[name](scale, runner)
        elapsed = time.perf_counter() - start
        print(result["text"])
        print(f"[{name}: {elapsed:.1f}s; {runner.stats.since(before).describe()}]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
