"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro table2
    python -m repro fig6 [--scale quick|paper] [--jobs N] [--no-cache]
    python -m repro fig7 fig8 fig9 fig10 gc
    python -m repro all --scale quick
    python -m repro check                  # sanitizer stress harness
    python -m repro faults                 # fault-injection stress harness
    python -m repro fig6 --check           # any target under the sanitizer
    python -m repro fig6 --resume          # reload a partial sweep's rows
    python -m repro fig6 --timeout 300     # kill+retry hung sweep workers
    python -m repro bench                  # record perf baselines
    python -m repro bench --compare        # fail on perf regression (CI)
    python -m repro trace binary_tree --perfetto out.json --metrics m.json
    python -m repro obs                    # metrics-on sweep summary table
    python -m repro recover rb_tree --crash-at 1000   # crash + replay demo
    python -m repro fig6 --checkpoint-every 256       # killable mid-row
    python -m repro serve --port 7270                 # MVCC service (TCP)
    python -m repro serve --self-bench --seed 0       # in-process bench
    python -m repro loadgen --port 7270 --mix write_heavy

Sweeps fan out over a process pool (``--jobs`` / ``REPRO_JOBS``, default:
all host cores) and memoise finished runs under ``.repro_cache/`` so a
re-run only simulates what changed (``--no-cache`` / ``REPRO_CACHE=0`` to
disable).

``--check`` runs every simulation with ``MachineConfig(checked=True)``:
the :mod:`repro.check` sanitizer diffs each versioned op against the
software reference model and validates structural invariants, failing
loudly on any divergence.  The dedicated ``check`` target runs the
random-schedule stress harness across all six workloads; a non-zero
violation count makes the process exit non-zero (CI smoke job).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from .config import TABLE2, MachineConfig
from .errors import ConfigError
from .harness import experiments
from .harness.presets import get_scale
from .harness.runner import SweepRunner

EXPERIMENTS = {
    "table2": lambda scale, runner, config: experiments.table2_platform(),
    "fig6": lambda scale, runner, config: experiments.fig6_speedup(
        scale, config=config, runner=runner
    ),
    "fig7": lambda scale, runner, config: experiments.fig7_scalability(
        scale, config=config, runner=runner
    ),
    "fig8": lambda scale, runner, config: experiments.fig8_snapshot_isolation(
        scale, config=config, runner=runner
    ),
    "fig9": lambda scale, runner, config: experiments.fig9_l1_size(
        scale, config=config, runner=runner
    ),
    "fig10": lambda scale, runner, config: experiments.fig10_latency(
        scale, config=config, runner=runner
    ),
    "gc": lambda scale, runner, config: experiments.gc_overhead(
        scale, config=config, runner=runner
    ),
    "obs": lambda scale, runner, config: experiments.obs_summary(
        scale, config=config, runner=runner
    ),
}


def _run_check_target(scale, config: MachineConfig, budget: int | None):
    from .check.stress import run_check

    return run_check(scale, config, budget=budget)


def _run_faults_target(scale, config: MachineConfig, budget: int | None):
    from .check.stress import run_fault_check

    return run_fault_check(scale, config, budget=budget)


def _run_bench_target(args) -> int:
    from . import perf

    baseline = args.baseline if args.baseline else perf.DEFAULT_BASELINE
    if args.compare:
        tolerance = (
            perf.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
        )
        ok, report = perf.compare(baseline, tolerance)
        print(report)
        if not ok:
            print("PERF: regression gate failed", file=sys.stderr)
            return 1
        return 0
    doc = perf.record(baseline)
    print(perf._format_rows(doc))
    print(f"baselines written to {baseline}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        # Dedicated subcommand with its own argument surface (workload
        # positional + export paths); see repro.obs.cli.
        from .obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "recover":
        # Crash-and-recover demonstration; see repro.recovery.cli.
        from .recovery.cli import main as recover_main

        return recover_main(argv[1:])
    if argv and argv[0] == "serve":
        # The sharded MVCC service over repro.sw; see repro.serve.cli.
        from .serve.cli import main_serve

        return main_serve(argv[1:])
    if argv and argv[0] == "loadgen":
        # Load generator against a running service; see repro.serve.cli.
        from .serve.cli import main_loadgen

        return main_loadgen(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the IPDPS 2018 O-structures evaluation.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help=(
            f"experiments to run: {', '.join(EXPERIMENTS)}, 'check', "
            f"'all', or 'list'"
        ),
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=("quick", "paper"),
        help="workload scale (paper sizes take hours on a Python simulator)",
    )
    parser.add_argument(
        "-j", "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel simulation workers (default: REPRO_JOBS or all host cores)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always simulate; do not read or write .repro_cache/",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted/crashed sweep from the rows already "
            "persisted in the cache (forces caching on)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-run wall-clock timeout; hung workers are killed and "
            "retried (default: REPRO_RUN_TIMEOUT or none)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: REPRO_CACHE_DIR or .repro_cache/)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="OPS",
        help=(
            "checkpoint each in-flight simulation every N versioned ops "
            "so --resume survives kill -9 mid-row (default: "
            "REPRO_CKPT_EVERY or off; images under REPRO_CKPT_DIR)"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "run simulations under the repro.check sanitizer "
            "(differential oracle + invariant checkpoints; ~2x host time)"
        ),
    )
    parser.add_argument(
        "--check-budget",
        type=int,
        default=None,
        metavar="OPS",
        help="ops per random schedule for the 'check' target (CI smoke)",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help=(
            "for the 'bench' target: compare against the committed "
            "baselines instead of recording them; exit 1 on regression"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed fractional perf drop for bench --compare (default 0.25)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="bench baseline file (default: benchmarks/baselines.json)",
    )
    args = parser.parse_args(argv)
    if args.resume and args.no_cache:
        parser.error("--resume and --no-cache are mutually exclusive")

    if "bench" in args.targets:
        if args.targets != ["bench"]:
            parser.error("'bench' cannot be combined with other targets")
        return _run_bench_target(args)

    known = list(EXPERIMENTS) + ["check", "faults"]
    if args.targets == ["list"]:
        for name in known:
            print(name)
        return 0

    targets = known if "all" in args.targets else args.targets
    unknown = [t for t in targets if t not in known]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    scale = get_scale(args.scale)
    config = TABLE2
    if args.check:
        config = dataclasses.replace(config, checked=True)
        # Checked runs trip the cache's code-hash anyway, but caching a
        # sanitizer pass would also hide repeat-run violations.
        args.no_cache = True
    try:
        runner = SweepRunner(
            jobs=args.jobs,
            use_cache=True if args.resume else (False if args.no_cache else None),
            cache_dir=args.cache_dir,
            timeout=args.timeout,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
        )
    except ConfigError as exc:
        parser.error(str(exc))
    violations = 0
    for name in targets:
        before = runner.stats.snapshot()
        start = time.perf_counter()
        if name == "check":
            result = _run_check_target(scale, config, args.check_budget)
            violations += result["violations"]
        elif name == "faults":
            result = _run_faults_target(scale, config, args.check_budget)
            violations += result["violations"]
        else:
            result = EXPERIMENTS[name](scale, runner, config)
        elapsed = time.perf_counter() - start
        print(result["text"])
        print(f"[{name}: {elapsed:.1f}s; {runner.stats.since(before).describe()}]\n")
    if violations:
        print(f"SANITIZER: {violations} violation(s) detected", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
