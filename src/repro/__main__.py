"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list
    python -m repro table2
    python -m repro fig6 [--scale quick|paper]
    python -m repro fig7 fig8 fig9 fig10 gc
    python -m repro all --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time

from .harness import experiments
from .harness.presets import get_scale

EXPERIMENTS = {
    "table2": lambda scale: experiments.table2_platform(),
    "fig6": experiments.fig6_speedup,
    "fig7": experiments.fig7_scalability,
    "fig8": experiments.fig8_snapshot_isolation,
    "fig9": experiments.fig9_l1_size,
    "fig10": experiments.fig10_latency,
    "gc": experiments.gc_overhead,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the IPDPS 2018 O-structures evaluation.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help=f"experiments to run: {', '.join(EXPERIMENTS)}, 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=("quick", "paper"),
        help="workload scale (paper sizes take hours on a Python simulator)",
    )
    args = parser.parse_args(argv)

    if args.targets == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0

    targets = list(EXPERIMENTS) if "all" in args.targets else args.targets
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    scale = get_scale(args.scale)
    for name in targets:
        start = time.perf_counter()
        result = EXPERIMENTS[name](scale)
        elapsed = time.perf_counter() - start
        print(result["text"])
        print(f"[{name}: {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
