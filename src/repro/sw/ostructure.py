"""A thread-safe software O-structure.

One :class:`SWOStructure` is one versioned memory location.  All seven
operations of Section II-A are provided with blocking semantics delivered
through a condition variable: loads of uncreated versions wait, loads of
locked versions wait, lock attempts on locked versions wait.  Timeouts
turn latent deadlocks into diagnosable errors instead of hangs.
"""

from __future__ import annotations

import threading
from typing import Any

from ..errors import (
    NotLockedError,
    SimulationError,
    VersionExistsError,
)


class SWTimeout(SimulationError):
    """A blocking operation exceeded its timeout (likely a protocol bug)."""


class SWOStructure:
    """One software-versioned memory location."""

    def __init__(self, name: str = "ostruct"):
        self.name = name
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        #: version -> value (versions are immutable once created).
        self._versions: dict[int, Any] = {}
        #: version -> locking task id.
        self._locked: dict[int, int] = {}

    # -- helpers -------------------------------------------------------------

    def _latest_at_or_below(self, cap: int) -> int | None:
        best = None
        for v in self._versions:
            if v <= cap and (best is None or v > best):
                best = v
        return best

    def _wait(self, predicate, timeout: float) -> Any:
        """Wait until ``predicate()`` returns non-None; condvar is held."""
        deadline = None
        result = predicate()
        while result is None:
            if not self._changed.wait(timeout=timeout):
                raise SWTimeout(
                    f"{self.name}: blocked operation timed out after {timeout}s"
                )
            result = predicate()
        return result

    # -- the seven operations -----------------------------------------------------

    def store_version(self, version: int, value: Any) -> None:
        """STORE-VERSION: create an immutable version."""
        with self._changed:
            if version in self._versions:
                raise VersionExistsError(
                    f"{self.name}: version {version} already exists"
                )
            self._versions[version] = value
            self._changed.notify_all()

    def load_version(self, version: int, timeout: float = 10.0) -> Any:
        """LOAD-VERSION: blocks until ``version`` exists and is unlocked."""
        with self._changed:

            def ready():
                if version in self._versions and version not in self._locked:
                    return (self._versions[version],)
                return None

            return self._wait(ready, timeout)[0]

    def load_latest(self, cap: int, timeout: float = 10.0) -> tuple[int, Any]:
        """LOAD-LATEST: highest version <= cap, blocking while locked.

        Re-evaluates after every change, so a version created while
        waiting is picked up (the renaming-unlock handoff).
        """
        with self._changed:

            def ready():
                v = self._latest_at_or_below(cap)
                if v is None or v in self._locked:
                    return None
                return (v, self._versions[v])

            return self._wait(ready, timeout)

    def lock_load_version(self, version: int, task_id: int, timeout: float = 10.0) -> Any:
        """LOCK-LOAD-VERSION: exact load plus lock (atomic at grant time)."""
        with self._changed:

            def ready():
                if version in self._versions and version not in self._locked:
                    return (self._versions[version],)
                return None

            value = self._wait(ready, timeout)[0]
            self._locked[version] = task_id
            return value

    def lock_load_latest(
        self, cap: int, task_id: int, timeout: float = 10.0
    ) -> tuple[int, Any]:
        """LOCK-LOAD-LATEST: capped load plus lock."""
        with self._changed:

            def ready():
                v = self._latest_at_or_below(cap)
                if v is None or v in self._locked:
                    return None
                return (v, self._versions[v])

            version, value = self._wait(ready, timeout)
            self._locked[version] = task_id
            return version, value

    def unlock_version(
        self, version: int, task_id: int, new_version: int | None = None
    ) -> None:
        """UNLOCK-VERSION: release; optionally rename to ``new_version``."""
        with self._changed:
            if self._locked.get(version) != task_id:
                raise NotLockedError(
                    f"{self.name}: task {task_id} does not hold version {version}"
                )
            del self._locked[version]
            if new_version is not None:
                if new_version in self._versions:
                    raise VersionExistsError(
                        f"{self.name}: rename target {new_version} already exists"
                    )
                self._versions[new_version] = self._versions[version]
            self._changed.notify_all()

    # -- introspection / GC support --------------------------------------------------

    def versions(self) -> list[int]:
        with self._lock:
            return sorted(self._versions)

    def is_locked(self, version: int) -> bool:
        with self._lock:
            return version in self._locked

    def locker_of(self, version: int) -> int | None:
        with self._lock:
            return self._locked.get(version)

    def reclaim_below(self, floor: int) -> int:
        """Drop shadowed versions no task at or above ``floor`` can read.

        Keeps the highest version < floor (it is the LOAD-LATEST target
        for cap == floor) and everything >= floor; returns count removed.
        Locked versions are never reclaimed.
        """
        with self._changed:
            keep_boundary = self._latest_at_or_below(floor)
            removed = 0
            for v in list(self._versions):
                if v < floor and v != keep_boundary and v not in self._locked:
                    del self._versions[v]
                    removed += 1
            return removed
