"""A thread-safe software O-structure.

One :class:`SWOStructure` is one versioned memory location.  All seven
operations of Section II-A are provided with blocking semantics delivered
through a condition variable: loads of uncreated versions wait, loads of
locked versions wait, lock attempts on locked versions wait.  Timeouts
turn latent deadlocks into diagnosable errors instead of hangs.

Besides the blocking API, each read/lock operation has a non-blocking
``try_*`` twin that returns ``None`` where the blocking form would wait.
Those probes exist for :mod:`repro.check`: the differential oracle runs
single-threaded inside the simulator and asks "would this op complete
right now?" instead of parking a thread.  Both forms share the same
readiness predicates, so blocking and probing can never disagree.
"""

from __future__ import annotations

import threading
from typing import Any

from ..errors import (
    NotLockedError,
    SimulationError,
    VersionExistsError,
)


class SWTimeout(SimulationError):
    """A blocking operation exceeded its timeout (likely a protocol bug).

    Carries structured context so callers above the structure — the
    serving layer's deadline mapping in particular — can report *why*
    the wait never completed instead of parroting a bare message:
    ``address`` (the structure's name), ``op``, the ``wanted`` exact
    version or ``cap`` for latest-loads, the ``latest`` version present
    at expiry, the lock ``holder`` blocking the candidate version (if
    any), and the ``timeout`` that expired.  ``str()`` output is
    unchanged from the pre-context era.
    """

    def __init__(
        self,
        message: str,
        *,
        address: str | None = None,
        op: str | None = None,
        wanted: int | None = None,
        cap: int | None = None,
        latest: int | None = None,
        holder: int | None = None,
        timeout: float | None = None,
    ):
        self.address = address
        self.op = op
        self.wanted = wanted
        self.cap = cap
        self.latest = latest
        self.holder = holder
        self.timeout = timeout
        super().__init__(message)

    @property
    def context(self) -> dict:
        """The non-None structured fields as a JSON-able dict."""
        fields = {
            "address": self.address,
            "op": self.op,
            "wanted": self.wanted,
            "cap": self.cap,
            "latest": self.latest,
            "holder": self.holder,
            "timeout": self.timeout,
        }
        return {k: v for k, v in fields.items() if v is not None}

    def describe(self) -> str:
        """The message plus the context fields (diagnostic rendering)."""
        ctx = self.context
        if not ctx:
            return str(self)
        detail = ", ".join(f"{k}={v}" for k, v in ctx.items())
        return f"{self} [{detail}]"


#: Sentinel distinguishing "absent" from a stored ``None`` value.
_MISSING = object()


class SWOStructure:
    """One software-versioned memory location."""

    def __init__(self, name: str = "ostruct"):
        self.name = name
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        #: version -> value (versions are immutable once created).
        self._versions: dict[int, Any] = {}
        #: version -> locking task id.
        self._locked: dict[int, int] = {}

    # -- helpers -------------------------------------------------------------

    def _latest_at_or_below(self, cap: int) -> int | None:
        best = None
        for v in self._versions:
            if v <= cap and (best is None or v > best):
                best = v
        return best

    def _ready_exact(self, version: int) -> tuple[Any] | None:
        """``(value,)`` if ``version`` exists and is unlocked, else None."""
        if version in self._versions and version not in self._locked:
            return (self._versions[version],)
        return None

    def _ready_latest(self, cap: int) -> tuple[int, Any] | None:
        """``(version, value)`` of the loadable latest <= cap, else None."""
        v = self._latest_at_or_below(cap)
        if v is None or v in self._locked:
            return None
        return (v, self._versions[v])

    def _wait(
        self,
        predicate,
        timeout: float,
        op: str,
        wanted: int | None = None,
        cap: int | None = None,
    ) -> Any:
        """Wait until ``predicate()`` returns non-None; condvar is held.

        On expiry, raises :class:`SWTimeout` with structured context
        gathered under the lock: the latest version present and — for
        the version the caller was after (exact ``wanted``, or the best
        candidate <= ``cap``) — the task currently holding its lock.
        """
        result = predicate()
        while result is None:
            if not self._changed.wait(timeout=timeout):
                candidate = wanted
                if candidate is None and cap is not None:
                    candidate = self._latest_at_or_below(cap)
                raise SWTimeout(
                    f"{self.name}: blocked operation timed out after {timeout}s",
                    address=self.name,
                    op=op,
                    wanted=wanted,
                    cap=cap,
                    latest=max(self._versions, default=None),
                    holder=(
                        self._locked.get(candidate)
                        if candidate is not None
                        else None
                    ),
                    timeout=timeout,
                )
            result = predicate()
        return result

    # -- the seven operations -----------------------------------------------------

    def store_version(self, version: int, value: Any) -> None:
        """STORE-VERSION: create an immutable version."""
        with self._changed:
            if version in self._versions:
                raise VersionExistsError(
                    f"{self.name}: version {version} already exists"
                )
            self._versions[version] = value
            self._changed.notify_all()

    def load_version(self, version: int, timeout: float = 10.0) -> Any:
        """LOAD-VERSION: blocks until ``version`` exists and is unlocked."""
        with self._changed:
            return self._wait(
                lambda: self._ready_exact(version), timeout,
                "load-version", wanted=version,
            )[0]

    def load_latest(self, cap: int, timeout: float = 10.0) -> tuple[int, Any]:
        """LOAD-LATEST: highest version <= cap, blocking while locked.

        Re-evaluates after every change, so a version created while
        waiting is picked up (the renaming-unlock handoff).
        """
        with self._changed:
            return self._wait(
                lambda: self._ready_latest(cap), timeout, "load-latest", cap=cap
            )

    def lock_load_version(self, version: int, task_id: int, timeout: float = 10.0) -> Any:
        """LOCK-LOAD-VERSION: exact load plus lock (atomic at grant time)."""
        with self._changed:
            value = self._wait(
                lambda: self._ready_exact(version), timeout,
                "lock-load-version", wanted=version,
            )[0]
            self._locked[version] = task_id
            return value

    def lock_load_latest(
        self, cap: int, task_id: int, timeout: float = 10.0
    ) -> tuple[int, Any]:
        """LOCK-LOAD-LATEST: capped load plus lock."""
        with self._changed:
            version, value = self._wait(
                lambda: self._ready_latest(cap), timeout,
                "lock-load-latest", cap=cap,
            )
            self._locked[version] = task_id
            return version, value

    def unlock_version(
        self, version: int, task_id: int, new_version: int | None = None
    ) -> None:
        """UNLOCK-VERSION: release; optionally rename to ``new_version``."""
        with self._changed:
            if self._locked.get(version) != task_id:
                raise NotLockedError(
                    f"{self.name}: task {task_id} does not hold version {version}"
                )
            del self._locked[version]
            if new_version is not None:
                if new_version in self._versions:
                    raise VersionExistsError(
                        f"{self.name}: rename target {new_version} already exists"
                    )
                self._versions[new_version] = self._versions[version]
            self._changed.notify_all()

    # -- non-blocking probes (differential-oracle support) --------------------

    def try_load_version(self, version: int) -> tuple[Any] | None:
        """``(value,)`` if LOAD-VERSION would complete now, else None."""
        with self._lock:
            return self._ready_exact(version)

    def try_load_latest(self, cap: int) -> tuple[int, Any] | None:
        """``(version, value)`` if LOAD-LATEST would complete now, else None."""
        with self._lock:
            return self._ready_latest(cap)

    def try_lock_load_version(self, version: int, task_id: int) -> tuple[Any] | None:
        """Atomically lock-and-load ``version`` iff it is ready now."""
        with self._lock:
            result = self._ready_exact(version)
            if result is not None:
                self._locked[version] = task_id
            return result

    def try_lock_load_latest(self, cap: int, task_id: int) -> tuple[int, Any] | None:
        """Atomically lock-and-load the latest <= ``cap`` iff ready now."""
        with self._lock:
            result = self._ready_latest(cap)
            if result is not None:
                self._locked[result[0]] = task_id
            return result

    # -- introspection / GC support --------------------------------------------------

    def versions(self) -> list[int]:
        with self._lock:
            return sorted(self._versions)

    def dump(self) -> dict[int, tuple[Any, int | None]]:
        """``version -> (value, locked_by)`` snapshot (oracle comparisons)."""
        with self._lock:
            return {
                v: (val, self._locked.get(v)) for v, val in self._versions.items()
            }

    def drop_version(self, version: int) -> bool:
        """Remove one version (mirrors a hardware GC reclaim).

        Returns whether the version was present; refuses (raises) if the
        version is currently locked — reclaiming a locked version is a
        protocol violation on the hardware side too.
        """
        with self._changed:
            if version in self._locked:
                raise SimulationError(
                    f"{self.name}: cannot drop locked version {version}"
                )
            return self._versions.pop(version, _MISSING) is not _MISSING

    def is_locked(self, version: int) -> bool:
        with self._lock:
            return version in self._locked

    def locker_of(self, version: int) -> int | None:
        with self._lock:
            return self._locked.get(version)

    def reclaim_below(self, floor: int) -> int:
        """Drop shadowed versions no task at or above ``floor`` can read.

        Keeps the highest version < floor (it is the LOAD-LATEST target
        for cap == floor) and everything >= floor; returns count removed.
        Locked versions are never reclaimed.
        """
        with self._changed:
            keep_boundary = self._latest_at_or_below(floor)
            removed = 0
            for v in list(self._versions):
                if v < floor and v != keep_boundary and v not in self._locked:
                    del self._versions[v]
                    removed += 1
            return removed
