"""Task runtime over software O-structures (real threads).

Mirrors the simulator's task model: tasks carry ids, ids order versions,
TASK-BEGIN/TASK-END drive a background-free garbage collector that
reclaims shadowed versions once no live task can reach them (the floor
rule from Section III-B, applied structure-wide).

Usage::

    rt = SWRuntime(num_workers=4)
    cell = rt.new_ostructure("cell")
    def producer(ctx):
        cell.store_version(ctx.task_id, 42)
    def consumer(ctx):
        return cell.load_latest(ctx.task_id)[1]
    rt.spawn(0, producer)
    fut = rt.spawn(1, consumer)
    assert fut.result() == 42
    rt.shutdown()
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

from ..errors import SimulationError
from .ostructure import SWOStructure


class SWTaskContext:
    """Handed to each task body; carries the id used as version number."""

    __slots__ = ("task_id", "runtime")

    def __init__(self, task_id: int, runtime: "SWRuntime"):
        self.task_id = task_id
        self.runtime = runtime


class SWRuntime:
    """Thread-pool task runtime with version garbage collection."""

    def __init__(self, num_workers: int = 4, gc_every: int = 64):
        if num_workers <= 0:
            raise SimulationError("need at least one worker")
        self._pool = ThreadPoolExecutor(max_workers=num_workers)
        self._lock = threading.Lock()
        self._live: set[int] = set()
        self._ostructs: list[SWOStructure] = []
        self._ends_since_gc = 0
        self._gc_every = gc_every
        self.gc_runs = 0
        self.gc_reclaimed = 0
        self._shutdown = False

    # -- structures -----------------------------------------------------------

    def new_ostructure(self, name: str = "ostruct") -> SWOStructure:
        o = SWOStructure(name)
        with self._lock:
            self._ostructs.append(o)
        return o

    # -- task lifecycle -----------------------------------------------------------

    def spawn(self, task_id: int, body: Callable[[SWTaskContext], Any]) -> Future:
        """Create task ``task_id`` (rule 3 checked) and run it in the pool."""
        with self._lock:
            if self._shutdown:
                raise SimulationError("runtime is shut down")
            if task_id in self._live:
                raise SimulationError(f"task {task_id} already live")
            if self._live and task_id < min(self._live):
                raise SimulationError(
                    f"rule 3 violation: task {task_id} below lowest live "
                    f"{min(self._live)}"
                )
            self._live.add(task_id)

        def run() -> Any:
            ctx = SWTaskContext(task_id, self)
            try:
                return body(ctx)
            finally:
                self._on_end(task_id)

        return self._pool.submit(run)

    def _on_end(self, task_id: int) -> None:
        run_gc = False
        with self._lock:
            self._live.discard(task_id)
            self._ends_since_gc += 1
            if self._ends_since_gc >= self._gc_every:
                self._ends_since_gc = 0
                run_gc = True
        if run_gc:
            self.collect()

    # -- garbage collection ------------------------------------------------------------

    def collect(self) -> int:
        """Reclaim versions below the lowest live task id.

        With no live tasks, nothing bounds future readers (a new task may
        still legally start at any id >= 0 after a quiescent point), so
        collection is skipped unless the caller passes a floor explicitly
        via the O-structures' ``reclaim_below``.
        """
        with self._lock:
            if not self._live:
                return 0
            floor = min(self._live)
            structs = list(self._ostructs)
        reclaimed = sum(o.reclaim_below(floor) for o in structs)
        with self._lock:
            self.gc_runs += 1
            self.gc_reclaimed += reclaimed
        return reclaimed

    # -- shutdown -------------------------------------------------------------------------

    def shutdown(self) -> None:
        with self._lock:
            self._shutdown = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SWRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
