"""Software O-structure runtime (the paper's Section II-C prototype).

The paper notes O-structures "can be implemented purely as a software
runtime abstraction; we've indeed started with a software prototype",
with the caveat that per-operation logic costs too much without hardware
support.  This subpackage is that prototype: a thread-safe O-structure
with the full Section II-A semantics, usable from real Python threads —
blocking loads, exact/capped versions, version locking, renaming unlocks,
and a shadowed-list garbage collector driven by task progress.

It serves two purposes: executable documentation of the semantics under
true concurrency (the hypothesis-driven tests hammer it from many
threads), and a functional fallback for code that wants versioned memory
without the simulator.
"""

from .ostructure import SWOStructure
from .runtime import SWRuntime, SWTaskContext

__all__ = ["SWOStructure", "SWRuntime", "SWTaskContext"]
