"""Speedup and scaling analysis over workload runs.

Helpers the harness and benches use to turn raw cycle counts into the
quantities the paper plots: relative speedups, self-speedup scaling
curves, efficiency, and the core-count at which one implementation
overtakes another (the Figure 8 crossover).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ConfigError
from ..workloads.base import WorkloadRun


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional average for speedups)."""
    if not values:
        raise ConfigError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def relative_speedup(baseline_cycles: int, other_cycles: int) -> float:
    """How many times faster ``other`` is than ``baseline``."""
    if other_cycles <= 0 or baseline_cycles <= 0:
        raise ConfigError("cycle counts must be positive")
    return baseline_cycles / other_cycles


def speedup_table(
    baseline: WorkloadRun, runs: Sequence[WorkloadRun]
) -> list[tuple[str, int, float]]:
    """``(variant, cycles, speedup-vs-baseline)`` rows."""
    return [
        (r.variant, r.cycles, relative_speedup(baseline.cycles, r.cycles))
        for r in runs
    ]


def scaling_efficiency(
    core_counts: Sequence[int], speedups: Sequence[float]
) -> list[float]:
    """Parallel efficiency: speedup divided by core count."""
    if len(core_counts) != len(speedups):
        raise ConfigError("length mismatch")
    if any(c <= 0 for c in core_counts):
        raise ConfigError("core counts must be positive")
    return [s / c for c, s in zip(core_counts, speedups)]


def crossover_point(
    xs: Sequence[int], ratios: Sequence[float], threshold: float = 1.0
) -> int | None:
    """First x at which ``ratios`` reaches ``threshold`` (Figure 8).

    Returns ``None`` if the series never crosses.
    """
    if len(xs) != len(ratios):
        raise ConfigError("length mismatch")
    for x, r in zip(xs, ratios):
        if r >= threshold:
            return x
    return None


def summarize_runs(runs: Sequence[WorkloadRun]) -> dict[str, float]:
    """Aggregate microarchitectural statistics across runs."""
    if not runs:
        raise ConfigError("no runs to summarize")
    total_versioned = sum(r.stats.versioned_ops for r in runs)
    total_stalls = sum(r.stats.versioned_stalls for r in runs)
    direct = sum(r.stats.direct_hits for r in runs)
    full = sum(r.stats.full_lookups for r in runs)
    return {
        "runs": len(runs),
        "total_cycles": sum(r.cycles for r in runs),
        "versioned_ops": total_versioned,
        "stall_rate": total_stalls / total_versioned if total_versioned else 0.0,
        "direct_hit_rate": direct / (direct + full) if direct + full else 0.0,
        "gc_phases": sum(r.stats.gc_phases for r in runs),
        "versions_created": sum(r.stats.versions_created for r in runs),
        "versions_reclaimed": sum(r.stats.gc_reclaimed for r in runs),
    }
