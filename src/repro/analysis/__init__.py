"""Result analysis: speedups, series, crossovers, summary statistics."""

from .speedup import (
    crossover_point,
    geomean,
    relative_speedup,
    scaling_efficiency,
    speedup_table,
    summarize_runs,
)

__all__ = [
    "geomean",
    "relative_speedup",
    "speedup_table",
    "scaling_efficiency",
    "crossover_point",
    "summarize_runs",
]
