"""Stress harness: random schedules through fully-checked machines.

Every workload runs on a machine with ``checked=True`` — all versioned
ops diffed against the software reference, invariants validated at
checkpoints — and its output is additionally validated against the
workload's own sequential oracle (``opgen.reference_results`` for the
irregular structures, the numpy/DP references for the regular ones).
Schedules are drawn from a seeded generator, so a failure reproduces
from its printed (workload, seed) pair.

``run_check`` is the CLI entry point behind ``python -m repro check``
and the CI sanitizer smoke job.  It returns the usual experiment dict
(``rows`` + ``text``) and never raises on divergence: violations are
captured per-run so one bad schedule doesn't hide the rest, and the
caller turns a non-zero ``violations`` count into a failing exit code.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from ..config import TABLE2, MachineConfig
from ..errors import ReproError
from ..harness.presets import QUICK, Scale
from ..workloads import (
    binary_tree,
    hash_table,
    levenshtein,
    linked_list,
    matmul,
    opgen,
    rb_tree,
)
from .sanitizer import CheckViolation

#: Irregular workloads: module plus opgen-driven validation.
IRREGULAR = {
    "linked_list": linked_list,
    "binary_tree": binary_tree,
    "hash_table": hash_table,
    "rb_tree": rb_tree,
}

#: Regular workloads have their own reference functions.
REGULAR = ("matmul", "levenshtein")


def checked_config(config: MachineConfig = TABLE2) -> MachineConfig:
    """A copy of ``config`` with the sanitizer enabled."""
    return dataclasses.replace(config, checked=True)


def check_irregular(
    name: str,
    *,
    config: MachineConfig = TABLE2,
    seed: int = 0,
    elements: int = 32,
    n_ops: int = 64,
    cores: int = 4,
    mix: opgen.OpMix = opgen.READ_INTENSIVE,
) -> dict[str, Any]:
    """One checked run of an irregular workload; returns a result row."""
    mod = IRREGULAR[name]
    key_space = max(4 * elements, 16)
    initial = opgen.initial_keys(elements, key_space, seed)
    ops = opgen.generate_ops(n_ops, mix, key_space, seed)
    row = {
        "workload": name,
        "seed": seed,
        "mix": mix.name,
        "ops": n_ops,
        "cores": cores,
        "problems": [],
    }
    try:
        run = mod.run_versioned(checked_config(config), initial, ops, cores)
    except CheckViolation as exc:
        row["problems"].append(str(exc))
        return row
    expected_results, expected_final = opgen.reference_results(initial, ops)
    if list(run.results) != list(expected_results):
        bad = sum(
            1 for a, b in zip(run.results, expected_results) if a != b
        )
        row["problems"].append(
            f"{name} seed {seed}: {bad}/{n_ops} op results differ from "
            f"the sequential reference"
        )
    if run.final_state is not None and list(run.final_state) != list(
        expected_final
    ):
        row["problems"].append(
            f"{name} seed {seed}: final contents differ from the "
            f"sequential reference"
        )
    row["versioned_ops"] = run.stats.versioned_ops
    return row


def check_regular(
    name: str,
    *,
    config: MachineConfig = TABLE2,
    seed: int = 0,
    size: int = 8,
    cores: int = 4,
) -> dict[str, Any]:
    """One checked run of matmul or levenshtein; returns a result row."""
    row = {
        "workload": name,
        "seed": seed,
        "size": size,
        "cores": cores,
        "problems": [],
    }
    try:
        if name == "matmul":
            run = matmul.run_versioned(
                checked_config(config), size, cores, seed=seed
            )
            a, b, c = matmul.make_inputs(size, seed)
            ok = np.array_equal(run.final_state, matmul.reference(a, b, c))
        elif name == "levenshtein":
            run = levenshtein.run_versioned(
                checked_config(config), size, cores, seed=seed
            )
            s1, s2 = levenshtein.make_strings(size, seed)
            ok = run.final_state == levenshtein.reference(s1, s2)
        else:
            raise ReproError(f"unknown regular workload {name!r}")
    except CheckViolation as exc:
        row["problems"].append(str(exc))
        return row
    if not ok:
        row["problems"].append(
            f"{name} seed {seed} size {size}: result differs from the "
            f"reference"
        )
    row["versioned_ops"] = run.stats.versioned_ops
    return row


def run_check(
    scale: Scale = QUICK,
    config: MachineConfig = TABLE2,
    *,
    budget: int | None = None,
    schedules: int = 2,
) -> dict[str, Any]:
    """Run every workload through the sanitizer on random schedules.

    ``budget`` caps the op count of each irregular schedule (defaults to
    half the scale's ``n_ops``); ``schedules`` is the number of random
    (seed, mix) draws per irregular workload.  Returns ``{"rows",
    "text", "violations", "ops_checked"}``.
    """
    n_ops = budget if budget is not None else max(32, scale.n_ops // 2)
    elements = max(16, min(scale.small_elements, 2 * n_ops))
    rng = np.random.default_rng(scale.seed)
    rows: list[dict[str, Any]] = []
    for name in IRREGULAR:
        for i in range(schedules):
            seed = int(rng.integers(0, 2**31))
            mix = (
                opgen.READ_INTENSIVE if i % 2 == 0 else opgen.WRITE_INTENSIVE
            )
            rows.append(
                check_irregular(
                    name,
                    config=config,
                    seed=seed,
                    elements=elements,
                    n_ops=n_ops,
                    cores=4,
                    mix=mix,
                )
            )
    reg_size = {
        "matmul": max(4, scale.matmul_small // 2),
        "levenshtein": max(8, scale.lev_small // 2),
    }
    for name in REGULAR:
        rows.append(
            check_regular(
                name,
                config=config,
                seed=int(rng.integers(0, 2**31)),
                size=reg_size[name],
                cores=4,
            )
        )

    violations = sum(len(r["problems"]) for r in rows)
    ops_checked = sum(r.get("versioned_ops", 0) for r in rows)
    lines = [
        "Sanitizer stress check (differential oracle + invariants)",
        f"  scale={scale.name} schedules={schedules} "
        f"irregular-ops={n_ops} elements={elements}",
        "",
    ]
    for r in rows:
        status = "ok" if not r["problems"] else "FAIL"
        detail = (
            f"mix={r['mix']}" if "mix" in r else f"size={r['size']}"
        )
        lines.append(
            f"  {r['workload']:<12} seed={r['seed']:<11} {detail:<10} "
            f"versioned_ops={r.get('versioned_ops', '-'):<7} {status}"
        )
        for p in r["problems"]:
            lines.extend(f"    ! {ln}" for ln in p.splitlines())
    lines.append("")
    lines.append(
        f"  {len(rows)} runs, {ops_checked} versioned ops checked, "
        f"{violations} violation(s)"
    )
    return {
        "rows": rows,
        "text": "\n".join(lines),
        "violations": violations,
        "ops_checked": ops_checked,
    }


def run_fault_check(
    scale: Scale = QUICK,
    config: MachineConfig = TABLE2,
    *,
    budget: int | None = None,
    schedules: int = 3,
) -> dict[str, Any]:
    """Random fault plans through fully-checked, recovery-armed machines.

    Every run draws a seeded plan of *transparent* faults (free-list
    starvation, dropped/delayed wake-ups, GC pauses — kinds whose
    recovery must not change program output) from
    :func:`repro.faults.spec.random_plan`, arms the live watchdog, and
    requires the run to either (a) complete with results identical to
    the sequential reference under the full sanitizer, or (b) degrade
    gracefully into :class:`FreeListExhausted` / :class:`DeadlockError`
    — never a wrong answer, a sanitizer violation, or a silent hang.
    Degraded runs are tallied, not failed: an injected refill budget of
    zero can make forward progress genuinely impossible.
    """
    from ..errors import DeadlockError, FreeListExhausted
    from ..faults.spec import random_plan

    n_ops = budget if budget is not None else max(24, scale.n_ops // 4)
    elements = max(16, min(scale.small_elements, 2 * n_ops))
    rng = np.random.default_rng(scale.seed ^ 0xFA17)
    base = dataclasses.replace(
        config,
        checked=True,
        # Tight memory so starvation faults bite, plus every recovery
        # mechanism armed: backpressure (default on), bounded refills,
        # and the live watchdog with a short budget and backoff.
        free_list_blocks=96,
        refill_blocks=32,
        free_list_refills=4,
        gc_watermark=16,
        watchdog_cycles=20_000,
        watchdog_backoff_cycles=64,
    )
    rows: list[dict[str, Any]] = []
    degraded = 0
    faults_fired = 0
    for name in IRREGULAR:
        for i in range(schedules):
            seed = int(rng.integers(0, 2**31))
            mix = (
                opgen.READ_INTENSIVE if i % 2 == 0 else opgen.WRITE_INTENSIVE
            )
            # Fault triggers span the whole run including structure
            # setup (~2 ops per initial element) — both phases must
            # degrade gracefully.
            plan = random_plan(
                seed, n_ops=2 * elements + 3 * n_ops, max_faults=3
            )
            cfg = dataclasses.replace(base, faults=plan)
            row: dict[str, Any]
            try:
                row = check_irregular(
                    name,
                    config=cfg,
                    seed=seed,
                    elements=elements,
                    n_ops=n_ops,
                    cores=4,
                    mix=mix,
                )
            except FreeListExhausted as exc:
                row = {
                    "workload": name,
                    "seed": seed,
                    "mix": mix.name,
                    "problems": [],
                    "degraded": f"FreeListExhausted"
                    + (" +waitgraph" if exc.post_mortem else ""),
                }
                degraded += 1
            except DeadlockError:
                row = {
                    "workload": name,
                    "seed": seed,
                    "mix": mix.name,
                    "problems": [],
                    "degraded": "DeadlockError",
                }
                degraded += 1
            row["plan"] = [dataclasses.asdict(f) for f in plan]
            rows.append(row)

    violations = sum(len(r["problems"]) for r in rows)
    ops_checked = sum(r.get("versioned_ops", 0) for r in rows)
    lines = [
        "Fault-injection stress check (random plans, sanitizer on, "
        "recovery armed)",
        f"  scale={scale.name} schedules={schedules} "
        f"irregular-ops={n_ops} elements={elements}",
        "",
    ]
    for r in rows:
        if r["problems"]:
            status = "FAIL"
        elif "degraded" in r:
            status = f"degraded ({r['degraded']})"
        else:
            status = "ok"
        nfaults = len(r["plan"])
        kinds = ",".join(sorted({f["kind"] for f in r["plan"]})) or "-"
        faults_fired += nfaults
        lines.append(
            f"  {r['workload']:<12} seed={r['seed']:<11} mix={r['mix']:<6} "
            f"faults={nfaults}[{kinds}] {status}"
        )
        for p in r["problems"]:
            lines.extend(f"    ! {ln}" for ln in p.splitlines())
    lines.append("")
    lines.append(
        f"  {len(rows)} runs, {ops_checked} versioned ops checked, "
        f"{degraded} degraded gracefully, {violations} violation(s)"
    )
    return {
        "rows": rows,
        "text": "\n".join(lines),
        "violations": violations,
        "ops_checked": ops_checked,
        "degraded": degraded,
    }
