"""Structural invariant checks over a live :class:`~repro.sim.machine.Machine`.

``check_invariants(machine)`` inspects the whole O-structure subsystem and
returns a list of human-readable problem strings (empty when healthy).
The checks deliberately reach into private state — this module is the
white-box auditor for exactly the internal caches and index structures
the PR-1 fast paths added:

1. every version list is sorted, duplicate-free, head-bit-consistent;
2. no physical block address is both live (linked into a list or queued
   for GC) and on the free list, and no paddr is live twice;
3. every per-core compressed-line entry is backed by the block actually
   linked into the address's version list (a stale entry here is how a
   GC-reclaimed version would get served);
4. the one-entry ``(core, vaddr)`` lookup memo points at the entry the
   per-core table really holds;
5. GC shadowed/pending blocks are flagged, still linked, and not freed;
6. parked waiters only exist on versioned pages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.machine import Machine


def check_invariants(machine: "Machine") -> list[str]:
    """Validate structural invariants; returns problem descriptions."""
    problems: list[str] = []
    problems.extend(_check_version_lists(machine))
    problems.extend(_check_paddr_accounting(machine))
    problems.extend(_check_compressed_lines(machine))
    problems.extend(_check_memo(machine))
    problems.extend(_check_gc_lists(machine))
    problems.extend(_check_waiters(machine))
    return problems


def _check_version_lists(machine: "Machine") -> list[str]:
    problems = []
    for vaddr, lst in machine.manager.lists.items():
        if lst.vaddr != vaddr:
            problems.append(
                f"list keyed 0x{vaddr:x} believes it is 0x{lst.vaddr:x}"
            )
        try:
            lst.check_invariants()
        except SimulationError as exc:
            problems.append(f"version list 0x{vaddr:x}: {exc}")
    return problems


def _check_paddr_accounting(machine: "Machine") -> list[str]:
    """Live blocks and the free list must partition the paddr space."""
    problems = []
    free = machine.free_list._free
    free_set = set(free)
    if len(free_set) != len(free):
        problems.append("free list contains duplicate paddrs")
    live: dict[int, str] = {}
    for vaddr, lst in machine.manager.lists.items():
        for block in lst:
            where = f"v{block.version}@0x{vaddr:x}"
            if block.paddr in live:
                problems.append(
                    f"paddr 0x{block.paddr:x} linked twice: "
                    f"{live[block.paddr]} and {where}"
                )
            live[block.paddr] = where
            if block.paddr in free_set:
                problems.append(
                    f"paddr 0x{block.paddr:x} ({where}) is both linked "
                    f"into a version list and on the free list"
                )
    return problems


def _check_compressed_lines(machine: "Machine") -> list[str]:
    problems = []
    mgr = machine.manager
    for core_id, direct in enumerate(mgr._direct):
        for vaddr, entry in direct.items():
            line_versions = set(entry.line.versions())
            if set(entry.blocks) != line_versions:
                problems.append(
                    f"core {core_id} compressed line 0x{vaddr:x}: encoded "
                    f"versions {sorted(line_versions)} != block refs "
                    f"{sorted(entry.blocks)}"
                )
            if vaddr not in mgr._block_index[core_id].get(vaddr >> 6, ()):
                problems.append(
                    f"core {core_id} compressed line 0x{vaddr:x} missing "
                    f"from the L1 block index (evictions won't discard it)"
                )
            lst = mgr.lists.get(vaddr)
            for version, block in entry.blocks.items():
                if lst is None:
                    problems.append(
                        f"core {core_id} compressed entry v{version}"
                        f"@0x{vaddr:x} outlives its freed O-structure"
                    )
                    continue
                linked, _ = lst.find_exact(version)
                if linked is not block:
                    state = "reclaimed" if linked is None else "replaced"
                    problems.append(
                        f"core {core_id} compressed entry v{version}"
                        f"@0x{vaddr:x} is {state}: the cached block is not "
                        f"the one linked into the version list"
                    )
    return problems


def _check_memo(machine: "Machine") -> list[str]:
    mgr = machine.manager
    if mgr._memo_core < 0 or mgr._memo_entry is None:
        return []
    current = mgr._direct[mgr._memo_core].get(mgr._memo_vaddr)
    if current is not mgr._memo_entry:
        return [
            f"(core, vaddr) memo (core {mgr._memo_core}, "
            f"0x{mgr._memo_vaddr:x}) points at a detached compressed entry"
        ]
    return []


def _check_gc_lists(machine: "Machine") -> list[str]:
    problems = []
    free_set = set(machine.free_list._free)
    for kind, pairs in (
        ("shadowed", machine.gc._shadowed),
        ("pending", machine.gc._pending),
    ):
        for block, vlist in pairs:
            where = f"gc {kind} block v{block.version}@0x{vlist.vaddr:x}"
            if not block.shadowed:
                problems.append(f"{where} lost its shadowed flag")
            if block.paddr in free_set:
                problems.append(f"{where} paddr already on the free list")
            if machine.manager.lists.get(vlist.vaddr) is not vlist:
                problems.append(f"{where} references a dropped version list")
                continue
            linked, _ = vlist.find_exact(block.version)
            if linked is not block:
                problems.append(f"{where} detached from its version list")
    return problems


def _check_waiters(machine: "Machine") -> list[str]:
    from ..ostruct.manager import ALLOC_WAIT

    problems = []
    for vaddr, cbs in machine.manager._waiters.items():
        if vaddr == ALLOC_WAIT:
            # Allocation-backpressure parking slot, not a page address.
            continue
        if cbs and not machine.page_table.is_versioned(vaddr):
            problems.append(
                f"{len(cbs)} waiter(s) parked on non-versioned page "
                f"address 0x{vaddr:x}"
            )
    return problems
