"""repro.check — differential oracle + invariant sanitizer.

The sanitizer is the repo's standing defense against semantics bugs
introduced by simulator performance work (the PR-1 direct-entry memo,
batched wake-ups, cached sweeps, ...).  It has two halves:

- :mod:`repro.check.oracle` — every versioned operation executed by the
  hardware-model :class:`~repro.ostruct.manager.OStructureManager` is
  replayed against the pure-software reference in
  :mod:`repro.sw.ostructure` and the results diffed op-by-op;
- :mod:`repro.check.invariants` — structural invariants of the machine
  (sorted duplicate-free version lists, compressed-line consistency,
  memo validity, free-list/GC disjointness, GC reclaim safety) validated
  at configurable checkpoints.

Enable it with ``MachineConfig(checked=True)`` (or ``Machine(cfg,
checked=True)``), or from the CLI with ``python -m repro <target>
--check``.  Violations raise :class:`~repro.check.sanitizer.CheckViolation`
carrying a structured report (the Tracer tail plus the wait-graph
post-mortem).  :mod:`repro.check.stress` drives random ``opgen``
schedules through every workload under the sanitizer.
"""

from .invariants import check_invariants
from .oracle import DifferentialOracle
from .sanitizer import CheckViolation, Sanitizer
from .stress import run_check

__all__ = [
    "CheckViolation",
    "DifferentialOracle",
    "Sanitizer",
    "check_invariants",
    "run_check",
]
