"""The sanitizer: op-level differential checking plus invariant checkpoints.

:class:`Sanitizer` attaches to a machine by shadowing the manager's seven
versioned operations (and ``free_ostructure``) with instance-attribute
wrappers.  Each wrapper lets the hardware model run first, then replays
the op against the software reference via the
:class:`~repro.check.oracle.DifferentialOracle`; every ``interval``
checked ops the structural invariants of
:mod:`repro.check.invariants` are validated as well.  A GC reclaim hook
audits Section III-B safety for every reclaimed block before mirroring
the reclaim into the reference.

Because the wrappers are instance attributes, the manager's *internal*
calls are checked too — a renaming ``unlock_version`` resolves
``self.store_version`` to the wrapped version, so the rename's store is
mirrored exactly once, in order.

On any disagreement a :class:`CheckViolation` is raised carrying a
structured report: the violated facts, the offending op, the simulated
cycle, the tail of the auto-attached :class:`~repro.sim.trace.Tracer`
(the interleaving *is* the bug report), and the wait-graph post-mortem.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import (
    NotLockedError,
    ProtectionFault,
    SimulationError,
    VersionExistsError,
)
from ..ostruct import isa
from ..ostruct.manager import StallSignal
from .invariants import check_invariants
from .oracle import DifferentialOracle

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.machine import Machine


class CheckViolation(SimulationError):
    """The sanitizer observed a divergence or invariant violation."""

    def __init__(
        self,
        kind: str,
        problems: list[str],
        *,
        op: tuple | None = None,
        cycle: int = 0,
        ops_checked: int = 0,
        trace_tail: list[str] | None = None,
        post_mortem: str = "",
    ):
        self.kind = kind
        self.problems = list(problems)
        self.op = op
        self.cycle = cycle
        self.ops_checked = ops_checked
        self.trace_tail = list(trace_tail or [])
        self.post_mortem = post_mortem
        super().__init__(self.render())

    def __reduce__(self):
        # Keyword-only fields need explicit reconstruction, or crossing a
        # process-pool boundary re-raises a TypeError instead of this.
        return (
            _rebuild_violation,
            (
                self.kind,
                self.problems,
                self.op,
                self.cycle,
                self.ops_checked,
                self.trace_tail,
                self.post_mortem,
            ),
        )

    def render(self) -> str:
        lines = [
            f"sanitizer violation [{self.kind}] at cycle {self.cycle} "
            f"({self.ops_checked} ops checked)"
        ]
        if self.op is not None:
            lines.append(f"  op: {self.op!r}")
        for p in self.problems:
            lines.append(f"  - {p}")
        if self.trace_tail:
            lines.append("  trace tail:")
            lines.extend(f"    {t}" for t in self.trace_tail)
        if self.post_mortem:
            lines.append("  wait graph:")
            lines.extend(f"    {t}" for t in self.post_mortem.splitlines())
        return "\n".join(lines)


def _rebuild_violation(kind, problems, op, cycle, ops_checked, trace_tail, post_mortem):
    return CheckViolation(
        kind,
        problems,
        op=op,
        cycle=cycle,
        ops_checked=ops_checked,
        trace_tail=trace_tail,
        post_mortem=post_mortem,
    )


class Sanitizer:
    """Differential + invariant checker wired into one machine."""

    #: Manager attributes shadowed by wrappers.
    _WRAPPED = (
        "load_version",
        "load_latest",
        "store_version",
        "lock_load_version",
        "lock_load_latest",
        "unlock_version",
        "free_ostructure",
    )

    def __init__(
        self,
        machine: "Machine",
        *,
        interval: int = 256,
        trace_tail: int = 24,
    ):
        self.machine = machine
        self.oracle = DifferentialOracle()
        #: Structural invariants are validated every ``interval`` checked
        #: ops (0 disables periodic checkpoints; the final sweep remains).
        self.interval = interval
        self.trace_tail = trace_tail
        self.ops_checked = 0
        self.checkpoints_run = 0
        mgr = machine.manager
        self._orig = {name: getattr(mgr, name) for name in self._WRAPPED}
        for name in self._WRAPPED:
            setattr(mgr, name, getattr(self, f"_{name}"))
        machine.gc.reclaim_hooks.append(self._on_reclaim)
        machine.manager.drop_hooks.append(self._on_abort_drop)
        # Keep an interleaving record for violation reports, but never
        # displace a tracer/hook the user installed first.
        self.tracer = None
        if machine.trace_hook is None:
            from ..sim.trace import Tracer

            self.tracer = Tracer(machine, capacity=4096, only_versioned=True)

    # -- lifecycle -----------------------------------------------------------

    def uninstall(self) -> None:
        """Restore the unwrapped manager (fault-injection tests)."""
        mgr = self.machine.manager
        for name in self._WRAPPED:
            if getattr(mgr, name, None) == getattr(self, f"_{name}"):
                delattr(mgr, name)
        if self._on_reclaim in self.machine.gc.reclaim_hooks:
            self.machine.gc.reclaim_hooks.remove(self._on_reclaim)
        if self._on_abort_drop in self.machine.manager.drop_hooks:
            self.machine.manager.drop_hooks.remove(self._on_abort_drop)
        if self.tracer is not None:
            self.tracer.detach()

    def finish(self) -> None:
        """Terminal sweep: full invariants plus a whole-state model diff."""
        problems = check_invariants(self.machine)
        problems += self.oracle.compare_all(self.machine.manager)
        self._require(not problems, "final-sweep", problems, None)
        self.checkpoints_run += 1

    def check_now(self) -> None:
        """On-demand checkpoint (equivalent to the periodic one)."""
        self._checkpoint(force=True)

    # -- internals -----------------------------------------------------------

    def _require(
        self, ok: bool, kind: str, problems: list[str], op: tuple | None
    ) -> None:
        if ok:
            return
        from ..sim import waitgraph

        tail = (
            [str(e) for e in self.tracer.last(self.trace_tail)]
            if self.tracer is not None
            else []
        )
        try:
            pm = waitgraph.post_mortem(self.machine)
        except Exception as exc:  # pragma: no cover - diagnostics only
            pm = f"(post-mortem unavailable: {exc})"
        raise CheckViolation(
            kind,
            problems,
            op=op,
            cycle=self.machine.sim.now,
            ops_checked=self.ops_checked,
            trace_tail=tail,
            post_mortem=pm,
        )

    def _checkpoint(self, force: bool = False) -> None:
        self.ops_checked += 1
        if not force and (
            self.interval <= 0 or self.ops_checked % self.interval
        ):
            return
        problems = check_invariants(self.machine)
        self._require(not problems, "invariant-checkpoint", problems, None)
        self.checkpoints_run += 1

    # -- wrapped operations --------------------------------------------------

    def _load_version(self, core_id: int, vaddr: int, version: int):
        op = (isa.LOAD_VERSION, vaddr, version)
        try:
            lat, value = self._orig["load_version"](core_id, vaddr, version)
        except StallSignal:
            problems = self.oracle.expect_blocked_exact(vaddr, version)
            self._require(not problems, "divergence", problems, op)
            raise
        problems = self.oracle.expect_exact(vaddr, version, value)
        self._require(not problems, "divergence", problems, op)
        self._checkpoint()
        return lat, value

    def _load_latest(self, core_id: int, vaddr: int, cap: int):
        op = (isa.LOAD_LATEST, vaddr, cap)
        try:
            lat, (version, value) = self._orig["load_latest"](
                core_id, vaddr, cap
            )
        except StallSignal:
            problems = self.oracle.expect_blocked_latest(vaddr, cap)
            self._require(not problems, "divergence", problems, op)
            raise
        problems = self.oracle.expect_latest(vaddr, cap, version, value)
        self._require(not problems, "divergence", problems, op)
        self._checkpoint()
        return lat, (version, value)

    def _store_version(
        self,
        core_id: int,
        vaddr: int,
        version: int,
        value: Any,
        task_id: int | None = None,
    ):
        op = (isa.STORE_VERSION, vaddr, version, value)
        try:
            result = self._orig["store_version"](
                core_id, vaddr, version, value, task_id
            )
        except VersionExistsError:
            problems = self.oracle.expect_store_conflict(vaddr, version)
            self._require(not problems, "divergence", problems, op)
            raise
        problems = self.oracle.mirror_store(vaddr, version, value)
        self._require(not problems, "divergence", problems, op)
        self._checkpoint()
        return result

    def _lock_load_version(
        self, core_id: int, vaddr: int, version: int, task_id: int
    ):
        op = (isa.LOCK_LOAD_VERSION, vaddr, version)
        try:
            lat, value = self._orig["lock_load_version"](
                core_id, vaddr, version, task_id
            )
        except StallSignal:
            problems = self.oracle.expect_blocked_exact(vaddr, version)
            self._require(not problems, "divergence", problems, op)
            raise
        problems = self.oracle.mirror_lock_exact(vaddr, version, task_id, value)
        self._require(not problems, "divergence", problems, op)
        self._checkpoint()
        return lat, value

    def _lock_load_latest(self, core_id: int, vaddr: int, cap: int, task_id: int):
        op = (isa.LOCK_LOAD_LATEST, vaddr, cap)
        try:
            lat, (version, value) = self._orig["lock_load_latest"](
                core_id, vaddr, cap, task_id
            )
        except StallSignal:
            problems = self.oracle.expect_blocked_latest(vaddr, cap)
            self._require(not problems, "divergence", problems, op)
            raise
        problems = self.oracle.mirror_lock_latest(
            vaddr, cap, task_id, version, value
        )
        self._require(not problems, "divergence", problems, op)
        self._checkpoint()
        return lat, (version, value)

    def _unlock_version(
        self,
        core_id: int,
        vaddr: int,
        version: int,
        task_id: int,
        new_version: int | None = None,
    ):
        op = (isa.UNLOCK_VERSION, vaddr, version, new_version)
        try:
            # A renaming unlock calls the manager's own store_version,
            # which resolves to the wrapped one: the rename is mirrored
            # there, so mirror_unlock below only releases the lock.
            result = self._orig["unlock_version"](
                core_id, vaddr, version, task_id, new_version
            )
        except NotLockedError:
            problems = self.oracle.expect_not_locked(vaddr, version, task_id)
            self._require(not problems, "divergence", problems, op)
            raise
        problems = self.oracle.mirror_unlock(vaddr, version, task_id)
        self._require(not problems, "divergence", problems, op)
        self._checkpoint()
        return result

    def _free_ostructure(self, vaddr: int):
        op = ("free_ostructure", vaddr)
        try:
            count = self._orig["free_ostructure"](vaddr)
        except ProtectionFault:
            # The hardware refused (waiters or locked versions); the
            # reference keeps its state and nothing needs mirroring.
            raise
        problems = self.oracle.mirror_free(vaddr, count)
        self._require(not problems, "divergence", problems, op)
        self._checkpoint()
        return count

    # -- GC auditing ---------------------------------------------------------

    def _on_reclaim(self, vaddr: int, version: int) -> None:
        # Live tasks above max_seen are future consumers the renaming
        # protocols address by exact version; the GC contract protects
        # latest-reads only for ids within the begun window.
        problems = self.oracle.check_reclaim(
            vaddr,
            version,
            self.machine.tracker.live_ids,
            max_protected=self.machine.tracker.max_seen,
        )
        self._require(
            not problems, "gc-safety", problems, ("gc_reclaim", vaddr, version)
        )
        self.oracle.mirror_reclaim(vaddr, version)

    def _on_abort_drop(self, vaddr: int, version: int) -> None:
        # Abort rollback is exempt from the reclaim liveness audit (the
        # drop is deliberate; waiters re-stall until the retry recreates
        # the version) but must still track the reference model.
        problems = self.oracle.mirror_drop(vaddr, version)
        self._require(
            not problems, "abort-rollback", problems, ("abort_drop", vaddr, version)
        )
