"""Differential oracle: the hardware model vs the software reference.

The oracle maintains one :class:`~repro.sw.ostructure.SWOStructure` per
versioned address and mirrors every operation the hardware-model manager
completes.  Because the manager runs single-threaded inside the event
simulator, the mirror uses the non-blocking ``try_*`` probes — "would
this op complete right now, and with what result?" — so the two models
are compared at identical points in the simulated interleaving.

Every method returns a list of problem strings (empty on agreement); the
:class:`~repro.check.sanitizer.Sanitizer` turns non-empty results into a
:class:`~repro.check.sanitizer.CheckViolation`.

Mirroring rules worth spelling out:

- **Stalls must agree.**  When the hardware raises ``StallSignal``, the
  software probe must also report not-ready; a hardware stall the
  reference would have satisfied is a lost wake-up / stale-cache bug,
  and a hardware completion the reference would have blocked is a
  premature read (e.g. of a locked or reclaimed version).
- **Renaming unlocks mirror in two steps.**  The manager's
  ``unlock_version(new_version=...)`` internally calls its own
  ``store_version``, which the sanitizer has already wrapped — so the
  nested store mirrors the rename and ``mirror_unlock`` only releases
  the lock.
- **GC reclaims are checked before they are mirrored**: at reclaim time
  the version must be shadowed, unlocked, and invisible to every live
  task's LOAD-LATEST — the paper's Section III-B safety argument,
  enforced mechanically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from ..sw.ostructure import SWOStructure

if TYPE_CHECKING:  # pragma: no cover
    from ..ostruct.manager import OStructureManager


class DifferentialOracle:
    """Software shadow of every O-structure the manager serves."""

    def __init__(self) -> None:
        #: vaddr -> software reference structure.
        self.structs: dict[int, SWOStructure] = {}
        self.ops_mirrored = 0

    def _sw(self, vaddr: int) -> SWOStructure:
        sw = self.structs.get(vaddr)
        if sw is None:
            sw = SWOStructure(f"sw@0x{vaddr:x}")
            self.structs[vaddr] = sw
        return sw

    # -- completed-op mirrors ------------------------------------------------

    def mirror_store(self, vaddr: int, version: int, value: Any) -> list[str]:
        self.ops_mirrored += 1
        sw = self._sw(vaddr)
        if version in sw._versions:
            return [
                f"hw created version {version} of 0x{vaddr:x} but the "
                f"reference already holds it (duplicate creation)"
            ]
        sw.store_version(version, value)
        return []

    def expect_exact(self, vaddr: int, version: int, value: Any) -> list[str]:
        """Hardware LOAD-VERSION completed with ``value``."""
        self.ops_mirrored += 1
        probe = self._sw(vaddr).try_load_version(version)
        if probe is None:
            return [
                f"hw served LOAD-VERSION {version} of 0x{vaddr:x} -> "
                f"{value!r} but the reference says the version "
                f"{self._why_not_exact(vaddr, version)}"
            ]
        if probe[0] != value:
            return [
                f"LOAD-VERSION {version} of 0x{vaddr:x}: hw={value!r} "
                f"reference={probe[0]!r}"
            ]
        return []

    def expect_latest(
        self, vaddr: int, cap: int, version: int, value: Any
    ) -> list[str]:
        """Hardware LOAD-LATEST(cap) completed with ``(version, value)``."""
        self.ops_mirrored += 1
        probe = self._sw(vaddr).try_load_latest(cap)
        if probe is None:
            return [
                f"hw served LOAD-LATEST <= {cap} of 0x{vaddr:x} -> "
                f"v{version}={value!r} but the reference would block"
            ]
        if probe != (version, value):
            return [
                f"LOAD-LATEST <= {cap} of 0x{vaddr:x}: hw=v{version}="
                f"{value!r} reference=v{probe[0]}={probe[1]!r}"
            ]
        return []

    def mirror_lock_exact(
        self, vaddr: int, version: int, task_id: int, value: Any
    ) -> list[str]:
        self.ops_mirrored += 1
        probe = self._sw(vaddr).try_lock_load_version(version, task_id)
        if probe is None:
            return [
                f"hw granted LOCK-LOAD-VERSION {version} of 0x{vaddr:x} "
                f"to task {task_id} but the reference says the version "
                f"{self._why_not_exact(vaddr, version)}"
            ]
        if probe[0] != value:
            return [
                f"LOCK-LOAD-VERSION {version} of 0x{vaddr:x}: "
                f"hw={value!r} reference={probe[0]!r}"
            ]
        return []

    def mirror_lock_latest(
        self, vaddr: int, cap: int, task_id: int, version: int, value: Any
    ) -> list[str]:
        self.ops_mirrored += 1
        probe = self._sw(vaddr).try_lock_load_latest(cap, task_id)
        if probe is None:
            return [
                f"hw granted LOCK-LOAD-LATEST <= {cap} of 0x{vaddr:x} to "
                f"task {task_id} but the reference would block"
            ]
        if probe != (version, value):
            # The reference locked the wrong version: undo so later
            # comparisons diff against consistent state.
            self._sw(vaddr)._locked.pop(probe[0], None)
            return [
                f"LOCK-LOAD-LATEST <= {cap} of 0x{vaddr:x}: hw=v{version}="
                f"{value!r} reference=v{probe[0]}={probe[1]!r}"
            ]
        return []

    def mirror_unlock(self, vaddr: int, version: int, task_id: int) -> list[str]:
        """Hardware UNLOCK-VERSION completed (rename already mirrored)."""
        self.ops_mirrored += 1
        sw = self._sw(vaddr)
        holder = sw.locker_of(version)
        if holder != task_id:
            return [
                f"hw unlocked version {version} of 0x{vaddr:x} for task "
                f"{task_id} but the reference holder is {holder}"
            ]
        sw._locked.pop(version, None)
        return []

    # -- error-path agreement ------------------------------------------------

    def expect_blocked_exact(self, vaddr: int, version: int) -> list[str]:
        """Hardware stalled an exact-version access; reference must agree."""
        probe = self._sw(vaddr).try_load_version(version)
        if probe is not None:
            return [
                f"hw stalled on version {version} of 0x{vaddr:x} but the "
                f"reference would serve {probe[0]!r} (lost wake-up or "
                f"stale lookup state)"
            ]
        return []

    def expect_blocked_latest(self, vaddr: int, cap: int) -> list[str]:
        probe = self._sw(vaddr).try_load_latest(cap)
        if probe is not None:
            return [
                f"hw stalled on LOAD-LATEST <= {cap} of 0x{vaddr:x} but "
                f"the reference would serve v{probe[0]}={probe[1]!r}"
            ]
        return []

    def expect_store_conflict(self, vaddr: int, version: int) -> list[str]:
        """Hardware rejected a duplicate store; reference must agree."""
        if version not in self._sw(vaddr)._versions:
            return [
                f"hw rejected STORE-VERSION {version} of 0x{vaddr:x} as a "
                f"duplicate but the reference has no such version"
            ]
        return []

    def expect_not_locked(self, vaddr: int, version: int, task_id: int) -> list[str]:
        """Hardware rejected an unlock; reference holder must differ too."""
        holder = self._sw(vaddr).locker_of(version)
        if holder == task_id:
            return [
                f"hw rejected task {task_id}'s unlock of version {version} "
                f"of 0x{vaddr:x} but the reference shows it as the holder"
            ]
        return []

    # -- GC / lifecycle mirrors ----------------------------------------------

    def check_reclaim(
        self,
        vaddr: int,
        version: int,
        live_tasks: Iterable[int],
        max_protected: int | None = None,
    ) -> list[str]:
        """Safety audit of one GC reclaim, *before* it is mirrored.

        A reclaim is flagged when a live task could still select
        ``version`` through a capped LOAD-LATEST.  ``max_protected``
        bounds which live tasks count: the GC's phase contract only
        covers ids up to ``tracker.max_seen`` — versions *above* that
        bound were renamed into existence for designated future
        consumers (e.g. the ticket protocol renaming the root to the
        next mutator's id), and intermediate tasks coordinate with such
        addresses by exact version, not latest.  ``None`` protects every
        live task (the conservative default for direct use).
        """
        sw = self.structs.get(vaddr)
        if sw is None or version not in sw._versions:
            return [
                f"gc reclaimed version {version} of 0x{vaddr:x} unknown "
                f"to the reference model"
            ]
        problems = []
        if sw.is_locked(version):
            problems.append(
                f"gc reclaimed locked version {version} of 0x{vaddr:x} "
                f"(held by task {sw.locker_of(version)})"
            )
        if version == max(sw._versions):
            problems.append(
                f"gc reclaimed the latest version {version} of 0x{vaddr:x} "
                f"(nothing shadows it)"
            )
        for task in live_tasks:
            if max_protected is not None and task > max_protected:
                continue
            if sw._latest_at_or_below(task) == version:
                problems.append(
                    f"gc reclaimed version {version} of 0x{vaddr:x} while "
                    f"live task {task} can still read it via LOAD-LATEST "
                    f"(Section III-B safety violation)"
                )
        return problems

    def mirror_reclaim(self, vaddr: int, version: int) -> None:
        sw = self.structs.get(vaddr)
        if sw is not None and not sw.is_locked(version):
            sw.drop_version(version)

    def mirror_drop(self, vaddr: int, version: int) -> list[str]:
        """Hardware rolled back an aborted task's uncommitted version.

        Unlike a GC reclaim this is not subject to the Section III-B
        liveness audit — the abort path *deliberately* destroys a
        version other tasks may have been waiting for (they re-stall
        until the retry recreates it).  The drop must still target a
        version the reference knows and that is unlocked (the abort
        releases the victim's locks first).
        """
        sw = self.structs.get(vaddr)
        if sw is None or version not in sw._versions:
            return [
                f"abort dropped version {version} of 0x{vaddr:x} unknown "
                f"to the reference model"
            ]
        if sw.is_locked(version):
            return [
                f"abort dropped version {version} of 0x{vaddr:x} while "
                f"still locked by task {sw.locker_of(version)}"
            ]
        sw.drop_version(version)
        return []

    def mirror_free(self, vaddr: int, count: int) -> list[str]:
        """Hardware freed a whole O-structure of ``count`` blocks."""
        sw = self.structs.pop(vaddr, None)
        sw_count = len(sw._versions) if sw is not None else 0
        if sw_count != count:
            return [
                f"free_ostructure(0x{vaddr:x}) released {count} block(s) "
                f"but the reference tracked {sw_count} version(s)"
            ]
        return []

    # -- full-state sweep ----------------------------------------------------

    def compare_all(self, manager: "OStructureManager") -> list[str]:
        """Diff the complete version state of both models."""
        problems = []
        for vaddr in sorted(set(manager.lists) | set(self.structs)):
            lst = manager.lists.get(vaddr)
            hw = (
                {b.version: (b.value, b.locked_by) for b in lst}
                if lst is not None
                else {}
            )
            sw_struct = self.structs.get(vaddr)
            sw = sw_struct.dump() if sw_struct is not None else {}
            if hw == sw:
                continue
            only_hw = sorted(set(hw) - set(sw))
            only_sw = sorted(set(sw) - set(hw))
            if only_hw:
                problems.append(
                    f"0x{vaddr:x}: versions {only_hw} exist in hw only"
                )
            if only_sw:
                problems.append(
                    f"0x{vaddr:x}: versions {only_sw} exist in reference only"
                )
            for v in sorted(set(hw) & set(sw)):
                if hw[v] != sw[v]:
                    problems.append(
                        f"0x{vaddr:x} v{v}: hw (value, locker)={hw[v]!r} "
                        f"reference={sw[v]!r}"
                    )
        return problems

    # -- diagnostics ---------------------------------------------------------

    def _why_not_exact(self, vaddr: int, version: int) -> str:
        sw = self._sw(vaddr)
        if version not in sw._versions:
            return "does not exist (reclaimed or never created)"
        return f"is locked by task {sw.locker_of(version)}"
