"""One function per table/figure of the paper's evaluation (Section IV).

Every function returns a plain dict with a ``rows`` list (the data the
paper plots) plus a ``text`` rendering; the benchmark harness times the
underlying simulations and prints the text.  Workload scale comes from a
:class:`~repro.harness.presets.Scale`; the machine platform defaults to
Table II.

Every simulation here goes through :mod:`repro.harness.runner`: each
experiment builds its full list of :class:`~repro.harness.runner.RunSpec`
up front (in paper order) and hands it to a
:class:`~repro.harness.runner.SweepRunner`, which fans the independent
runs out over a process pool and memoises finished runs on disk.  Pass
``runner=`` to control parallelism/caching; the default runner reads
``REPRO_JOBS`` and ``REPRO_CACHE`` from the environment.  Because every
run is seeded and self-contained, the assembled rows are bit-identical
whether the sweep executes serially, in parallel, or from cache.
"""

from __future__ import annotations

import dataclasses

from ..config import MachineConfig, TABLE2
from ..workloads.opgen import READ_INTENSIVE, WRITE_INTENSIVE
from .presets import QUICK, Scale
from .report import format_table
from .runner import RunResult, RunSpec, SweepRunner, run_sweep
from .sweeps import (  # noqa: F401  (re-exported: tests and benches use them)
    FIG8_MIX,
    MIXES,
    _irregular_inputs,
    _run_irregular,
    _run_regular,
    _seed,
    fig8_spec,
    gc_spec,
    irregular_spec,
    regular_spec,
)

#: Paper ordering of the Figure 6/7/9/10 benchmarks.
IRREGULAR = ("linked_list", "binary_tree", "hash_table", "rb_tree")
REGULAR = ("levenshtein", "matmul")
ALL_BENCHMARKS = IRREGULAR + REGULAR


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


def table2_platform(config: MachineConfig = TABLE2) -> dict:
    """Render the platform and verify the configured latencies end-to-end."""
    from ..sim.hierarchy import MemoryHierarchy
    from ..sim.stats import SimStats

    h = MemoryHierarchy(config, SimStats())
    cold = h.access(0, 0x10000)
    l1_hit = h.access(0, 0x10000)
    h2 = MemoryHierarchy(config, SimStats())
    h2.access(0, 0x10000)
    l2_hit = h2.access(1 % config.num_cores, 0x10000)

    rows = [
        ("Processor", f"{config.issue_width}-way in-order, {config.clock_ghz} GHz"),
        ("L1 I/D", f"{config.l1.size_bytes // 1024} KB, {config.l1.ways}-way, "
                   f"64 B block, {config.l1.hit_latency} cycles"),
        ("L2", f"{config.l2_kib_per_core} KB x {config.num_cores} cores, shared, "
               f"{config.l2_ways}-way, {config.l2_hit_latency} cycles"),
        ("Memory", f"{config.dram_latency_ns} ns = {config.dram_latency_cycles} cycles"),
        ("measured: L1 hit", f"{l1_hit} cycles"),
        ("measured: L2 hit (remote fill)", f"{l2_hit} cycles"),
        ("measured: cold miss", f"{cold} cycles"),
    ]
    return {
        "rows": rows,
        "checks": {
            "l1_hit": l1_hit == config.l1.hit_latency,
            "l2_hit": l2_hit == config.l1.hit_latency + config.l2_hit_latency,
            "cold": cold
            == config.l1.hit_latency + config.l2_hit_latency + config.dram_latency_cycles,
        },
        "text": format_table(("Parameter", "Value"), rows, title="Table II platform"),
    }


# ---------------------------------------------------------------------------
# Figure 6: speedup of parallel versioned over sequential unversioned
# ---------------------------------------------------------------------------


def fig6_speedup(
    scale: Scale = QUICK,
    config: MachineConfig = TABLE2,
    runner: SweepRunner | None = None,
) -> dict:
    """Speedup of parallel versioned (max cores) over sequential unversioned.

    Small/large sizes x read-intensive (4R-1W) / write-intensive (1R-1W)
    for the four irregular structures; small/large problem sizes for
    Levenshtein and matmul.
    """
    cores = scale.max_cores
    specs: list[RunSpec] = []
    labels: list[tuple[str, str, str]] = []
    for bench in IRREGULAR:
        for size in ("small", "large"):
            for mix in (READ_INTENSIVE, WRITE_INTENSIVE):
                specs.append(irregular_spec(
                    bench, config, scale, size, mix.name, "unversioned"))
                specs.append(irregular_spec(
                    bench, config, scale, size, mix.name, "versioned", cores))
                labels.append((bench, size, mix.name))
    for bench in REGULAR:
        for size in ("small", "large"):
            specs.append(regular_spec(bench, config, scale, size, "unversioned"))
            specs.append(regular_spec(bench, config, scale, size, "versioned", cores))
            labels.append((bench, size, "-"))

    results = run_sweep(specs, runner)
    rows = []
    for i, (bench, size, mix) in enumerate(labels):
        u, v = results[2 * i], results[2 * i + 1]
        rows.append((bench, size, mix, u.cycles / v.cycles))
    from .report import format_bars

    bars = format_bars(
        f"Figure 6 (bars; | marks break-even)",
        [(f"{b}/{s}/{m}", sp) for b, s, m, sp in rows],
    )
    return {
        "rows": rows,
        "text": format_table(
            ("benchmark", "size", "mix", f"speedup@{cores}c"),
            rows,
            title=f"Figure 6: parallel versioned ({cores} cores) vs sequential "
                  f"unversioned [{scale.name}]",
        ) + "\n\n" + bars,
    }


# ---------------------------------------------------------------------------
# Figure 7: scalability (speedup over sequential versioned)
# ---------------------------------------------------------------------------


def fig7_scalability(
    scale: Scale = QUICK,
    config: MachineConfig = TABLE2,
    runner: SweepRunner | None = None,
) -> dict:
    """Self-speedup of versioned runs, large read-intensive inputs."""

    def spec_for(bench: str, cores: int) -> RunSpec:
        if bench in IRREGULAR:
            return irregular_spec(bench, config, scale, "large",
                                  READ_INTENSIVE.name, "versioned", cores)
        return regular_spec(bench, config, scale, "large", "versioned", cores)

    specs: list[RunSpec] = []
    for bench in ALL_BENCHMARKS:
        specs.append(spec_for(bench, 1))
        specs.extend(spec_for(bench, c) for c in scale.core_counts)

    results = run_sweep(specs, runner)
    rows = []
    series: dict[str, list[float]] = {}
    stride = 1 + len(scale.core_counts)
    for bi, bench in enumerate(ALL_BENCHMARKS):
        base = results[bi * stride]
        speedups = []
        for ci, cores in enumerate(scale.core_counts):
            run = results[bi * stride + 1 + ci]
            speedups.append(base.cycles / run.cycles)
            rows.append((bench, cores, base.cycles / run.cycles))
        series[bench] = speedups
    from .report import format_series

    return {
        "rows": rows,
        "series": series,
        "cores": list(scale.core_counts),
        "text": format_series(
            f"Figure 7: scalability over sequential versioned [{scale.name}]",
            "cores",
            list(scale.core_counts),
            series,
        ),
    }


# ---------------------------------------------------------------------------
# Figure 8: snapshot isolation vs read-write lock
# ---------------------------------------------------------------------------


def fig8_snapshot_isolation(
    scale: Scale = QUICK,
    config: MachineConfig = TABLE2,
    runner: SweepRunner | None = None,
) -> dict:
    """Versioned binary tree vs rwlock tree; 3:1 scan:insert, 3 scan ranges."""
    scan_ranges = (1, 8, 64)
    specs: list[RunSpec] = []
    for scan_range in scan_ranges:
        specs.append(fig8_spec("versioned", config, scale, scan_range, 1))
        specs.append(fig8_spec("rwlock", config, scale, scan_range, 1))
        for cores in scale.core_counts:
            specs.append(fig8_spec("versioned", config, scale, scan_range, cores))
            specs.append(fig8_spec("rwlock", config, scale, scan_range, cores))

    results = iter(run_sweep(specs, runner))
    rows = []
    ratios: dict[str, list[float]] = {}
    self_speedups: dict[str, list[float]] = {"versioned": [], "rwlock": []}
    for scan_range in scan_ranges:
        v1 = next(results)
        r1 = next(results)
        ratio_series = []
        for cores in scale.core_counts:
            v = next(results)
            r = next(results)
            ratio = r.cycles / v.cycles
            ratio_series.append(ratio)
            rows.append((scan_range, cores, ratio))
            if cores == scale.core_counts[-1]:
                self_speedups["versioned"].append(v1.cycles / v.cycles)
                self_speedups["rwlock"].append(r1.cycles / r.cycles)
        ratios[f"scan-{scan_range}"] = ratio_series

    avg_v = sum(self_speedups["versioned"]) / len(self_speedups["versioned"])
    avg_r = sum(self_speedups["rwlock"]) / len(self_speedups["rwlock"])
    from .report import format_series

    text = format_series(
        f"Figure 8: versioned tree / rwlock tree performance ratio [{scale.name}] "
        f"(>1 means versioned faster)",
        "cores",
        list(scale.core_counts),
        ratios,
    )
    text += (
        f"\nAvg self-speedup at {scale.core_counts[-1]} cores: "
        f"versioned = {avg_v:.1f}, rwlock = {avg_r:.1f}"
    )
    return {
        "rows": rows,
        "series": ratios,
        "self_speedup_versioned": avg_v,
        "self_speedup_rwlock": avg_r,
        "text": text,
    }


# ---------------------------------------------------------------------------
# Figure 9: L1 size sensitivity
# ---------------------------------------------------------------------------

_FIG9_BASELINE_KIB = 32


def fig9_l1_size(
    scale: Scale = QUICK,
    config: MachineConfig = TABLE2,
    runner: SweepRunner | None = None,
) -> dict:
    """Relative speedup vs the 32 KB L1 baseline for U / 1T / NT runs."""
    sizes = sorted(set(scale.l1_sizes_kib) | {_FIG9_BASELINE_KIB})
    cores = scale.max_cores
    variants = ("U", "1T", f"{cores}T")

    def spec_for(bench: str, variant: str, kib: int) -> RunSpec:
        cfg = config.with_l1_kib(kib)
        if bench in IRREGULAR:
            if variant == "U":
                return irregular_spec(bench, cfg, scale, "large",
                                      READ_INTENSIVE.name, "unversioned",
                                      n_ops=scale.sens_ops)
            c = 1 if variant == "1T" else cores
            return irregular_spec(bench, cfg, scale, "large",
                                  READ_INTENSIVE.name, "versioned", c,
                                  n_ops=scale.sens_ops)
        if variant == "U":
            return regular_spec(bench, cfg, scale, "large", "unversioned")
        c = 1 if variant == "1T" else cores
        return regular_spec(bench, cfg, scale, "large", "versioned", c)

    specs: list[RunSpec] = []
    for bench in ALL_BENCHMARKS:
        for variant in variants:
            specs.append(spec_for(bench, variant, _FIG9_BASELINE_KIB))
            specs.extend(spec_for(bench, variant, kib)
                         for kib in sizes if kib != _FIG9_BASELINE_KIB)

    results = iter(run_sweep(specs, runner))
    rows = []
    for bench in ALL_BENCHMARKS:
        for variant in variants:
            baseline = next(results)
            for kib in sizes:
                if kib == _FIG9_BASELINE_KIB:
                    rel = 0.0
                else:
                    rel = baseline.cycles / next(results).cycles - 1.0
                rows.append((bench, variant, kib, rel))
    return {
        "rows": rows,
        "text": format_table(
            ("benchmark", "variant", "L1 KiB", "speedup vs 32KB"),
            rows,
            title=f"Figure 9: L1 size sensitivity [{scale.name}]",
            floatfmt="{:+.3f}",
        ),
    }


# ---------------------------------------------------------------------------
# Figure 10: injected versioned-op latency
# ---------------------------------------------------------------------------


def fig10_latency(
    scale: Scale = QUICK,
    config: MachineConfig = TABLE2,
    runner: SweepRunner | None = None,
) -> dict:
    """Slowdown from +2..+10 cycles per versioned operation (1T and NT)."""
    cores = scale.max_cores

    def spec_for(bench: str, c: int, extra: int) -> RunSpec:
        cfg = config.with_versioned_latency(extra)
        if bench in IRREGULAR:
            return irregular_spec(bench, cfg, scale, "large",
                                  READ_INTENSIVE.name, "versioned", c,
                                  n_ops=scale.sens_ops)
        return regular_spec(bench, cfg, scale, "large", "versioned", c)

    variants = ((1, "1T"), (cores, f"{cores}T"))
    specs: list[RunSpec] = []
    for bench in ALL_BENCHMARKS:
        for c, _tag in variants:
            specs.append(spec_for(bench, c, 0))
            specs.extend(spec_for(bench, c, extra) for extra in scale.latencies)

    results = iter(run_sweep(specs, runner))
    rows = []
    for bench in ALL_BENCHMARKS:
        for _c, tag in variants:
            base = next(results)
            for extra in scale.latencies:
                r = next(results)
                rows.append((bench, tag, extra, base.cycles / r.cycles - 1.0))
    return {
        "rows": rows,
        "text": format_table(
            ("benchmark", "variant", "+cycles", "speedup vs no overhead"),
            rows,
            title=f"Figure 10: versioned-op latency sensitivity [{scale.name}]",
            floatfmt="{:+.3f}",
        ),
    }


# ---------------------------------------------------------------------------
# Section IV-F: garbage collection overhead
# ---------------------------------------------------------------------------


def gc_overhead(
    scale: Scale = QUICK,
    config: MachineConfig = TABLE2,
    runner: SweepRunner | None = None,
) -> dict:
    """Sequential list workload under tight / ample / no-sorting configs.

    The paper: a tight configuration triggering 135 GC phases was 0.1%
    slower than one with enough free blocks to never collect, which was
    itself 0.1% slower than a no-version-sorting configuration.
    """

    def cfg_with(**kw) -> MachineConfig:
        return dataclasses.replace(config, num_cores=1, **kw)

    tight, ample, nosort = run_sweep(
        [
            gc_spec(cfg_with(free_list_blocks=96, gc_watermark=64), scale),
            gc_spec(cfg_with(free_list_blocks=1 << 17, gc_watermark=8), scale),
            gc_spec(cfg_with(free_list_blocks=1 << 17, gc_watermark=8,
                             sorted_version_lists=False), scale),
        ],
        runner,
    )

    rows = [
        ("tight (GC active)", tight.cycles, tight.stats.gc_phases,
         tight.stats.gc_reclaimed, tight.cycles / ample.cycles - 1.0),
        ("ample (no GC)", ample.cycles, ample.stats.gc_phases,
         ample.stats.gc_reclaimed, 0.0),
        ("no sorting", nosort.cycles, nosort.stats.gc_phases,
         nosort.stats.gc_reclaimed, nosort.cycles / ample.cycles - 1.0),
    ]
    return {
        "rows": rows,
        "tight_phases": tight.stats.gc_phases,
        "overhead": tight.cycles / ample.cycles - 1.0,
        "text": format_table(
            ("config", "cycles", "GC phases", "reclaimed", "vs ample"),
            rows,
            title=f"Section IV-F: GC overhead [{scale.name}]",
            floatfmt="{:+.4f}",
        ),
    }


# ---------------------------------------------------------------------------
# Observability summary: metrics-enabled sweep over the irregular structures
# ---------------------------------------------------------------------------


def _hist_stats(snapshot: dict | None, name: str) -> tuple:
    """(count, mean, max) of one histogram from a metrics snapshot."""
    hist = ((snapshot or {}).get("histograms") or {}).get(name)
    if not hist or not hist.get("count"):
        return (0, 0.0, 0)
    return (hist["count"], float(hist["mean"]), hist["max"])


def obs_summary(
    scale: Scale = QUICK,
    config: MachineConfig = TABLE2,
    runner: SweepRunner | None = None,
) -> dict:
    """Distributional metrics across the irregular structures.

    Runs every irregular benchmark under both op mixes with the
    :mod:`repro.obs` metrics registry enabled and a tight free list (the
    ``gc`` experiment's pressure knobs, so the GC-lag histogram fills),
    then tabulates the aggregated snapshots each
    :class:`~repro.harness.runner.RunResult` row carries: version-list
    walk length, compressed-line occupancy, GC reclamation lag and
    lock-wait time.  The distributions are the paper's Section III
    design arguments made measurable — e.g. compression keeps the
    *typical* walk at zero blocks even when the tail is long.
    """
    cores = scale.max_cores
    cfg = dataclasses.replace(
        config, metrics=True, free_list_blocks=96, gc_watermark=64,
        refill_blocks=256,
    )
    specs: list[RunSpec] = []
    labels: list[tuple[str, str]] = []
    for bench in IRREGULAR:
        for mix in (READ_INTENSIVE, WRITE_INTENSIVE):
            specs.append(irregular_spec(
                bench, cfg, scale, "small", mix.name, "versioned", cores))
            labels.append((bench, mix.name))

    results = run_sweep(specs, runner)
    rows = []
    for (bench, mix), result in zip(labels, results):
        walk_n, walk_mean, walk_max = _hist_stats(result.metrics, "walk_length")
        _, occ_mean, _ = _hist_stats(result.metrics, "line_occupancy")
        lag_n, lag_mean, _ = _hist_stats(result.metrics, "gc_lag")
        wait_n, wait_mean, _ = _hist_stats(result.metrics, "lock_wait")
        rows.append((
            bench, mix, walk_n, walk_mean, walk_max, occ_mean,
            lag_n, lag_mean, wait_n, wait_mean,
        ))
    return {
        "rows": rows,
        "text": format_table(
            ("benchmark", "mix", "lookups", "walk mean", "walk max",
             "line occ", "reclaims", "GC lag", "waits", "wait mean"),
            rows,
            title=f"Observability: metric distributions @ {cores} cores "
                  f"[{scale.name}]",
        ),
    }
