"""One function per table/figure of the paper's evaluation (Section IV).

Every function returns a plain dict with a ``rows`` list (the data the
paper plots) plus a ``text`` rendering; the benchmark harness times the
underlying simulations and prints the text.  Workload scale comes from a
:class:`~repro.harness.presets.Scale`; the machine platform defaults to
Table II.
"""

from __future__ import annotations

from typing import Callable

from ..config import MachineConfig, TABLE2
from ..workloads import binary_tree, hash_table, levenshtein, linked_list, matmul, rb_tree
from ..workloads import rwlock_tree
from ..workloads.base import WorkloadRun
from ..workloads.opgen import (
    OpMix,
    READ_INTENSIVE,
    SCAN,
    WRITE_INTENSIVE,
    generate_ops,
    initial_keys,
)
from .presets import QUICK, Scale
from .report import format_table

#: Paper ordering of the Figure 6/7/9/10 benchmarks.
IRREGULAR = ("linked_list", "binary_tree", "hash_table", "rb_tree")
REGULAR = ("levenshtein", "matmul")
ALL_BENCHMARKS = IRREGULAR + REGULAR

_IRREGULAR_MODULES = {
    "linked_list": linked_list,
    "binary_tree": binary_tree,
    "hash_table": hash_table,
    "rb_tree": rb_tree,
}
_REGULAR_MODULES = {"levenshtein": levenshtein, "matmul": matmul}


def _seed(scale: Scale, *parts: object) -> int:
    """Deterministic seed from the experiment coordinates.

    Uses crc32 rather than ``hash()`` — the latter is randomized per
    process, which would make every pytest invocation run different
    workloads.
    """
    import zlib

    digest = zlib.crc32(repr(parts).encode())
    return (scale.seed + digest) % (1 << 31)


def _irregular_inputs(
    scale: Scale, bench: str, size: str, mix: OpMix, n_ops: int | None = None
) -> tuple[list[int], list[tuple[str, int, int]]]:
    elements = scale.small_elements if size == "small" else scale.large_elements
    seed = _seed(scale, bench, size, mix.name)
    init = initial_keys(elements, elements * scale.key_space_factor, seed)
    ops = generate_ops(
        n_ops or scale.n_ops, mix, elements * scale.key_space_factor, seed
    )
    return init, ops


def _run_irregular(
    bench: str,
    config: MachineConfig,
    scale: Scale,
    size: str,
    mix: OpMix,
    variant: str,
    cores: int = 1,
    n_ops: int | None = None,
) -> WorkloadRun:
    init, ops = _irregular_inputs(scale, bench, size, mix, n_ops)
    mod = _IRREGULAR_MODULES[bench]
    if variant == "unversioned":
        return mod.run_unversioned(config, init, ops)
    return mod.run_versioned(config, init, ops, cores)


def _run_regular(
    bench: str,
    config: MachineConfig,
    scale: Scale,
    size: str,
    variant: str,
    cores: int = 1,
) -> WorkloadRun:
    if bench == "matmul":
        n = scale.matmul_small if size == "small" else scale.matmul_large
    else:
        n = scale.lev_small if size == "small" else scale.lev_large
    mod = _REGULAR_MODULES[bench]
    if variant == "unversioned":
        return mod.run_unversioned(config, n, seed=_seed(scale, bench, size))
    return mod.run_versioned(config, n, cores, seed=_seed(scale, bench, size))


# ---------------------------------------------------------------------------
# Table II
# ---------------------------------------------------------------------------


def table2_platform(config: MachineConfig = TABLE2) -> dict:
    """Render the platform and verify the configured latencies end-to-end."""
    from ..sim.hierarchy import MemoryHierarchy
    from ..sim.stats import SimStats

    h = MemoryHierarchy(config, SimStats())
    cold = h.access(0, 0x10000)
    l1_hit = h.access(0, 0x10000)
    h2 = MemoryHierarchy(config, SimStats())
    h2.access(0, 0x10000)
    l2_hit = h2.access(1 % config.num_cores, 0x10000)

    rows = [
        ("Processor", f"{config.issue_width}-way in-order, {config.clock_ghz} GHz"),
        ("L1 I/D", f"{config.l1.size_bytes // 1024} KB, {config.l1.ways}-way, "
                   f"64 B block, {config.l1.hit_latency} cycles"),
        ("L2", f"{config.l2_kib_per_core} KB x {config.num_cores} cores, shared, "
               f"{config.l2_ways}-way, {config.l2_hit_latency} cycles"),
        ("Memory", f"{config.dram_latency_ns} ns = {config.dram_latency_cycles} cycles"),
        ("measured: L1 hit", f"{l1_hit} cycles"),
        ("measured: L2 hit (remote fill)", f"{l2_hit} cycles"),
        ("measured: cold miss", f"{cold} cycles"),
    ]
    return {
        "rows": rows,
        "checks": {
            "l1_hit": l1_hit == config.l1.hit_latency,
            "l2_hit": l2_hit == config.l1.hit_latency + config.l2_hit_latency,
            "cold": cold
            == config.l1.hit_latency + config.l2_hit_latency + config.dram_latency_cycles,
        },
        "text": format_table(("Parameter", "Value"), rows, title="Table II platform"),
    }


# ---------------------------------------------------------------------------
# Figure 6: speedup of parallel versioned over sequential unversioned
# ---------------------------------------------------------------------------


def fig6_speedup(scale: Scale = QUICK, config: MachineConfig = TABLE2) -> dict:
    """Speedup of parallel versioned (max cores) over sequential unversioned.

    Small/large sizes x read-intensive (4R-1W) / write-intensive (1R-1W)
    for the four irregular structures; small/large problem sizes for
    Levenshtein and matmul.
    """
    cores = scale.max_cores
    rows = []
    for bench in IRREGULAR:
        for size in ("small", "large"):
            for mix in (READ_INTENSIVE, WRITE_INTENSIVE):
                u = _run_irregular(bench, config, scale, size, mix, "unversioned")
                v = _run_irregular(bench, config, scale, size, mix, "versioned", cores)
                rows.append((bench, size, mix.name, u.cycles / v.cycles))
    for bench in REGULAR:
        for size in ("small", "large"):
            u = _run_regular(bench, config, scale, size, "unversioned")
            v = _run_regular(bench, config, scale, size, "versioned", cores)
            rows.append((bench, size, "-", u.cycles / v.cycles))
    from .report import format_bars

    bars = format_bars(
        f"Figure 6 (bars; | marks break-even)",
        [(f"{b}/{s}/{m}", sp) for b, s, m, sp in rows],
    )
    return {
        "rows": rows,
        "text": format_table(
            ("benchmark", "size", "mix", f"speedup@{cores}c"),
            rows,
            title=f"Figure 6: parallel versioned ({cores} cores) vs sequential "
                  f"unversioned [{scale.name}]",
        ) + "\n\n" + bars,
    }


# ---------------------------------------------------------------------------
# Figure 7: scalability (speedup over sequential versioned)
# ---------------------------------------------------------------------------


def fig7_scalability(scale: Scale = QUICK, config: MachineConfig = TABLE2) -> dict:
    """Self-speedup of versioned runs, large read-intensive inputs."""
    rows = []
    series: dict[str, list[float]] = {}
    for bench in ALL_BENCHMARKS:
        if bench in IRREGULAR:
            base = _run_irregular(bench, config, scale, "large", READ_INTENSIVE,
                                  "versioned", 1)
            runner: Callable[[int], WorkloadRun] = lambda c, b=bench: _run_irregular(
                b, config, scale, "large", READ_INTENSIVE, "versioned", c
            )
        else:
            base = _run_regular(bench, config, scale, "large", "versioned", 1)
            runner = lambda c, b=bench: _run_regular(
                b, config, scale, "large", "versioned", c
            )
        speedups = []
        for cores in scale.core_counts:
            run = runner(cores)
            speedups.append(base.cycles / run.cycles)
            rows.append((bench, cores, base.cycles / run.cycles))
        series[bench] = speedups
    from .report import format_series

    return {
        "rows": rows,
        "series": series,
        "cores": list(scale.core_counts),
        "text": format_series(
            f"Figure 7: scalability over sequential versioned [{scale.name}]",
            "cores",
            list(scale.core_counts),
            series,
        ),
    }


# ---------------------------------------------------------------------------
# Figure 8: snapshot isolation vs read-write lock
# ---------------------------------------------------------------------------


def fig8_snapshot_isolation(scale: Scale = QUICK, config: MachineConfig = TABLE2) -> dict:
    """Versioned binary tree vs rwlock tree; 3:1 scan:insert, 3 scan ranges."""
    mix = OpMix(reads=3, writes=1, name="3S-1W")
    rows = []
    ratios: dict[str, list[float]] = {}
    self_speedups = {"versioned": [], "rwlock": []}
    for scan_range in (1, 8, 64):
        seed = _seed(scale, "fig8", scan_range)
        init = initial_keys(
            scale.fig8_elements, scale.fig8_elements * scale.key_space_factor, seed
        )
        ops = generate_ops(
            scale.fig8_ops, mix, scale.fig8_elements * scale.key_space_factor,
            seed, read_op=SCAN, scan_range=scan_range,
        )
        # Figure 8 measures scans and inserts only.
        ops = [(op if op != "delete" else "insert", k, e) for op, k, e in ops]
        v1 = binary_tree.run_versioned(config, init, ops, 1)
        r1 = rwlock_tree.run_rwlock(config, init, ops, 1)
        ratio_series = []
        for cores in scale.core_counts:
            v = binary_tree.run_versioned(config, init, ops, cores)
            r = rwlock_tree.run_rwlock(config, init, ops, cores)
            ratio = r.cycles / v.cycles
            ratio_series.append(ratio)
            rows.append((scan_range, cores, ratio))
            if cores == scale.core_counts[-1]:
                self_speedups["versioned"].append(v1.cycles / v.cycles)
                self_speedups["rwlock"].append(r1.cycles / r.cycles)
        ratios[f"scan-{scan_range}"] = ratio_series

    avg_v = sum(self_speedups["versioned"]) / len(self_speedups["versioned"])
    avg_r = sum(self_speedups["rwlock"]) / len(self_speedups["rwlock"])
    from .report import format_series

    text = format_series(
        f"Figure 8: versioned tree / rwlock tree performance ratio [{scale.name}] "
        f"(>1 means versioned faster)",
        "cores",
        list(scale.core_counts),
        ratios,
    )
    text += (
        f"\nAvg self-speedup at {scale.core_counts[-1]} cores: "
        f"versioned = {avg_v:.1f}, rwlock = {avg_r:.1f}"
    )
    return {
        "rows": rows,
        "series": ratios,
        "self_speedup_versioned": avg_v,
        "self_speedup_rwlock": avg_r,
        "text": text,
    }


# ---------------------------------------------------------------------------
# Figure 9: L1 size sensitivity
# ---------------------------------------------------------------------------

_FIG9_BASELINE_KIB = 32


def fig9_l1_size(scale: Scale = QUICK, config: MachineConfig = TABLE2) -> dict:
    """Relative speedup vs the 32 KB L1 baseline for U / 1T / NT runs."""
    sizes = sorted(set(scale.l1_sizes_kib) | {_FIG9_BASELINE_KIB})
    cores = scale.max_cores
    variants = ("U", "1T", f"{cores}T")
    rows = []

    def run(bench: str, variant: str, kib: int) -> WorkloadRun:
        cfg = config.with_l1_kib(kib)
        if bench in IRREGULAR:
            if variant == "U":
                return _run_irregular(bench, cfg, scale, "large", READ_INTENSIVE,
                                      "unversioned", n_ops=scale.sens_ops)
            c = 1 if variant == "1T" else cores
            return _run_irregular(bench, cfg, scale, "large", READ_INTENSIVE,
                                  "versioned", c, n_ops=scale.sens_ops)
        if variant == "U":
            return _run_regular(bench, cfg, scale, "large", "unversioned")
        c = 1 if variant == "1T" else cores
        return _run_regular(bench, cfg, scale, "large", "versioned", c)

    for bench in ALL_BENCHMARKS:
        for variant in variants:
            baseline = run(bench, variant, _FIG9_BASELINE_KIB)
            for kib in sizes:
                if kib == _FIG9_BASELINE_KIB:
                    rel = 0.0
                else:
                    r = run(bench, variant, kib)
                    rel = baseline.cycles / r.cycles - 1.0
                rows.append((bench, variant, kib, rel))
    return {
        "rows": rows,
        "text": format_table(
            ("benchmark", "variant", "L1 KiB", "speedup vs 32KB"),
            rows,
            title=f"Figure 9: L1 size sensitivity [{scale.name}]",
            floatfmt="{:+.3f}",
        ),
    }


# ---------------------------------------------------------------------------
# Figure 10: injected versioned-op latency
# ---------------------------------------------------------------------------


def fig10_latency(scale: Scale = QUICK, config: MachineConfig = TABLE2) -> dict:
    """Slowdown from +2..+10 cycles per versioned operation (1T and NT)."""
    cores = scale.max_cores
    rows = []

    def run(bench: str, c: int, extra: int) -> WorkloadRun:
        cfg = config.with_versioned_latency(extra)
        if bench in IRREGULAR:
            return _run_irregular(bench, cfg, scale, "large", READ_INTENSIVE,
                                  "versioned", c, n_ops=scale.sens_ops)
        return _run_regular(bench, cfg, scale, "large", "versioned", c)

    for bench in ALL_BENCHMARKS:
        for c, tag in ((1, "1T"), (cores, f"{cores}T")):
            base = run(bench, c, 0)
            for extra in scale.latencies:
                r = run(bench, c, extra)
                rows.append((bench, tag, extra, base.cycles / r.cycles - 1.0))
    return {
        "rows": rows,
        "text": format_table(
            ("benchmark", "variant", "+cycles", "speedup vs no overhead"),
            rows,
            title=f"Figure 10: versioned-op latency sensitivity [{scale.name}]",
            floatfmt="{:+.3f}",
        ),
    }


# ---------------------------------------------------------------------------
# Section IV-F: garbage collection overhead
# ---------------------------------------------------------------------------


def gc_overhead(scale: Scale = QUICK, config: MachineConfig = TABLE2) -> dict:
    """Sequential list workload under tight / ample / no-sorting configs.

    The paper: a tight configuration triggering 135 GC phases was 0.1%
    slower than one with enough free blocks to never collect, which was
    itself 0.1% slower than a no-version-sorting configuration.
    """
    import dataclasses

    seed = _seed(scale, "gc")
    init = initial_keys(scale.gc_list_elements, scale.gc_list_elements * 8, seed)
    ops = generate_ops(scale.gc_ops, WRITE_INTENSIVE, scale.gc_list_elements * 8, seed)

    def run_with(**kw) -> WorkloadRun:
        cfg = dataclasses.replace(config, num_cores=1, **kw)
        return linked_list.run_versioned(cfg, init, ops, 1)

    tight = run_with(free_list_blocks=96, gc_watermark=64)
    ample = run_with(free_list_blocks=1 << 17, gc_watermark=8)
    nosort = run_with(free_list_blocks=1 << 17, gc_watermark=8,
                      sorted_version_lists=False)

    rows = [
        ("tight (GC active)", tight.cycles, tight.stats.gc_phases,
         tight.stats.gc_reclaimed, tight.cycles / ample.cycles - 1.0),
        ("ample (no GC)", ample.cycles, ample.stats.gc_phases,
         ample.stats.gc_reclaimed, 0.0),
        ("no sorting", nosort.cycles, nosort.stats.gc_phases,
         nosort.stats.gc_reclaimed, nosort.cycles / ample.cycles - 1.0),
    ]
    return {
        "rows": rows,
        "tight_phases": tight.stats.gc_phases,
        "overhead": tight.cycles / ample.cycles - 1.0,
        "text": format_table(
            ("config", "cycles", "GC phases", "reclaimed", "vs ample"),
            rows,
            title=f"Section IV-F: GC overhead [{scale.name}]",
            floatfmt="{:+.4f}",
        ),
    }
