"""Parallel sweep executor with a deterministic on-disk result cache.

Every figure of the paper's evaluation is a sweep of *independent*
simulations — benchmark x size x op-mix x core-count x config.  Each
simulation is seeded and self-contained, so the rows it produces do not
depend on where (or in which process) it runs.  That makes the sweep
embarrassingly parallel and memoisable:

- :class:`SweepRunner` fans a list of :class:`RunSpec` out over a
  ``ProcessPoolExecutor`` (worker count from ``REPRO_JOBS``, default
  ``os.cpu_count()``) and reassembles results in the order the specs were
  given — the paper order — so parallel output is **bit-identical** to
  the serial path.
- :class:`ResultCache` memoises finished runs as JSON under
  ``.repro_cache/<code-version>/``, keyed by a stable hash of the spec.
  Re-running a figure only simulates what changed; editing any file under
  ``src/repro`` changes the code-version component and invalidates the
  whole cache.  Escape hatches: ``REPRO_CACHE=0`` or ``--no-cache``.
- Duplicate specs inside one sweep are deduplicated before execution
  (several figures reuse their baseline run at multiple points).

The actual simulation entry points live in :mod:`repro.harness.sweeps`;
a :class:`RunSpec` names one of them plus picklable keyword arguments.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from ..errors import ConfigError

#: Default cache directory (under the current working directory).
CACHE_DIR_NAME = ".repro_cache"


# ---------------------------------------------------------------------------
# Specs and results.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One self-contained simulation: a sweep function plus its arguments.

    ``params`` is a tuple of ``(name, value)`` pairs sorted by name so
    equal specs compare, hash and ``repr`` identically — the repr is the
    cache identity.  Values must be picklable (they cross the process
    pool) and have deterministic reprs (dataclasses, strings, numbers).
    """

    fn: str
    params: tuple[tuple[str, Any], ...]


def make_spec(fn: str, **params: Any) -> RunSpec:
    """Build a :class:`RunSpec` with canonically ordered parameters."""
    return RunSpec(fn, tuple(sorted(params.items())))


class StatsView:
    """Attribute access over a plain stats dict (picklable, JSON-able).

    Mirrors the fields and derived rates of
    :meth:`repro.sim.stats.SimStats.snapshot`, so harness code written
    against ``run.stats.gc_phases``-style access works unchanged on
    results that crossed a process or cache boundary.
    """

    def __init__(self, data: dict[str, Any]):
        self.__dict__.update(data)

    def as_dict(self) -> dict[str, Any]:
        return dict(self.__dict__)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StatsView) and self.__dict__ == other.__dict__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsView({self.__dict__!r})"


@dataclass
class RunResult:
    """Reduced, serialisable outcome of one simulation."""

    cycles: int
    stats: StatsView

    @classmethod
    def from_workload(cls, run: Any) -> "RunResult":
        """Build from a :class:`~repro.workloads.base.WorkloadRun`."""
        return cls(cycles=run.cycles, stats=StatsView(run.stats.snapshot()))

    def to_json(self) -> dict[str, Any]:
        return {"cycles": self.cycles, "stats": self.stats.as_dict()}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RunResult":
        return cls(cycles=data["cycles"], stats=StatsView(data["stats"]))


# ---------------------------------------------------------------------------
# Code-version fingerprint (cache invalidation).
# ---------------------------------------------------------------------------

_code_version: str | None = None


def code_version() -> str:
    """Hash of every ``repro`` source file; changes invalidate the cache."""
    global _code_version
    if _code_version is None:
        h = hashlib.sha256()
        pkg = Path(__file__).resolve().parents[1]
        for path in sorted(pkg.rglob("*.py")):
            h.update(path.relative_to(pkg).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version = h.hexdigest()[:16]
    return _code_version


# ---------------------------------------------------------------------------
# On-disk result cache.
# ---------------------------------------------------------------------------


class ResultCache:
    """JSON result files under ``<root>/<code-version>/<spec-hash>.json``."""

    def __init__(self, root: str | Path | None = None, version: str | None = None):
        env_root = os.environ.get("REPRO_CACHE_DIR")
        self.root = Path(root if root is not None else (env_root or CACHE_DIR_NAME))
        self.version = version or code_version()

    def path_for(self, spec: RunSpec) -> Path:
        digest = hashlib.sha256(repr(spec).encode()).hexdigest()[:32]
        return self.root / self.version / f"{digest}.json"

    def load(self, spec: RunSpec) -> RunResult | None:
        try:
            data = json.loads(self.path_for(spec).read_text())
        except (OSError, ValueError):
            return None
        if data.get("spec") != repr(spec):
            return None  # hash collision or corrupted file: treat as miss
        try:
            return RunResult.from_json(data)
        except (KeyError, TypeError):
            return None

    def store(self, spec: RunSpec, result: RunResult) -> None:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"spec": repr(spec), **result.to_json()}
        # Write-then-rename so concurrent sweeps never see partial files.
        tmp = path.with_name(f"{path.stem}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)


# ---------------------------------------------------------------------------
# The sweep runner.
# ---------------------------------------------------------------------------


@dataclass
class RunnerStats:
    """Cumulative accounting across every sweep a runner executed."""

    requested: int = 0
    deduped: int = 0
    cache_hits: int = 0
    simulated: int = 0

    def snapshot(self) -> "RunnerStats":
        return RunnerStats(self.requested, self.deduped, self.cache_hits, self.simulated)

    def since(self, earlier: "RunnerStats") -> "RunnerStats":
        return RunnerStats(
            self.requested - earlier.requested,
            self.deduped - earlier.deduped,
            self.cache_hits - earlier.cache_hits,
            self.simulated - earlier.simulated,
        )

    def describe(self) -> str:
        return (
            f"{self.simulated} simulated, {self.cache_hits} cached, "
            f"{self.deduped} deduped of {self.requested} runs"
        )


def _jobs_from_env() -> int:
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        try:
            jobs = int(raw)
        except ValueError:
            raise ConfigError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
        if jobs < 1:
            raise ConfigError("REPRO_JOBS must be >= 1")
        return jobs
    return os.cpu_count() or 1


def _cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec in this process (also the pool-worker entry point)."""
    from . import sweeps  # local import: sweeps imports this module

    return sweeps.execute(spec)


class SweepRunner:
    """Executes sweeps of :class:`RunSpec` with caching and a process pool.

    ``jobs`` defaults to ``REPRO_JOBS`` or the host core count; caching
    defaults to on unless ``REPRO_CACHE`` disables it.  Results are always
    returned in spec order, so output is independent of worker count.
    """

    def __init__(
        self,
        jobs: int | None = None,
        use_cache: bool | None = None,
        cache_dir: str | Path | None = None,
    ):
        self.jobs = jobs if jobs is not None else _jobs_from_env()
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")
        if use_cache is None:
            use_cache = _cache_enabled_by_env()
        self.cache = ResultCache(cache_dir) if use_cache else None
        self.stats = RunnerStats()

    def run(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Run every spec; returns results aligned with ``specs``."""
        self.stats.requested += len(specs)
        positions: dict[RunSpec, list[int]] = {}
        for i, spec in enumerate(specs):
            positions.setdefault(spec, []).append(i)
        self.stats.deduped += len(specs) - len(positions)

        results: list[RunResult | None] = [None] * len(specs)
        missing: list[RunSpec] = []
        for spec in positions:
            cached = self.cache.load(spec) if self.cache is not None else None
            if cached is not None:
                self.stats.cache_hits += 1
                for i in positions[spec]:
                    results[i] = cached
            else:
                missing.append(spec)

        for spec, result in zip(missing, self._execute_all(missing)):
            self.stats.simulated += 1
            if self.cache is not None:
                self.cache.store(spec, result)
            for i in positions[spec]:
                results[i] = result
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _execute_all(self, specs: list[RunSpec]) -> list[RunResult]:
        if self.jobs > 1 and len(specs) > 1:
            workers = min(self.jobs, len(specs))
            # chunksize=1: individual runs vary by orders of magnitude
            # (large/32-core vs small/1-core), so fine-grained dispatch
            # keeps the pool balanced.
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(execute_spec, specs, chunksize=1))
        return [execute_spec(spec) for spec in specs]


_default_runner: SweepRunner | None = None


def get_runner(runner: SweepRunner | None = None) -> SweepRunner:
    """Return ``runner``, or the lazily created process-wide default."""
    global _default_runner
    if runner is not None:
        return runner
    if _default_runner is None:
        _default_runner = SweepRunner()
    return _default_runner


def run_sweep(
    specs: Sequence[RunSpec], runner: SweepRunner | None = None
) -> list[RunResult]:
    """Convenience wrapper: run ``specs`` on ``runner`` or the default."""
    return get_runner(runner).run(specs)
