"""Parallel sweep executor with a deterministic on-disk result cache.

Every figure of the paper's evaluation is a sweep of *independent*
simulations — benchmark x size x op-mix x core-count x config.  Each
simulation is seeded and self-contained, so the rows it produces do not
depend on where (or in which process) it runs.  That makes the sweep
embarrassingly parallel and memoisable:

- :class:`SweepRunner` fans a list of :class:`RunSpec` out over a
  ``ProcessPoolExecutor`` (worker count from ``REPRO_JOBS``, default
  ``os.cpu_count()``) and reassembles results in the order the specs were
  given — the paper order — so parallel output is **bit-identical** to
  the serial path.
- :class:`ResultCache` memoises finished runs as JSON under
  ``.repro_cache/<code-version>/``, keyed by a stable hash of the spec.
  Re-running a figure only simulates what changed; editing any file under
  ``src/repro`` changes the code-version component and invalidates the
  whole cache.  Escape hatches: ``REPRO_CACHE=0`` or ``--no-cache``.
- Duplicate specs inside one sweep are deduplicated before execution
  (several figures reuse their baseline run at multiple points).

The actual simulation entry points live in :mod:`repro.harness.sweeps`;
a :class:`RunSpec` names one of them plus picklable keyword arguments.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Iterator, Sequence

from ..errors import ConfigError, SweepFailure
from ..recovery.checkpoint import atomic_write_bytes
from ..sim.fuse import env_enabled as _fused_env_enabled

#: Default cache directory (under the current working directory).
CACHE_DIR_NAME = ".repro_cache"

#: Default checkpoint-image directory for ``checkpoint_every`` sweeps.
CKPT_DIR_NAME = ".repro_ckpt"


# ---------------------------------------------------------------------------
# Specs and results.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One self-contained simulation: a sweep function plus its arguments.

    ``params`` is a tuple of ``(name, value)`` pairs sorted by name so
    equal specs compare, hash and ``repr`` identically — the repr is the
    cache identity.  Values must be picklable (they cross the process
    pool) and have deterministic reprs (dataclasses, strings, numbers).
    """

    fn: str
    params: tuple[tuple[str, Any], ...]


def make_spec(fn: str, **params: Any) -> RunSpec:
    """Build a :class:`RunSpec` with canonically ordered parameters."""
    return RunSpec(fn, tuple(sorted(params.items())))


class StatsView:
    """Attribute access over a plain stats dict (picklable, JSON-able).

    Mirrors the fields and derived rates of
    :meth:`repro.sim.stats.SimStats.snapshot`, so harness code written
    against ``run.stats.gc_phases``-style access works unchanged on
    results that crossed a process or cache boundary.
    """

    def __init__(self, data: dict[str, Any]):
        self.__dict__.update(data)

    def as_dict(self) -> dict[str, Any]:
        return dict(self.__dict__)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StatsView) and self.__dict__ == other.__dict__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsView({self.__dict__!r})"


@dataclass
class RunResult:
    """Reduced, serialisable outcome of one simulation."""

    cycles: int
    stats: StatsView
    #: Aggregated :mod:`repro.obs` metrics snapshot (plain dicts), when
    #: the run's config enabled metrics; ``None`` otherwise.  Rides the
    #: cache/pool JSON round-trip like ``stats`` does.
    metrics: dict[str, Any] | None = None

    @classmethod
    def from_workload(cls, run: Any) -> "RunResult":
        """Build from a :class:`~repro.workloads.base.WorkloadRun`."""
        return cls(
            cycles=run.cycles,
            stats=StatsView(run.stats.snapshot()),
            metrics=getattr(run, "metrics", None),
        )

    def to_json(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"cycles": self.cycles, "stats": self.stats.as_dict()}
        if self.metrics is not None:
            doc["metrics"] = self.metrics
        return doc

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RunResult":
        return cls(
            cycles=data["cycles"],
            stats=StatsView(data["stats"]),
            metrics=data.get("metrics"),
        )


# ---------------------------------------------------------------------------
# Code-version fingerprint (cache invalidation).
# ---------------------------------------------------------------------------

_code_version: str | None = None


def code_version() -> str:
    """Hash of every ``repro`` source file; changes invalidate the cache."""
    global _code_version
    if _code_version is None:
        h = hashlib.sha256()
        pkg = Path(__file__).resolve().parents[1]
        for path in sorted(pkg.rglob("*.py")):
            h.update(path.relative_to(pkg).as_posix().encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _code_version = h.hexdigest()[:16]
    return _code_version


# ---------------------------------------------------------------------------
# On-disk result cache.
# ---------------------------------------------------------------------------


class ResultCache:
    """JSON result files under ``<root>/<code-version>/<spec-hash>.json``."""

    def __init__(self, root: str | Path | None = None, version: str | None = None):
        env_root = os.environ.get("REPRO_CACHE_DIR")
        self.root = Path(root if root is not None else (env_root or CACHE_DIR_NAME))
        self.version = version or code_version()

    def path_for(self, spec: RunSpec) -> Path:
        digest = hashlib.sha256(repr(spec).encode()).hexdigest()[:32]
        return self.root / self.version / f"{digest}.json"

    def load(self, spec: RunSpec) -> RunResult | None:
        try:
            data = json.loads(self.path_for(spec).read_text())
        except (OSError, ValueError):
            return None
        if data.get("spec") != repr(spec):
            return None  # hash collision or corrupted file: treat as miss
        try:
            return RunResult.from_json(data)
        except (KeyError, TypeError):
            return None

    def store(self, spec: RunSpec, result: RunResult) -> None:
        payload = {"spec": repr(spec), **result.to_json()}
        # Write-flush-fsync-rename (shared with the checkpoint images) so
        # concurrent sweeps and ``kill -9``-ed ones never see partial
        # files: an aborted write leaves at most a ``*.tmp`` straggler,
        # never a truncated ``.json``.
        atomic_write_bytes(self.path_for(spec), json.dumps(payload).encode())

    def clean_stale_tmp(self) -> int:
        """Remove ``*.tmp`` stragglers from interrupted stores; count removed."""
        removed = 0
        version_dir = self.root / self.version
        if not version_dir.is_dir():
            return 0
        for tmp in version_dir.glob("*.tmp"):
            try:
                tmp.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return removed


# ---------------------------------------------------------------------------
# The sweep runner.
# ---------------------------------------------------------------------------


@dataclass
class RunnerStats:
    """Cumulative accounting across every sweep a runner executed."""

    requested: int = 0
    deduped: int = 0
    cache_hits: int = 0
    simulated: int = 0
    #: Specs re-executed after a crash or timeout.
    retried: int = 0
    #: Runs that exceeded the per-run wall-clock timeout.
    timeouts: int = 0
    #: Pool-rebuild events caused by a worker process dying.
    crashes: int = 0

    def snapshot(self) -> "RunnerStats":
        return RunnerStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def since(self, earlier: "RunnerStats") -> "RunnerStats":
        return RunnerStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def describe(self) -> str:
        text = (
            f"{self.simulated} simulated, {self.cache_hits} cached, "
            f"{self.deduped} deduped of {self.requested} runs"
        )
        if self.retried or self.timeouts or self.crashes:
            text += (
                f" ({self.retried} retried, {self.timeouts} timed out, "
                f"{self.crashes} worker crash(es))"
            )
        return text


def _jobs_from_env() -> int:
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        try:
            jobs = int(raw)
        except ValueError:
            raise ConfigError(f"REPRO_JOBS must be an integer, got {raw!r}") from None
        if jobs < 1:
            raise ConfigError("REPRO_JOBS must be >= 1")
        return jobs
    return os.cpu_count() or 1


def _cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def _timeout_from_env() -> float | None:
    raw = os.environ.get("REPRO_RUN_TIMEOUT")
    if not raw:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_RUN_TIMEOUT must be a number of seconds, got {raw!r}"
        ) from None
    if timeout <= 0:
        raise ConfigError("REPRO_RUN_TIMEOUT must be > 0")
    return timeout


def _ckpt_every_from_env() -> int | None:
    raw = os.environ.get("REPRO_CKPT_EVERY")
    if not raw:
        return None
    try:
        every = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_CKPT_EVERY must be an integer, got {raw!r}"
        ) from None
    if every < 1:
        raise ConfigError("REPRO_CKPT_EVERY must be >= 1")
    return every


def _ckpt_dir_from_env() -> str:
    return os.environ.get("REPRO_CKPT_DIR") or CKPT_DIR_NAME


def _retries_from_env() -> int:
    raw = os.environ.get("REPRO_RUN_RETRIES")
    if not raw:
        return 2
    try:
        retries = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_RUN_RETRIES must be an integer, got {raw!r}"
        ) from None
    if retries < 0:
        raise ConfigError("REPRO_RUN_RETRIES must be >= 0")
    return retries


def _shutdown_pool(pool: ProcessPoolExecutor, *, kill: bool) -> None:
    """Tear a pool down without waiting on wedged or dead workers."""
    if kill:
        try:
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.terminate()
        except Exception:  # pragma: no cover - racing worker exit
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - pool already broken
        pass


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec in this process (also the pool-worker entry point)."""
    from . import sweeps  # local import: sweeps imports this module

    return sweeps.execute(spec)


def execute_spec_checkpointed(
    spec: RunSpec, root: str, every: int
) -> RunResult:
    """Run one spec under epoch checkpointing (pool-worker entry point).

    Images live in a per-spec directory under ``root``.  A previous
    incarnation's images — left behind when a worker (or the parent) was
    killed mid-run — turn the re-run into a *verified replay*: the state
    digest is checked at every surviving marker, then fresh images are
    captured beyond the old frontier.  On success the per-spec directory
    is deleted (the finished row lives in the result cache; the images
    only matter while the run is in flight).
    """
    import shutil

    from ..recovery.checkpoint import Checkpointer, load_images
    from ..sim.machine import add_machine_observer, remove_machine_observer

    spec_dir = (
        Path(root) / hashlib.sha256(repr(spec).encode()).hexdigest()[:32]
    )
    images, _corrupt = load_images(spec_dir, every=every)
    state: dict = {}

    def observe(machine) -> None:
        if "ckpt" not in state:
            state["ckpt"] = Checkpointer(
                machine, spec_dir, every, verify=images
            )

    add_machine_observer(observe)
    try:
        result = execute_spec(spec)
    finally:
        remove_machine_observer(observe)
        ckpt = state.get("ckpt")
        if ckpt is not None:
            ckpt.detach()
    shutil.rmtree(spec_dir, ignore_errors=True)
    return result


class SweepRunner:
    """Executes sweeps of :class:`RunSpec` with caching and a process pool.

    ``jobs`` defaults to ``REPRO_JOBS`` or the host core count; caching
    defaults to on unless ``REPRO_CACHE`` disables it.  Results are always
    returned in spec order, so output is independent of worker count.

    The parallel path is crash-tolerant: every run carries an optional
    wall-clock ``timeout`` (``REPRO_RUN_TIMEOUT``), a worker that dies or
    hangs gets its pool rebuilt and its spec retried with exponential
    backoff up to ``retries`` times (``REPRO_RUN_RETRIES``, default 2),
    and completed rows are persisted to the cache *as they finish* — so
    an interrupted or crashed sweep resumes from its survivors
    (``resume=True`` / ``--resume``) instead of starting over.

    ``checkpoint_every`` (``REPRO_CKPT_EVERY``) additionally checkpoints
    each *in-flight* simulation every N versioned ops into per-spec
    image directories under ``checkpoint_dir`` (``REPRO_CKPT_DIR``,
    default ``.repro_ckpt/``): a worker — or the whole parent — killed
    mid-row leaves its images behind, and the resumed sweep replays that
    row under digest verification (see :mod:`repro.recovery`).
    Checkpointed rows live in their own cache namespace
    (``<code-version>-ckpt<N>``) because the epoch pin changes GC
    dynamics; disabled (the default), checkpointing costs nothing.
    Likewise, runs under the ``REPRO_FUSED=0`` escape hatch append
    ``-nofuse`` (composable, e.g. ``<code-version>-ckpt500-nofuse``):
    the per-op tier is byte-identical to the fused one by contract, but
    rows produced while *verifying* that contract must never alias the
    rows they are checked against.

    Failures the worker *reports* (a raised simulation error) are
    deterministic and re-raise immediately; only process-level failures
    — a killed worker or a blown timeout — are retried.
    """

    #: Seconds between liveness/timeout scans of the in-flight futures.
    _poll_interval = 0.1

    def __init__(
        self,
        jobs: int | None = None,
        use_cache: bool | None = None,
        cache_dir: str | Path | None = None,
        *,
        timeout: float | None = None,
        retries: int | None = None,
        retry_backoff: float = 0.05,
        resume: bool = False,
        checkpoint_every: int | None = None,
        checkpoint_dir: str | Path | None = None,
    ):
        self.jobs = jobs if jobs is not None else _jobs_from_env()
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")
        self.timeout = timeout if timeout is not None else _timeout_from_env()
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError("timeout must be > 0")
        self.retries = retries if retries is not None else _retries_from_env()
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")
        self.retry_backoff = retry_backoff
        self.resume = resume
        self.checkpoint_every = (
            checkpoint_every
            if checkpoint_every is not None
            else _ckpt_every_from_env()
        )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1")
        self.checkpoint_dir = str(
            checkpoint_dir if checkpoint_dir is not None else _ckpt_dir_from_env()
        )
        if resume:
            use_cache = True  # resuming *is* reading the partial cache
        elif use_cache is None:
            use_cache = _cache_enabled_by_env()
        # The epoch pin makes checkpointed runs reclaim (slightly) less
        # aggressively than plain runs — same correctness, different
        # stats — so checkpointed rows get their own cache namespace
        # keyed by the cadence: a plain re-run never reads them.
        version = code_version()
        if self.checkpoint_every is not None:
            version = f"{version}-ckpt{self.checkpoint_every}"
        # Execution tier: ``config.fused`` is part of the spec repr and
        # therefore of the row digest, but the ``REPRO_FUSED`` escape
        # hatch flips the tier *without* touching config identity.  Rows
        # produced under it get their own namespace — the tiers are
        # byte-identical by contract, but the hatch exists precisely for
        # bisecting a suspected fusion bug, and a bisection that silently
        # reads the other tier's cached rows would prove nothing.
        if not _fused_env_enabled():
            version = f"{version}-nofuse"
        self.cache = ResultCache(cache_dir, version=version) if use_cache else None
        if resume and self.cache is not None:
            self.cache.clean_stale_tmp()
        self.stats = RunnerStats()

    def run(self, specs: Sequence[RunSpec]) -> list[RunResult]:
        """Run every spec; returns results aligned with ``specs``."""
        self.stats.requested += len(specs)
        positions: dict[RunSpec, list[int]] = {}
        for i, spec in enumerate(specs):
            positions.setdefault(spec, []).append(i)
        self.stats.deduped += len(specs) - len(positions)

        results: list[RunResult | None] = [None] * len(specs)
        missing: list[RunSpec] = []
        for spec in positions:
            cached = self.cache.load(spec) if self.cache is not None else None
            if cached is not None:
                self.stats.cache_hits += 1
                for i in positions[spec]:
                    results[i] = cached
            else:
                missing.append(spec)

        try:
            # Completion order, persisted row by row: a sweep killed at
            # any point keeps everything that already finished.
            for spec, result in self._execute_all(missing):
                self.stats.simulated += 1
                if self.cache is not None:
                    self.cache.store(spec, result)
                for i in positions[spec]:
                    results[i] = result
        except KeyboardInterrupt:
            # The executor generator's finally clause has already torn
            # the pool down; drop any half-written cache entries so the
            # next run (e.g. with --resume) sees only complete rows.
            if self.cache is not None:
                self.cache.clean_stale_tmp()
            raise
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _execute_all(
        self, specs: list[RunSpec]
    ) -> Iterator[tuple[RunSpec, RunResult]]:
        # Timeouts need process isolation to enforce, so a timeout forces
        # the pool path even for a single job/spec.
        if (self.jobs > 1 and len(specs) > 1) or (self.timeout and specs):
            yield from self._execute_parallel(specs)
            return
        for spec in specs:
            yield spec, self._execute_one(spec)

    def _execute_one(self, spec: RunSpec) -> RunResult:
        if self.checkpoint_every is not None:
            return execute_spec_checkpointed(
                spec, self.checkpoint_dir, self.checkpoint_every
            )
        return execute_spec(spec)

    def _submit(self, pool: ProcessPoolExecutor, spec: RunSpec) -> Future:
        if self.checkpoint_every is not None:
            return pool.submit(
                execute_spec_checkpointed,
                spec,
                self.checkpoint_dir,
                self.checkpoint_every,
            )
        return pool.submit(execute_spec, spec)

    def _execute_parallel(
        self, specs: list[RunSpec]
    ) -> Iterator[tuple[RunSpec, RunResult]]:
        """Crash-tolerant fan-out over a (rebuildable) process pool."""
        queue: deque[RunSpec] = deque(specs)
        attempts: dict[RunSpec, int] = dict.fromkeys(specs, 0)
        workers = min(self.jobs, len(specs))
        pool = ProcessPoolExecutor(max_workers=workers)
        #: future -> (spec, monotonic deadline or None)
        inflight: dict[Future, tuple[RunSpec, float | None]] = {}
        try:
            while queue or inflight:
                # Submit-window dispatch (not pool.map): one future per
                # spec so a crash or timeout is attributable, and at most
                # ``workers`` in flight so a deadline measures *run* time,
                # not queue time.
                while queue and len(inflight) < workers:
                    spec = queue.popleft()
                    attempts[spec] += 1
                    deadline = (
                        time.monotonic() + self.timeout if self.timeout else None
                    )
                    try:
                        fut = self._submit(pool, spec)
                    except BrokenExecutor:
                        # A worker died while we were dispatching: the
                        # pool refuses new work.  Requeue this spec
                        # uncharged; the broken pool's in-flight futures
                        # fail below and drive the rebuild — or, with
                        # nothing in flight to surface the crash,
                        # rebuild right here.
                        attempts[spec] -= 1
                        queue.appendleft(spec)
                        if not inflight:
                            self.stats.crashes += 1
                            _shutdown_pool(pool, kill=True)
                            pool = ProcessPoolExecutor(max_workers=workers)
                            continue
                        break
                    inflight[fut] = (spec, deadline)
                done, _ = futures_wait(
                    set(inflight),
                    timeout=self._poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                crashed: list[tuple[RunSpec, str]] = []
                for fut in done:
                    spec, _deadline = inflight.pop(fut)
                    try:
                        result = fut.result()
                    except BrokenExecutor:
                        # The worker process died (a dead worker breaks
                        # every in-flight future of the pool).
                        crashed.append((spec, "worker process died"))
                        continue
                    # Any other exception is the simulation's own —
                    # deterministic, so retrying cannot help: re-raise.
                    yield spec, result
                now = time.monotonic()
                hung = [
                    fut
                    for fut, (_spec, deadline) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                if not crashed and not hung:
                    continue
                # Rebuild: terminate the pool (kills hung workers too),
                # charge the guilty specs an attempt, requeue the
                # innocent in-flight specs uncharged.
                if crashed:
                    self.stats.crashes += 1
                self.stats.timeouts += len(hung)
                for fut in hung:
                    spec, _deadline = inflight.pop(fut)
                    crashed.append(
                        (spec, f"run exceeded its {self.timeout}s timeout")
                    )
                innocents = [spec for spec, _deadline in inflight.values()]
                inflight.clear()
                _shutdown_pool(pool, kill=True)
                for spec, reason in crashed:
                    self._requeue(queue, attempts, spec, reason)
                for spec in innocents:
                    attempts[spec] -= 1
                    queue.append(spec)
                pool = ProcessPoolExecutor(max_workers=workers)
        finally:
            _shutdown_pool(pool, kill=True)

    def _requeue(
        self,
        queue: deque,
        attempts: dict[RunSpec, int],
        spec: RunSpec,
        reason: str,
    ) -> None:
        used = attempts[spec]
        if used > self.retries:
            raise SweepFailure(repr(spec), used, reason)
        self.stats.retried += 1
        if self.retry_backoff > 0:
            # Bounded exponential backoff before the retry attempt.
            time.sleep(min(self.retry_backoff * (2 ** (used - 1)), 2.0))
        queue.append(spec)


_default_runner: SweepRunner | None = None


def get_runner(runner: SweepRunner | None = None) -> SweepRunner:
    """Return ``runner``, or the lazily created process-wide default."""
    global _default_runner
    if runner is not None:
        return runner
    if _default_runner is None:
        _default_runner = SweepRunner()
    return _default_runner


def run_sweep(
    specs: Sequence[RunSpec], runner: SweepRunner | None = None
) -> list[RunResult]:
    """Convenience wrapper: run ``specs`` on ``runner`` or the default."""
    return get_runner(runner).run(specs)
