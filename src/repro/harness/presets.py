"""Workload scales for the experiment harness.

``PAPER`` matches the published parameters (Section IV): initial sizes
1000/10000, 100x100 matrices, strings of 1000, Figure 8 tree of 10000.
Those sizes take hours on a pure-Python event simulator (the authors made
the same concession — footnote 4 shrinks matmul "due to the complexity of
the algorithm... larger workloads could not be simulated in reasonable
time").  ``QUICK`` (the default everywhere) keeps every *shape* — the
size ratio small:large, the read:write mixes, the scan ranges — at
simulation-friendly magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Scale:
    """All knobs the experiments read."""

    name: str
    #: Initial element counts for the irregular structures (Figure 6).
    small_elements: int
    large_elements: int
    #: Operations per irregular run.
    n_ops: int
    #: Operations for the Figure 9/10 sensitivity sweeps (smaller: the
    #: sweeps multiply runs by sizes x variants).
    sens_ops: int
    #: Matrix dimension (paper: 100) — small/large for Figure 6.
    matmul_small: int
    matmul_large: int
    #: String length (paper: 1000).
    lev_small: int
    lev_large: int
    #: Figure 8: initial tree size, op count, scan:insert ratio 3:1.
    fig8_elements: int
    fig8_ops: int
    #: Key space multiplier (key space = elements * this).
    key_space_factor: int = 4
    #: Core counts for the scalability figures.
    core_counts: tuple[int, ...] = (4, 8, 16, 32)
    #: Default "many cores" point (the paper's 32).
    max_cores: int = 32
    #: L1 sizes for Figure 9 (KiB; 32 is the Table II baseline).
    l1_sizes_kib: tuple[int, ...] = (8, 16, 32, 64, 128)
    #: Injected latencies for Figure 10 (cycles).
    latencies: tuple[int, ...] = (2, 4, 6, 8, 10)
    #: Section IV-F: list size and op count for the GC microbenchmark.
    gc_list_elements: int = 10
    gc_ops: int = 1000
    #: RNG seed base.
    seed: int = 20180523  # the paper's conference date


QUICK = Scale(
    name="quick",
    small_elements=150,
    large_elements=600,
    n_ops=192,
    sens_ops=96,
    matmul_small=10,
    matmul_large=20,
    lev_small=24,
    lev_large=56,
    fig8_elements=600,
    fig8_ops=160,
    l1_sizes_kib=(8, 32, 128),
    latencies=(2, 6, 10),
    gc_ops=400,
)

PAPER = Scale(
    name="paper",
    small_elements=1000,
    large_elements=10000,
    n_ops=1024,
    sens_ops=512,
    matmul_small=48,
    matmul_large=100,
    lev_small=400,
    lev_large=1000,
    fig8_elements=10000,
    fig8_ops=1024,
    gc_ops=1000,
)


def get_scale(name: str) -> Scale:
    """Look up a preset by name (``quick`` or ``paper``)."""
    scales = {"quick": QUICK, "paper": PAPER}
    if name not in scales:
        raise KeyError(f"unknown scale {name!r}; choose from {sorted(scales)}")
    return scales[name]
