"""Experiment harness: regenerates every table and figure of Section IV.

- :mod:`repro.harness.presets` — workload scales (``quick`` default;
  ``paper`` matches the published parameters),
- :mod:`repro.harness.experiments` — one function per figure/table,
- :mod:`repro.harness.runner` — parallel sweep executor + result cache,
- :mod:`repro.harness.sweeps` — picklable per-run simulation entry points,
- :mod:`repro.harness.report` — ASCII rendering of the paper-shaped rows.
"""

from .presets import PAPER, QUICK, Scale
from .runner import RunResult, RunSpec, SweepRunner, run_sweep
from .experiments import (
    fig6_speedup,
    fig7_scalability,
    fig8_snapshot_isolation,
    fig9_l1_size,
    fig10_latency,
    gc_overhead,
    table2_platform,
)
from .report import format_table

__all__ = [
    "Scale",
    "QUICK",
    "PAPER",
    "RunResult",
    "RunSpec",
    "SweepRunner",
    "run_sweep",
    "fig6_speedup",
    "fig7_scalability",
    "fig8_snapshot_isolation",
    "fig9_l1_size",
    "fig10_latency",
    "gc_overhead",
    "table2_platform",
    "format_table",
]
