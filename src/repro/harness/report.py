"""ASCII rendering of experiment results (the benches print these)."""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = "{:.2f}",
) -> str:
    """Render a plain-text table with right-aligned numeric columns."""

    def cell(x: Any) -> str:
        if isinstance(x, float):
            return floatfmt.format(x)
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, s in enumerate(row):
            widths[i] = max(widths[i], len(s))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(s.rjust(w) for s, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_series(
    title: str, x_label: str, xs: Sequence[Any], series: dict[str, Sequence[float]]
) -> str:
    """Render one-line-per-series data (the figure 'curves') as a table."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def format_bars(
    title: str,
    rows: "Iterable[tuple[str, float]]",
    *,
    width: int = 40,
    marker: str = "#",
    reference: float | None = 1.0,
) -> str:
    """Render labelled horizontal bars (the text rendition of a figure).

    ``reference`` draws a ``|`` at that value (e.g. speedup 1.0) so
    above/below-baseline is visible at a glance.
    """
    rows = list(rows)
    if not rows:
        return title
    peak = max(value for _, value in rows)
    if reference is not None:
        peak = max(peak, reference)
    if peak <= 0:
        peak = 1.0
    label_w = max(len(label) for label, _ in rows)
    scale = width / peak
    ref_col = round(reference * scale) if reference is not None else -1
    lines = [title, "=" * len(title)]
    for label, value in rows:
        n = round(value * scale)
        bar = list(marker * n + " " * (width - n))
        if 0 <= ref_col < len(bar) and bar[ref_col] == " ":
            bar[ref_col] = "|"
        lines.append(f"{label.rjust(label_w)}  {''.join(bar)} {value:.2f}")
    return "\n".join(lines)
