"""ASCII rendering of experiment results (the benches print these)."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..errors import ConfigError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    floatfmt: str = "{:.2f}",
) -> str:
    """Render a plain-text table with right-aligned numeric columns.

    Every row must have exactly one cell per header; a ragged row raises
    :class:`~repro.errors.ConfigError` naming its index (experiment code
    builds rows programmatically, and a silent ``IndexError`` from deep
    inside the renderer pointed at the wrong place).
    """

    def cell(x: Any) -> str:
        if isinstance(x, float):
            return floatfmt.format(x)
        return str(x)

    str_rows = []
    for idx, row in enumerate(rows):
        cells = [cell(x) for x in row]
        if len(cells) != len(headers):
            raise ConfigError(
                f"table row {idx} has {len(cells)} cell(s), expected "
                f"{len(headers)} to match headers {list(headers)!r}"
            )
        str_rows.append(cells)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, s in enumerate(row):
            widths[i] = max(widths[i], len(s))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(s.rjust(w) for s, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_series(
    title: str, x_label: str, xs: Sequence[Any], series: dict[str, Sequence[float]]
) -> str:
    """Render one-line-per-series data (the figure 'curves') as a table."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)


def format_bars(
    title: str,
    rows: "Iterable[tuple[str, float]]",
    *,
    width: int = 40,
    marker: str = "#",
    reference: float | None = 1.0,
) -> str:
    """Render labelled horizontal bars (the text rendition of a figure).

    ``reference`` draws a ``|`` at that value (e.g. speedup 1.0) so
    above/below-baseline is visible at a glance.  Bar lengths are clamped
    to ``[0, width]``: a non-positive value renders as an empty bar (kept
    exactly ``width`` columns so alignment and the reference marker
    survive), and a *negative* value is additionally flagged with ``!``
    after its printed number.
    """
    rows = list(rows)
    if not rows:
        return title
    peak = max(value for _, value in rows)
    if reference is not None:
        peak = max(peak, reference)
    if peak <= 0:
        peak = 1.0
    label_w = max(len(label) for label, _ in rows)
    scale = width / peak
    ref_col = round(reference * scale) if reference is not None else -1
    lines = [title, "=" * len(title)]
    for label, value in rows:
        n = max(0, min(width, round(value * scale)))
        bar = list(marker * n + " " * (width - n))
        if 0 <= ref_col < len(bar) and bar[ref_col] == " ":
            bar[ref_col] = "|"
        flag = " !" if value < 0 else ""
        lines.append(f"{label.rjust(label_w)}  {''.join(bar)} {value:.2f}{flag}")
    return "\n".join(lines)


def format_metrics(
    snapshot: Mapping[str, Any],
    title: str = "metrics",
    *,
    width: int = 30,
) -> str:
    """Render a :meth:`repro.obs.MetricsRegistry.snapshot` dict.

    Counters and gauges become one table each; every non-empty histogram
    becomes a bucket-count bar chart (via :func:`format_bars`) plus a
    count/mean/min/max summary line.
    """
    sections: list[str] = []
    counters = snapshot.get("counters") or {}
    if counters:
        sections.append(
            format_table(
                ("counter", "value"),
                [(name, value) for name, value in counters.items()],
                title=f"{title}: counters",
            )
        )
    gauges = {
        name: g for name, g in (snapshot.get("gauges") or {}).items()
        if g.get("samples")
    }
    if gauges:
        sections.append(
            format_table(
                ("gauge", "last", "min", "max", "samples"),
                [
                    (name, g["last"], g["min"], g["max"], g["samples"])
                    for name, g in gauges.items()
                ],
                title=f"{title}: gauges",
            )
        )
    for name, h in (snapshot.get("histograms") or {}).items():
        if not h.get("count"):
            continue
        bounds = h["bounds"]
        labels = [f"<= {b:g}" for b in bounds] + [f"> {bounds[-1]:g}"]
        bars = format_bars(
            f"{title}: {name}",
            list(zip(labels, [float(c) for c in h["counts"]])),
            width=width,
            reference=None,
        )
        summary = (
            f"n={h['count']} mean={h['mean']:.2f} "
            f"min={h['min']:g} max={h['max']:g}"
        )
        sections.append(f"{bars}\n{summary}")
    return "\n\n".join(sections) if sections else f"{title}: (no samples)"
