"""Picklable simulation entry points for the sweep runner.

Each ``sim_*`` function is a module-level callable that rebuilds its
entire workload from the spec parameters (config, scale, seed
coordinates), runs one simulation, and returns a reduced
:class:`~repro.harness.runner.RunResult`.  Keeping them self-contained is
what lets :class:`~repro.harness.runner.SweepRunner` execute them in any
process, in any order, with bit-identical results: every input is derived
from a deterministic seed, never from ambient state.

The ``_seed`` / ``_irregular_inputs`` / ``_run_irregular`` /
``_run_regular`` helpers historically lived in
:mod:`repro.harness.experiments` and are re-exported from there.
"""

from __future__ import annotations

import zlib
from typing import Any

from ..config import MachineConfig
from ..errors import ConfigError
from ..workloads import binary_tree, hash_table, levenshtein, linked_list, matmul, rb_tree
from ..workloads import rwlock_tree
from ..workloads.base import WorkloadRun
from ..workloads.opgen import (
    OpMix,
    READ_INTENSIVE,
    SCAN,
    WRITE_INTENSIVE,
    generate_ops,
    initial_keys,
)
from .presets import Scale
from .runner import RunResult, RunSpec, make_spec

_IRREGULAR_MODULES = {
    "linked_list": linked_list,
    "binary_tree": binary_tree,
    "hash_table": hash_table,
    "rb_tree": rb_tree,
}
_REGULAR_MODULES = {"levenshtein": levenshtein, "matmul": matmul}

#: Op mixes addressable by name (specs carry the name, not the object).
MIXES = {READ_INTENSIVE.name: READ_INTENSIVE, WRITE_INTENSIVE.name: WRITE_INTENSIVE}

#: Figure 8's 3:1 scan:insert mix.
FIG8_MIX = OpMix(reads=3, writes=1, name="3S-1W")


def _seed(scale: Scale, *parts: object) -> int:
    """Deterministic seed from the experiment coordinates.

    Uses crc32 rather than ``hash()`` — the latter is randomized per
    process, which would make every pytest invocation (and every pool
    worker) run different workloads.
    """
    digest = zlib.crc32(repr(parts).encode())
    return (scale.seed + digest) % (1 << 31)


def _irregular_inputs(
    scale: Scale, bench: str, size: str, mix: OpMix, n_ops: int | None = None
) -> tuple[list[int], list[tuple[str, int, int]]]:
    elements = scale.small_elements if size == "small" else scale.large_elements
    seed = _seed(scale, bench, size, mix.name)
    init = initial_keys(elements, elements * scale.key_space_factor, seed)
    ops = generate_ops(
        n_ops or scale.n_ops, mix, elements * scale.key_space_factor, seed
    )
    return init, ops


def _run_irregular(
    bench: str,
    config: MachineConfig,
    scale: Scale,
    size: str,
    mix: OpMix,
    variant: str,
    cores: int = 1,
    n_ops: int | None = None,
) -> WorkloadRun:
    init, ops = _irregular_inputs(scale, bench, size, mix, n_ops)
    mod = _IRREGULAR_MODULES[bench]
    if variant == "unversioned":
        return mod.run_unversioned(config, init, ops)
    return mod.run_versioned(config, init, ops, cores)


def _run_regular(
    bench: str,
    config: MachineConfig,
    scale: Scale,
    size: str,
    variant: str,
    cores: int = 1,
) -> WorkloadRun:
    if bench == "matmul":
        n = scale.matmul_small if size == "small" else scale.matmul_large
    else:
        n = scale.lev_small if size == "small" else scale.lev_large
    mod = _REGULAR_MODULES[bench]
    if variant == "unversioned":
        return mod.run_unversioned(config, n, seed=_seed(scale, bench, size))
    return mod.run_versioned(config, n, cores, seed=_seed(scale, bench, size))


# ---------------------------------------------------------------------------
# Sweep entry points (must stay picklable, module-level, deterministic).
# ---------------------------------------------------------------------------


def sim_irregular(
    bench: str,
    config: MachineConfig,
    scale: Scale,
    size: str,
    mix: str,
    variant: str,
    cores: int = 1,
    n_ops: int | None = None,
) -> RunResult:
    """One irregular-structure run (Figures 6/7/9/10 and ablations)."""
    if mix not in MIXES:
        raise ConfigError(f"unknown op mix {mix!r}; choose from {sorted(MIXES)}")
    run = _run_irregular(bench, config, scale, size, MIXES[mix], variant, cores, n_ops)
    return RunResult.from_workload(run)


def sim_regular(
    bench: str,
    config: MachineConfig,
    scale: Scale,
    size: str,
    variant: str,
    cores: int = 1,
) -> RunResult:
    """One regular-workload run (Levenshtein or matmul)."""
    run = _run_regular(bench, config, scale, size, variant, cores)
    return RunResult.from_workload(run)


def sim_fig8(
    structure: str,
    config: MachineConfig,
    scale: Scale,
    scan_range: int,
    cores: int,
) -> RunResult:
    """One Figure 8 run: versioned tree or rwlock tree, 3:1 scan:insert."""
    seed = _seed(scale, "fig8", scan_range)
    init = initial_keys(
        scale.fig8_elements, scale.fig8_elements * scale.key_space_factor, seed
    )
    ops = generate_ops(
        scale.fig8_ops, FIG8_MIX, scale.fig8_elements * scale.key_space_factor,
        seed, read_op=SCAN, scan_range=scan_range,
    )
    # Figure 8 measures scans and inserts only.
    ops = [(op if op != "delete" else "insert", k, e) for op, k, e in ops]
    if structure == "versioned":
        run = binary_tree.run_versioned(config, init, ops, cores)
    elif structure == "rwlock":
        run = rwlock_tree.run_rwlock(config, init, ops, cores)
    else:
        raise ConfigError(f"unknown fig8 structure {structure!r}")
    return RunResult.from_workload(run)


def sim_gc(config: MachineConfig, scale: Scale) -> RunResult:
    """One Section IV-F GC run; the free-list knobs ride in the config."""
    seed = _seed(scale, "gc")
    init = initial_keys(scale.gc_list_elements, scale.gc_list_elements * 8, seed)
    ops = generate_ops(scale.gc_ops, WRITE_INTENSIVE, scale.gc_list_elements * 8, seed)
    run = linked_list.run_versioned(config, init, ops, 1)
    return RunResult.from_workload(run)


def sim_chaos(**kwargs: Any) -> RunResult:
    """Fault-injection sweep target; see :mod:`repro.faults.harness`."""
    from ..faults.harness import sim_chaos as _sim_chaos

    return _sim_chaos(**kwargs)


RUNNERS = {
    "irregular": sim_irregular,
    "regular": sim_regular,
    "fig8": sim_fig8,
    "gc": sim_gc,
    "chaos": sim_chaos,
}


def execute(spec: RunSpec) -> RunResult:
    """Dispatch a :class:`RunSpec` to its registered entry point."""
    try:
        fn = RUNNERS[spec.fn]
    except KeyError:
        raise ConfigError(
            f"unknown sweep function {spec.fn!r}; choose from {sorted(RUNNERS)}"
        ) from None
    return fn(**dict(spec.params))


# ---------------------------------------------------------------------------
# Spec constructors (the harness-facing vocabulary).
# ---------------------------------------------------------------------------


def irregular_spec(
    bench: str,
    config: MachineConfig,
    scale: Scale,
    size: str,
    mix: str,
    variant: str,
    cores: int = 1,
    n_ops: int | None = None,
) -> RunSpec:
    return make_spec(
        "irregular", bench=bench, config=config, scale=scale, size=size,
        mix=mix, variant=variant, cores=cores, n_ops=n_ops,
    )


def regular_spec(
    bench: str,
    config: MachineConfig,
    scale: Scale,
    size: str,
    variant: str,
    cores: int = 1,
) -> RunSpec:
    return make_spec(
        "regular", bench=bench, config=config, scale=scale, size=size,
        variant=variant, cores=cores,
    )


def fig8_spec(
    structure: str,
    config: MachineConfig,
    scale: Scale,
    scan_range: int,
    cores: int,
) -> RunSpec:
    return make_spec(
        "fig8", structure=structure, config=config, scale=scale,
        scan_range=scan_range, cores=cores,
    )


def gc_spec(config: MachineConfig, scale: Scale) -> RunSpec:
    return make_spec("gc", config=config, scale=scale)
